"""Parallel demanded evaluation: SCC-wave scheduling over a wide call graph.

The workload is :func:`repro.lang.programs.wide_call_graph_source`: ``main``
calls ``width`` independent nested-loop workers, so the condensation has
two waves (all workers, then ``main``) and every worker's summary job can
run concurrently.  For each worker count the benchmark measures, with the
pool created and warmed *outside* the measured region (the prototype's
cold pool start turned a 2.6x query-phase win into a 0.04x wall loss):

* ``sequential`` — a fresh engine answering ``query_entry_exit()``;
* ``parallel``   — a fresh engine warmed by the coordinator
  (speculate → dispatch → certify → seed) and then answering the same
  query, which consumes the seeded summaries instead of evaluating any
  worker DAIG in-process.

Two speedup bases are always reported, because this host may have fewer
cores than workers (in which case worker processes time-slice one core
and measured wall clock cannot show a real speedup):

* ``measured-wall``      — parallel vs sequential wall clock as measured;
* ``schedule-makespan``  — coordinator overhead plus, per wave, the LPT
  packing of the jobs' *CPU* seconds onto ``workers`` bins: the wall
  clock a host with >= ``workers`` free cores would see.  CPU seconds are
  immune to time-slicing, so this basis is honest on a loaded host.

The headline uses measured wall when the host has enough cores, and the
schedule basis otherwise, with ``basis`` and ``host_cpus`` recorded next
to the number.  Digest equality (parallel results == sequential results)
is asserted for every configuration.

Everything lands in ``BENCH_parallel.json`` (override with
``REPRO_BENCH_PARALLEL_JSON``); CI uploads it and asserts digest
equality, wave shape, and the locality counters on it.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine
from repro.lang import build_program_cfgs, parse_program
from repro.lang.programs import wide_call_graph_source
from repro.parallel import ParallelCoordinator, PersistentWorkerPool


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _scale():
    return (_env_int("REPRO_BENCH_PARALLEL_WIDTH", 8),
            _env_int("REPRO_BENCH_PARALLEL_LOOPS", 3),
            _env_int("REPRO_BENCH_PARALLEL_REPEATS", 3))


def _worker_counts():
    raw = os.environ.get("REPRO_BENCH_PARALLEL_WORKERS", "1,2,4")
    counts = []
    for part in raw.split(","):
        part = part.strip()
        if part:
            counts.append(max(1, int(part)))
    return counts or [1, 2, 4]


def _fresh_engines(source):
    """Two engines over independent CFG copies of the same program."""
    def build():
        cfgs = build_program_cfgs(parse_program(source))
        for cfg in cfgs.values():
            cfg.ensure_structure()  # warm: CFG lowering cost is not analysis
        return cfgs
    return (InterproceduralEngine(build(), IntervalDomain()),
            InterproceduralEngine(build(), IntervalDomain()))


def _schedule_seconds(report, workers, final_query_seconds):
    """Wall clock a ``workers``-core host would see: coordinator overhead
    plus per-wave LPT makespans of the jobs' CPU seconds."""
    total = (report["phase_seconds"]["speculate"]
             + report["phase_seconds"]["certify"]
             + final_query_seconds)
    for wave in report["wave_jobs"]:
        bins = [0.0] * workers
        for duration in sorted((report["cpu_durations"][key] for key in wave),
                               reverse=True):
            bins[bins.index(min(bins))] += duration
        total += max(bins)
    return total


@pytest.fixture(scope="module")
def parallel_results():
    """Measure every worker count and write BENCH_parallel.json."""
    width, loops, repeats = _scale()
    source = wide_call_graph_source(width, inner_loops=loops)
    pool_kind = os.environ.get("REPRO_BENCH_PARALLEL_POOL", "process")
    host_cpus = os.cpu_count() or 1

    sections = {}
    for workers in _worker_counts():
        pool = PersistentWorkerPool(workers=workers, kind=pool_kind)
        pool.warmup()  # the whole cold-start cost lands here, unmeasured
        best_seq = best_par = best_sched = None
        section = None
        for _repeat in range(max(1, repeats)):
            seq_engine, par_engine = _fresh_engines(source)

            started = time.perf_counter()
            seq_engine.query_entry_exit()
            seq_seconds = time.perf_counter() - started

            structure_before = sum(
                cfg.structure_stats()["structure_full_builds"]
                for cfg in par_engine.cfgs.values())
            coordinator = ParallelCoordinator(par_engine, pool)
            started = time.perf_counter()
            report = coordinator.run()
            warm_seconds = time.perf_counter() - started
            started = time.perf_counter()
            par_engine.query_entry_exit()
            final_query_seconds = time.perf_counter() - started
            par_seconds = warm_seconds + final_query_seconds
            structure_after = sum(
                cfg.structure_stats()["structure_full_builds"]
                for cfg in par_engine.cfgs.values())

            sched_seconds = _schedule_seconds(
                report, workers, final_query_seconds)
            best_seq = (seq_seconds if best_seq is None
                        else min(best_seq, seq_seconds))
            best_par = (par_seconds if best_par is None
                        else min(best_par, par_seconds))
            best_sched = (sched_seconds if best_sched is None
                          else min(best_sched, sched_seconds))

            seq_phases = seq_engine.total_phase_seconds()
            par_phases = par_engine.total_phase_seconds()
            # Digests drive analyze_everything, so they come after every
            # timing read; equality certifies parallel == sequential.
            section = {
                "workers": workers,
                "pool": report["pool"],
                "condensation_depth": len(report["wave_sizes"]),
                "jobs": report["jobs"],
                "waves": report["waves"],
                "wave_sizes": report["wave_sizes"],
                "jobs_per_wave": report["jobs_per_wave"],
                "certified": report["certified"],
                "knocked_out": report["knocked_out"],
                "digest": par_engine.summary_digest(),
                "digest_sequential": seq_engine.summary_digest(),
                "phase_seconds": report["phase_seconds"],
                "engine_phase_seconds": par_phases,
                "query_phase_speedup": (
                    seq_phases["query"] / par_phases["query"]
                    if par_phases["query"] > 0 else 0.0),
                "work": par_engine.total_stats(),
                "work_sequential": seq_engine.total_stats(),
                "worker_errors": report["errors"],
                "worker_stats": report["worker_stats"],
                "structure_builds_during_analysis": (
                    structure_after - structure_before),
            }
        pool.close()
        assert section is not None
        section["wall_seconds"] = {"sequential": best_seq,
                                   "parallel": best_par}
        section["schedule_seconds"] = best_sched
        section["wall_speedup"] = best_seq / best_par if best_par else 0.0
        section["schedule_speedup"] = (best_seq / best_sched
                                       if best_sched else 0.0)
        sections[str(workers)] = section

    top = sections[str(max(int(key) for key in sections))]
    basis = ("measured-wall" if host_cpus >= top["workers"]
             else "schedule-makespan")
    headline = {
        "workers": top["workers"],
        "jobs": top["jobs"],
        "waves": top["waves"],
        "jobs_per_wave": top["jobs_per_wave"],
        "wall_speedup": top["wall_speedup"],
        "schedule_speedup": top["schedule_speedup"],
        "query_phase_speedup": top["query_phase_speedup"],
        "speedup": (top["wall_speedup"] if basis == "measured-wall"
                    else top["schedule_speedup"]),
        "basis": basis,
        "host_cpus": host_cpus,
    }

    artifact = {
        "workload": {"width": width, "inner_loops": loops,
                     "repeats": repeats, "pool": pool_kind,
                     "domain": "interval", "policy": "context-insensitive"},
        "headline": headline,
        "workers": sections,
    }
    path = os.environ.get("REPRO_BENCH_PARALLEL_JSON", "BENCH_parallel.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return artifact


def test_parallel_results_equal_sequential(parallel_results):
    """Digest-certified: a coordinator-warmed engine answers every live
    (procedure, context) exit exactly as a sequential engine does."""
    for workers, section in parallel_results["workers"].items():
        assert section["digest"] == section["digest_sequential"], workers
        assert not section["worker_errors"], workers


def test_parallel_wave_scheduling_shape(parallel_results):
    """The wide workload dispatches every worker procedure concurrently:
    many jobs per wave, exactly one wave of workers plus one of main."""
    top = parallel_results["headline"]
    assert top["jobs"] > 0
    assert top["jobs_per_wave"] > 1
    for section in parallel_results["workers"].values():
        assert section["certified"] == section["jobs"]
        assert section["work"]["interproc_parallel_jobs"] == section["jobs"]
        assert section["work"]["interproc_parallel_waves"] == section["waves"]
        assert section["work_sequential"]["interproc_parallel_jobs"] == 0
        assert section["work_sequential"]["interproc_parallel_waves"] == 0


def test_parallel_headline_speedup(parallel_results):
    """>= 2x at 4 workers with a warm pool, on the basis the host can
    honestly measure (schedule-makespan when cores < workers)."""
    top = parallel_results["headline"]
    print("\nheadline: %.2fx (%s, %d workers, host has %d cpus); "
          "wall %.2fx, schedule %.2fx, query-phase %.2fx"
          % (top["speedup"], top["basis"], top["workers"], top["host_cpus"],
             top["wall_speedup"], top["schedule_speedup"],
             top["query_phase_speedup"]))
    if top["workers"] >= 4:
        assert top["speedup"] >= 2.0


def test_parallel_locality_counters_unchanged(parallel_results):
    """Parallel warming must not regress the locality invariants: no
    call-site scans, no structure rebuilds during analysis."""
    for workers, section in parallel_results["workers"].items():
        assert section["work"]["interproc_callsite_scans"] == 0, workers
        assert section["structure_builds_during_analysis"] == 0, workers


def test_parallel_coordinator_overhead(benchmark):
    """pytest-benchmark: one serial-pool coordinator pass (speculation +
    certification cost without any real dispatch concurrency)."""
    source = wide_call_graph_source(4, inner_loops=2)
    pool = PersistentWorkerPool(workers=1, kind="serial")

    def warm_once():
        cfgs = build_program_cfgs(parse_program(source))
        engine = InterproceduralEngine(cfgs, IntervalDomain())
        ParallelCoordinator(engine, pool).run()
        return engine.query_entry_exit()

    benchmark(warm_once)
