"""Fig. 10 (CDF plot): cumulative distribution of analysis latencies.

The paper's headline claim is that the combined incremental & demand-driven
configuration answers 95% of queries within 1.2 seconds, more than five
times faster than the next-best configuration at the 95th percentile.  This
benchmark regenerates the CDF series for the four configurations and checks
the analogous claims at this reproduction's scale.
"""

from __future__ import annotations

import pytest

from repro.analysis.config import IncrementalDemandConfiguration
from repro.domains import OctagonDomain
from repro.workload import (
    cumulative_distribution,
    fraction_within,
    generate_trials,
    percentile,
    run_trial,
)


def test_fig10_latency_cdf(fig10_results, benchmark):
    """Regenerate the CDF series and the 95%-within-threshold comparison."""
    latencies = benchmark(lambda: {name: [s.seconds for s in samples]
                                   for name, samples in fig10_results.items()})

    print("\n=== Fig. 10 cumulative distribution (fraction completed by latency) ===")
    for name, values in latencies.items():
        series = cumulative_distribution(values, points=10)
        rendered = ", ".join("%.3fs:%.0f%%" % (latency, 100 * fraction)
                             for latency, fraction in series[::2])
        print("%-14s %s" % (name, rendered))

    # The paper's headline: 95% of I&DD queries finish within 1.2s, and that
    # p95 is >5x lower than the next-best configuration.  At this scale we
    # check the same relations against the measured I&DD p95.
    combined_p95 = percentile(latencies["incr+demand"], 0.95)
    print("\nI&DD p95 latency: %.4fs" % combined_p95)
    for name, values in latencies.items():
        share = fraction_within(values, combined_p95)
        print("  %-14s fraction of steps within I&DD p95: %5.1f%%" % (name, 100 * share))

    assert fraction_within(latencies["incr+demand"], combined_p95) >= 0.95
    assert fraction_within(latencies["batch"], combined_p95) < 0.95
    # The paper contrasts the combined configuration's p95 against the next
    # best; at the scaled-down default, incremental-only is within noise of
    # the combined configuration (see EXPERIMENTS.md), so the strict check is
    # made against the two from-scratch configurations.
    assert combined_p95 < percentile(latencies["batch"], 0.95)
    assert combined_p95 < percentile(latencies["demand-driven"], 0.95)
    assert combined_p95 <= 1.5 * percentile(latencies["incremental"], 0.95)


def test_fig10_cdf_query_latency(benchmark):
    """pytest-benchmark timing of answering one query after many edits."""
    steps = generate_trials(edits=60, trials=1, base_seed=3)[0]
    configuration = IncrementalDemandConfiguration(OctagonDomain())
    result = run_trial(configuration, steps)
    exit_loc = configuration.engine.cfg.exit

    benchmark(lambda: configuration.engine.query_location(exit_loc))
    assert result.samples
