"""Interprocedural demanded analysis: the fig10-style comparison lifted to
multi-procedure programs, plus the two locality experiments the summary
architecture is about.

1. **Four-way configuration comparison** — batch / incremental / demand /
   incr+demand, each driven over identical multi-procedure edit/query
   streams (recursive and non-recursive), reporting per-step latency
   summaries, work counters, and the per-phase wall-clock split.
2. **Cross-procedure edit locality** — editing one leaf procedure in a
   program with many unrelated bystander procedures must dirty a constant
   number of dependent call cells: the caller-dirtying counters are
   independent of total program size, and no configuration ever scans a
   full DAIG ref set (``interproc_callsite_scans == 0``).
3. **Structure sharing across contexts** — analyzing under 2-call-site
   sensitivity builds many (procedure, context) DAIGs but exactly one
   ``CfgStructure`` per *procedure*: the structure-phase counters do not
   scale with the number of contexts.

Everything lands in ``BENCH_interproc.json`` (override with
``REPRO_BENCH_INTERPROC_JSON``); CI uploads it as a perf-trajectory
artifact and asserts the locality invariants on it.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.analysis.config import (ALL_INTERPROC_CONFIGURATIONS,
                                   InterprocIncrementalDemandConfiguration)
from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program
from repro.lang.programs import bystander_source
from repro.workload import (generate_interproc_trials, run_interproc_trial,
                            summarize)
from repro.workload.edits import relabel_assignment


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="module")
def interproc_scale():
    """(edits, trials, procedures) for the multi-procedure workloads."""
    return (_env_int("REPRO_BENCH_INTERPROC_EDITS", 60),
            _env_int("REPRO_BENCH_INTERPROC_TRIALS", 1),
            _env_int("REPRO_BENCH_INTERPROC_PROCS", 5))


def _leaf_edit_stream(engine: InterproceduralEngine, edits: int):
    """Repeatedly relabel leaf's statement; returns dirtying counters."""
    before = dict(engine.counters)
    for step in range(edits):
        engine.edit_procedure("leaf", relabel_assignment(
            "r", A.BinOp("+", A.Var("x"), A.IntLit(step % 7))))
        engine.query_entry_exit()
    return {key: engine.counters[key] - before.get(key, 0)
            for key in engine.counters}


@pytest.fixture(scope="module")
def interproc_results(interproc_scale):
    """Run every interprocedural configuration over shared workloads and
    write the BENCH_interproc.json artifact."""
    edits, trials, procedures = interproc_scale
    domain_factory = IntervalDomain

    configurations = {}
    samples_by_name = {}
    for recursive in (False, True):
        workloads = generate_interproc_trials(
            edits=edits, trials=trials, base_seed=11,
            procedures=procedures, recursive=recursive)
        for cls in ALL_INTERPROC_CONFIGURATIONS:
            name = "%s%s" % (cls.name, "+rec" if recursive else "")
            total_work = {}
            total_phases = {}
            samples = []
            for workload in workloads:
                configuration = cls(workload.fresh_cfgs(), domain_factory(),
                                    policy_by_name("1-call-site"))
                outcome = run_interproc_trial(configuration, workload.steps)
                samples.extend(outcome.samples)
                for key, value in outcome.work.items():
                    total_work[key] = total_work.get(key, 0) + value
                for key, value in outcome.phases.items():
                    total_phases[key] = total_phases.get(key, 0.0) + value
            samples_by_name[name] = samples
            configurations[name] = {
                "latency_summary": summarize([s.seconds for s in samples]),
                "samples": len(samples),
                "work": total_work,
                "phases": total_phases,
                "recursive_workload": recursive,
            }

    # -- locality: caller dirtying independent of program size ---------------
    locality = {}
    for label, bystanders in (("small", 4), ("large", 24)):
        cfgs = build_program_cfgs(parse_program(bystander_source(bystanders)))
        engine = InterproceduralEngine(cfgs, domain_factory(),
                                       policy_by_name("1-call-site"))
        engine.query_entry_exit()
        deltas = _leaf_edit_stream(engine, edits=10)
        locality[label] = {
            "bystanders": bystanders,
            "program_size": sum(cfg.size() for cfg in cfgs.values()),
            "dirties_per_edit": deltas["interproc_callsite_dirties"] / 10.0,
            "callsite_scans": deltas["interproc_callsite_scans"],
        }

    # -- structure sharing: one CfgStructure per procedure -------------------
    chain = parse_program("""
        function leaf(x) { return x + 1; }
        function mid(y) { var a = leaf(y); var b = leaf(a); return a + b; }
        function top(z) { var c = mid(z); var d = mid(c); return c + d; }
        function main() { var u = top(1); var v = top(50); return u + v; }
    """)
    cfgs = build_program_cfgs(chain)
    # Warm each procedure's structure cache once (CFG lowering itself pays
    # one build pre-prune and one post-prune); everything the analysis does
    # beyond this point is attributable to the (procedure, context) engines.
    for cfg in cfgs.values():
        cfg.ensure_structure()
    builds_before = sum(cfg.structure_stats()["structure_full_builds"]
                        for cfg in cfgs.values())
    engine = InterproceduralEngine(cfgs, domain_factory(),
                                   policy_by_name("2-call-site"))
    engine.analyze_everything()
    builds_after = sum(cfg.structure_stats()["structure_full_builds"]
                       for cfg in cfgs.values())
    stats = engine.total_stats()
    contexts = {
        "procedures": len(cfgs),
        "daigs": stats["daigs"],
        "structure_full_builds": stats["structure_full_builds"],
        "structure_builds_during_analysis": builds_after - builds_before,
        "snapshot_full_captures": stats["snapshot_full_captures"],
    }

    artifact = {
        "workload": {"edits": edits, "trials": trials,
                     "procedures": procedures,
                     "policy": "1-call-site", "domain": "interval"},
        "configurations": configurations,
        "locality": locality,
        "contexts": contexts,
    }
    path = os.environ.get("REPRO_BENCH_INTERPROC_JSON", "BENCH_interproc.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return artifact, samples_by_name


def test_interproc_configuration_comparison(interproc_results, benchmark):
    """The fig10 shape holds across procedures: incremental & demand-driven
    beats from-scratch re-analysis, on recursive and non-recursive
    workloads alike."""
    artifact, samples = interproc_results
    benchmark(lambda: {name: summarize([s.seconds for s in series])
                       for name, series in samples.items()})
    print("\n=== Interprocedural configurations (measured, seconds) ===")
    rows = {name: data["latency_summary"]
            for name, data in artifact["configurations"].items()}
    for name in sorted(rows):
        row = rows[name]
        print("%-28s mean=%.5f p50=%.5f p95=%.5f" % (
            name, row["mean"], row["p50"], row["p95"]))
    for suffix in ("", "+rec"):
        batch = rows["interproc-batch" + suffix]
        combined = rows["interproc-incr+demand" + suffix]
        assert combined["mean"] < batch["mean"]
        assert combined["p95"] <= batch["p95"]


def test_interproc_no_callsite_scans(interproc_results):
    """No configuration ever rescans a DAIG ref set to find call sites."""
    artifact, _samples = interproc_results
    for name, data in artifact["configurations"].items():
        assert data["work"].get("interproc_callsite_scans", 0) == 0, name


def test_interproc_edit_locality_independent_of_program_size(interproc_results):
    """Editing a leaf dirties the same number of dependent call cells no
    matter how many unrelated procedures the program contains."""
    artifact, _samples = interproc_results
    small = artifact["locality"]["small"]
    large = artifact["locality"]["large"]
    assert large["program_size"] > 2 * small["program_size"]
    assert small["callsite_scans"] == 0 and large["callsite_scans"] == 0
    assert large["dirties_per_edit"] == small["dirties_per_edit"]
    print("\nlocality: %.1f dirtied call cells/edit at size %d and %d alike"
          % (small["dirties_per_edit"], small["program_size"],
             large["program_size"]))


def test_interproc_structure_shared_across_contexts(interproc_results):
    """2-call-site analysis builds many DAIGs but pays the structure phase
    once per procedure."""
    artifact, _samples = interproc_results
    contexts = artifact["contexts"]
    assert contexts["daigs"] > contexts["procedures"]
    assert contexts["structure_builds_during_analysis"] == 0
    print("\ncontexts: %d DAIGs over %d procedures, %d structure builds "
          "during analysis"
          % (contexts["daigs"], contexts["procedures"],
             contexts["structure_builds_during_analysis"]))


def test_interproc_incr_demand_step_latency(benchmark, interproc_scale):
    """pytest-benchmark: one representative incr+demand workload step."""
    edits, _trials, procedures = interproc_scale
    workload = generate_interproc_trials(
        edits=edits, trials=1, base_seed=23, procedures=procedures)[0]
    configuration = InterprocIncrementalDemandConfiguration(
        workload.fresh_cfgs(), IntervalDomain(), policy_by_name("1-call-site"))
    for step in workload.steps[:-1]:
        configuration.step(step)
    probe = workload.steps[-1]

    def run_last_step():
        configuration.answer_queries(probe.query_sites)

    benchmark(run_last_step)
