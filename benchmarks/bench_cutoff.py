"""Early-cutoff change propagation: edits that preserve values are cheap.

The subject program is a call *chain*: a tiny ``leaf`` procedure called
through ``depth`` loop-heavy middle procedures from ``main`` (the loops
sit *after* each call, so they are downstream of the callee's summary and
must be re-analyzed whenever the summary is dirtied).  Two edit streams
run against ``leaf``:

* ``value_preserving`` — toggles ``acc = (n + 2)`` to ``acc = (2 + n)``
  and back: the text (and the CFG digest) changes on every edit, but the
  abstract exit summary does not.  With cutoff enabled, the engine
  recomputes only the leaf, certifies its exit unchanged, re-keys the
  captured caller summaries under the new code digest, and never dirties
  a single caller — the whole chain of middle-loop fixpoints is skipped.
* ``semantic`` — toggles ``n + 2`` to ``n + 3`` and back: the summary
  genuinely changes, cutoff certification must fail, and full caller
  propagation runs.  (Both streams end on the original program text.)

Each stream runs on a cutoff-enabled and a cutoff-disabled engine, per
context policy.  The hard invariant — cutoff changes only latency, never
any answer — is asserted as digest equality: cutoff == no-cutoff == a
from-scratch engine on the final program, bit for bit, for every policy
and both streams.  The headline number is the value-preserving streams'
edit->re-query latency ratio (no-cutoff / cutoff), required >= 2x.

Counters are snapshotted after the initial query and after the edit
stream, so each section reports the *stream's* deltas: cutoff runs must
show ``summary_cutoffs``/``cells_cutoff`` firing with zero call-site
dirtying; cutoff-disabled runs must keep every cutoff counter at zero.

Everything lands in ``BENCH_cutoff.json`` (override with
``REPRO_BENCH_CUTOFF_JSON``); CI uploads it and asserts the counters,
the digests, and the speedup on it.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program

POLICIES = ("context-insensitive", "1-call-site", "2-call-site")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _scale():
    return (_env_int("REPRO_BENCH_CUTOFF_DEPTH", 5),
            _env_int("REPRO_BENCH_CUTOFF_BOUND", 40),
            _env_int("REPRO_BENCH_CUTOFF_EDITS", 4),
            _env_int("REPRO_BENCH_CUTOFF_REPEATS", 2))


def chain_call_graph_source(depth: int, bound: int) -> str:
    """``main -> mid{depth-1} -> ... -> mid0 -> leaf``.

    The leaf is deliberately tiny (re-certifying its exit after an edit
    is cheap); every middle procedure carries a nested loop pair *after*
    its call, so the loop's fixpoint depends on the callee summary and is
    re-analyzed whenever the summary is dirtied.  The savings the cutoff
    can realize — skipping every caller — therefore dominate the cost it
    cannot avoid (recomputing the edited leaf).
    """
    parts = ["""function leaf(n) {
  var acc = (n + 2);
  return acc;
}"""]
    callee = "leaf"
    for index in range(depth):
        name = "mid%d" % index
        limit = bound + 5 * index
        parts.append("\n".join([
            "function %s(x) {" % name,
            "  var r = %s(x);" % callee,
            "  var j = 0;",
            "  while (j < %d) {" % limit,
            "    var k = 0;",
            "    while (k < %d) {" % (limit // 2 + 1),
            "      var t = r + k;",
            "      if (t > %d) { r = r - 1; } else { r = r + 2; }" % (limit // 2),
            "      k = k + 1;",
            "    }",
            "    j = j + 1;",
            "  }",
            "  return r;",
            "}"]))
        callee = name
    parts.append("""function main() {
  var out = %s(1);
  return out;
}""" % callee)
    return "\n\n".join(parts)


def _build_cfgs(source):
    cfgs = build_program_cfgs(parse_program(source))
    for cfg in cfgs.values():
        cfg.ensure_structure()  # CFG lowering cost is not analysis
    return cfgs


def _toggle_edge(procedure_engine):
    """The leaf's ``acc = ...`` statement (wherever the toggles left it)."""
    for edge in procedure_engine.cfg.edges:
        stmt = edge.stmt
        if (isinstance(stmt, A.AssignStmt) and stmt.target == "acc"
                and isinstance(stmt.value, A.BinOp) and stmt.value.op == "+"):
            return edge
    raise AssertionError("leaf's toggle statement not found")


def _value_preserving_stmt(step: int) -> A.AssignStmt:
    """New text every step, same abstract value (interval + is commutative).

    Even steps swap the operands away from the source's ``(n + 2)``; odd
    steps swap them back, so an even-length stream ends on the original.
    """
    if step % 2 == 0:
        return A.AssignStmt("acc", A.BinOp("+", A.IntLit(2), A.Var("n")))
    return A.AssignStmt("acc", A.BinOp("+", A.Var("n"), A.IntLit(2)))


def _semantic_stmt(step: int) -> A.AssignStmt:
    """A genuine value change (+3) and its revert (+2), alternating."""
    literal = 3 if step % 2 == 0 else 2
    return A.AssignStmt("acc", A.BinOp("+", A.Var("n"), A.IntLit(literal)))


_COUNTER_KEYS = {
    "summary_cutoffs": "interproc_summary_cutoffs",
    "store_rekeys": "interproc_store_rekeys",
    "callsite_dirties": "interproc_callsite_dirties",
    "callsite_scans": "interproc_callsite_scans",
    "summary_misses": "interproc_summary_misses",
}
_WORK_KEYS = ("cells_cutoff", "cells_restored", "transfers")


def _snapshot(engine):
    snap = dict(engine.counters)
    snap.update(engine.total_stats())
    return snap


def _run_stream(source, policy_name, cutoff, edits, make_stmt):
    """Initial query, then ``edits`` timed edit->re-query steps.

    Reported counters are the *stream's* deltas (initial analysis
    excluded), so cutoff rates are not buried under the first fixpoint.
    The digest at the end deliberately runs after the timing and the
    counter snapshot: it drives exhaustive evaluation.
    """
    engine = InterproceduralEngine(_build_cfgs(source), IntervalDomain(),
                                   policy_by_name(policy_name), cutoff=cutoff)
    engine.query_entry_exit()
    before = _snapshot(engine)
    started = time.perf_counter()
    for step in range(edits):
        stmt = make_stmt(step)
        engine.edit_procedure(
            "leaf",
            lambda pe, _stmt=stmt: pe.replace_statement(_toggle_edge(pe), _stmt))
        engine.query_entry_exit()
    seconds = time.perf_counter() - started
    after = _snapshot(engine)
    snapshot = {"seconds": seconds, "edits": edits}
    for label, counter in _COUNTER_KEYS.items():
        snapshot[label] = after[counter] - before[counter]
    for label in _WORK_KEYS:
        snapshot[label] = after[label] - before[label]
    snapshot["digest"] = engine.summary_digest()
    return snapshot


def _stream_section(source, policy_name, edits, repeats, make_stmt):
    section = None
    for _repeat in range(max(1, repeats)):
        with_cutoff = _run_stream(source, policy_name, True, edits, make_stmt)
        without = _run_stream(source, policy_name, False, edits, make_stmt)
        if section is None:
            section = {"cutoff": with_cutoff, "nocutoff": without}
        else:
            # Counters and digests are identical across repeats; keep the
            # per-run best wall clock (noise dominates at tiny scales).
            for run, snapshot in (("cutoff", with_cutoff),
                                  ("nocutoff", without)):
                if snapshot["seconds"] < section[run]["seconds"]:
                    section[run]["seconds"] = snapshot["seconds"]
    assert section is not None
    section["speedup"] = (
        section["nocutoff"]["seconds"] / section["cutoff"]["seconds"]
        if section["cutoff"]["seconds"] > 0 else 0.0)
    return section


@pytest.fixture(scope="module")
def cutoff_results():
    """Measure every policy x stream x engine and write BENCH_cutoff.json."""
    depth, bound, edits, repeats = _scale()
    if edits % 2:
        edits += 1  # streams must end on the original program text
    source = chain_call_graph_source(depth, bound)

    # The from-scratch oracle: both streams end on the original text, so
    # one fresh cutoff-disabled engine per policy is the final-program
    # from-scratch answer for *both* streams.
    policies = {}
    for policy_name in POLICIES:
        oracle = InterproceduralEngine(_build_cfgs(source), IntervalDomain(),
                                       policy_by_name(policy_name),
                                       cutoff=False)
        oracle.query_entry_exit()
        policies[policy_name] = {
            "value_preserving": _stream_section(
                source, policy_name, edits, repeats, _value_preserving_stmt),
            "semantic": _stream_section(
                source, policy_name, edits, repeats, _semantic_stmt),
            "digest_scratch": oracle.summary_digest(),
        }

    artifact = {
        "workload": {"depth": depth, "bound": bound, "edits": edits,
                     "repeats": repeats, "domain": "interval",
                     "procedures": depth + 2, "edited": "leaf"},
        "policies": policies,
    }
    path = os.environ.get("REPRO_BENCH_CUTOFF_JSON", "BENCH_cutoff.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return artifact


def test_value_preserving_edits_cut_off(cutoff_results):
    """Every value-preserving edit certifies at the summary level: the
    cutoff counters fire, the caller summaries are re-keyed rather than
    recomputed, and not one call site is dirtied."""
    edits = cutoff_results["workload"]["edits"]
    for policy, section in cutoff_results["policies"].items():
        run = section["value_preserving"]["cutoff"]
        assert run["summary_cutoffs"] == edits, policy
        assert run["store_rekeys"] > 0, policy
        assert run["cells_cutoff"] > 0, policy
        assert run["callsite_dirties"] == 0, policy


def test_semantic_edits_never_cut_off(cutoff_results):
    """A genuine value change must fail certification every time — the
    cutoff is an optimization, not an approximation."""
    for policy, section in cutoff_results["policies"].items():
        run = section["semantic"]["cutoff"]
        assert run["summary_cutoffs"] == 0, policy
        assert run["callsite_dirties"] > 0, policy


def test_disabled_engines_never_cut_off(cutoff_results):
    """With ``cutoff=False`` the engine must behave exactly like the
    pre-cutoff code path: every cutoff counter stays at zero."""
    for policy, section in cutoff_results["policies"].items():
        for stream in ("value_preserving", "semantic"):
            run = section[stream]["nocutoff"]
            where = (policy, stream)
            assert run["summary_cutoffs"] == 0, where
            assert run["store_rekeys"] == 0, where
            assert run["cells_cutoff"] == 0, where
            assert run["cells_restored"] == 0, where
    # ... and the value-preserving streams it cannot shortcut do real
    # caller re-analysis, which is exactly what the cutoff engine skips.
    for policy, section in cutoff_results["policies"].items():
        assert (section["value_preserving"]["nocutoff"]["callsite_dirties"]
                > 0), policy


def test_cutoff_changes_latency_never_answers(cutoff_results):
    """The hard invariant, digest-certified: for every policy and both
    streams, the cutoff engine's final summaries equal the cutoff-disabled
    engine's and a from-scratch engine's, bit for bit."""
    for policy, section in cutoff_results["policies"].items():
        scratch = section["digest_scratch"]
        for stream in ("value_preserving", "semantic"):
            where = (policy, stream)
            assert section[stream]["cutoff"]["digest"] == scratch, where
            assert section[stream]["nocutoff"]["digest"] == scratch, where


def test_value_preserving_speedup(cutoff_results):
    """The headline: on value-preserving streams, cutoff makes the
    edit->re-query loop >= 2x faster (callers are never re-analyzed)."""
    for policy, section in cutoff_results["policies"].items():
        run = section["value_preserving"]
        print("\n%s: nocutoff %.4fs cutoff %.4fs (%.1fx)"
              % (policy, run["nocutoff"]["seconds"],
                 run["cutoff"]["seconds"], run["speedup"]))
        assert run["speedup"] >= 2.0, policy


def test_cutoff_keeps_locality(cutoff_results):
    """The cutoff path must not regress the locality invariant: no
    call-site scans on any run, ever."""
    for policy, section in cutoff_results["policies"].items():
        for stream in ("value_preserving", "semantic"):
            for run in ("cutoff", "nocutoff"):
                assert (section[stream][run]["callsite_scans"] == 0
                        ), (policy, stream, run)
