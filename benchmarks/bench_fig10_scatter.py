"""Fig. 10 (scatter plots): analysis latency against program size.

The paper shows one scatter plot per configuration: batch latencies grow
steeply with program size, incremental-only and demand-driven-only grow more
slowly but still have heavy tails, and the combined configuration stays flat
as the program grows.  This benchmark regenerates the bucketed series and
checks the growth-trend comparison.
"""

from __future__ import annotations

import pytest

from repro.analysis.config import BatchConfiguration
from repro.domains import OctagonDomain
from repro.workload import generate_trials, run_trial, scatter_series


def _growth(samples):
    """Mean latency in the last size-bucket divided by the first (slope proxy)."""
    series = scatter_series(samples, buckets=6)
    if len(series) < 2:
        return 1.0
    first = max(series[0][1], 1e-9)
    return series[-1][1] / first


def test_fig10_scatter_series(fig10_results, benchmark):
    benchmark(lambda: {name: scatter_series(samples, buckets=6)
                       for name, samples in fig10_results.items()})
    print("\n=== Fig. 10 scatter series: program size -> (mean, max) latency ===")
    growth = {}
    final_bucket_mean = {}
    for name, samples in fig10_results.items():
        series = scatter_series(samples, buckets=6)
        rendered = "  ".join("%d:(%.3f,%.3f)" % (size, mean, worst)
                             for size, mean, worst in series)
        growth[name] = _growth(samples)
        # Average of the last two buckets: the largest-program regime, with
        # enough samples to damp per-bucket noise.
        tail = series[-2:] if len(series) >= 2 else series
        final_bucket_mean[name] = sum(mean for _size, mean, _max in tail) / len(tail)
        print("%-14s %s" % (name, rendered))
    print("\nLatency growth factor from smallest to largest programs:")
    for name, factor in growth.items():
        print("  %-14s %.1fx  (mean at final size: %.3fs)"
              % (name, factor, final_bucket_mean[name]))

    # Batch latency grows with program size (the paper's steep scatter) and,
    # at the largest programs of the run, the combined configuration is
    # well below batch and demand-driven — the flat-vs-steep contrast of the
    # paper's plots.  (The first-bucket latencies are microsecond noise, so
    # the comparison is on the final-size bucket rather than growth ratios.)
    assert growth["batch"] > 2.0
    assert final_bucket_mean["batch"] > 1.8 * final_bucket_mean["incr+demand"]
    assert final_bucket_mean["demand-driven"] > final_bucket_mean["incr+demand"]


def test_fig10_scatter_batch_step_at_final_size(benchmark, workload_scale):
    """pytest-benchmark: one full batch re-analysis at the final program size."""
    edits, _trials = workload_scale
    steps = generate_trials(edits=edits, trials=1, base_seed=5)[0]
    configuration = BatchConfiguration(OctagonDomain())
    for step in steps[:-1]:
        configuration.cfg and step.edit.apply_to_cfg(configuration.cfg)
    last = steps[-1]

    def analyze_once():
        from repro.daig import DaigEngine, MemoTable
        engine = DaigEngine(configuration.cfg.copy(), OctagonDomain(),
                            memo=MemoTable())
        engine.query_all()

    benchmark(analyze_once)
