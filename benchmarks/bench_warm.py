"""Persistent summary store: warm starts do near-zero transfers.

The workload is :func:`repro.lang.programs.wide_call_graph_source` again —
``main`` calling ``width`` independent nested-loop workers, so virtually
all analysis work is the workers' loop fixpoints.  For each persistent
backend (sqlite, blob) and each context policy, the benchmark runs:

* ``cold``   — a fresh engine over a fresh, *empty* store: every worker
  summary is computed by demanded evaluation and written through;
* ``warm``   — a restarted engine (new process in spirit: a brand-new
  engine and a brand-new store handle reopened on the same path) over the
  same code: every summary lookup misses the in-memory memo table and hits
  the store, so no callee DAIG is ever evaluated;
* ``second`` — yet another engine on the same code and store, modelling a
  second analysis session (or machine) sharing the store.

Work counters are snapshotted immediately after the timed query and
*before* ``summary_digest()`` (the digest deliberately drives exhaustive
evaluation, which would bury the warm run's near-zero transfer count).
Digest equality — warm results == cold results, bit for bit, under every
policy — is the soundness certificate for serving summaries from disk.

A final ``mutated`` section warm-starts an engine, edits one worker
procedure, and re-queries: content-addressed invalidation must re-analyze
only the edited procedure (summary misses == O(dependent procedures), not
O(program)), and the result must equal a storeless engine that saw the
same edit.

Everything lands in ``BENCH_warm.json`` (override with
``REPRO_BENCH_WARM_JSON``); CI uploads it and asserts the warm-run
counters and digest equality on it for both backends.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program
from repro.lang.programs import wide_call_graph_source
from repro.store import open_store

POLICIES = ("context-insensitive", "1-call-site", "2-call-site")


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


def _scale():
    return (_env_int("REPRO_BENCH_WARM_WIDTH", 6),
            _env_int("REPRO_BENCH_WARM_LOOPS", 3),
            _env_int("REPRO_BENCH_WARM_BOUND", 40),
            _env_int("REPRO_BENCH_WARM_REPEATS", 2))


def _backends(tmp_root):
    """(backend name, fresh spec-string factory) for each persistent kind."""
    counters = {"n": 0}

    def fresh(kind):
        counters["n"] += 1
        base = os.path.join(tmp_root, "%s-%d" % (kind, counters["n"]))
        if kind == "sqlite":
            return "sqlite:%s.db" % base
        return "blob:%s" % base

    names = os.environ.get("REPRO_BENCH_WARM_BACKENDS", "sqlite,blob")
    return [(name.strip(), fresh) for name in names.split(",") if name.strip()]


def _build_cfgs(source):
    cfgs = build_program_cfgs(parse_program(source))
    for cfg in cfgs.values():
        cfg.ensure_structure()  # CFG lowering cost is not analysis
    return cfgs


def _timed_run(source, policy_name, store_spec):
    """Build an engine (a restart builds its engine too), answer the entry
    query, and snapshot counters *before* the digest's exhaustive drive."""
    policy = policy_by_name(policy_name)
    store = None if store_spec is None else open_store(store_spec)
    cfgs = _build_cfgs(source)
    started = time.perf_counter()
    engine = InterproceduralEngine(cfgs, IntervalDomain(), policy,
                                   store=store)
    engine.query_entry_exit()
    seconds = time.perf_counter() - started
    counters = dict(engine.counters)
    snapshot = {
        "seconds": seconds,
        "transfers": engine.total_stats()["transfers"],
        "summary_misses": counters["interproc_summary_misses"],
        "summary_hits": counters["interproc_summary_hits"],
        "store_hits": counters["interproc_store_hits"],
        "store_misses": counters["interproc_store_misses"],
        "store_writes": counters["interproc_store_writes"],
        "store_errors": counters["interproc_store_errors"],
        "callsite_scans": counters["interproc_callsite_scans"],
    }
    snapshot["digest"] = engine.summary_digest()
    return engine, snapshot


def _noise_edit(pe):
    pe.insert_statement_after(pe.cfg.entry, A.AssignStmt("noise", A.IntLit(1)))


def _mutated_section(source, spec, procedures):
    """Warm-start, edit one worker, re-query: invalidation must be local."""
    _timed_run(source, "context-insensitive", spec)  # populate the store
    engine, warm = _timed_run(source, "context-insensitive", spec)
    before = dict(engine.counters)
    engine.edit_procedure("work0", _noise_edit)
    engine.query_entry_exit()
    after = dict(engine.counters)
    digest = engine.summary_digest()

    # The oracle: a storeless engine that saw the same edit.
    oracle, _ = _timed_run(source, "context-insensitive", None)
    oracle.edit_procedure("work0", _noise_edit)
    oracle.query_entry_exit()

    return {
        "edited": "work0",
        "procedures": procedures,
        "warm_misses_before_edit": warm["summary_misses"],
        "misses_after_edit": (after["interproc_summary_misses"]
                              - before["interproc_summary_misses"]),
        "store_writes_after_edit": (after["interproc_store_writes"]
                                    - before["interproc_store_writes"]),
        "digest": digest,
        "digest_oracle": oracle.summary_digest(),
    }


@pytest.fixture(scope="module")
def warm_results(tmp_path_factory):
    """Measure every backend x policy and write BENCH_warm.json."""
    width, loops, bound, repeats = _scale()
    source = wide_call_graph_source(width, inner_loops=loops, bound=bound)
    tmp_root = str(tmp_path_factory.mktemp("warm-store"))

    backends = {}
    for backend, fresh in _backends(tmp_root):
        policies = {}
        for policy_name in POLICIES:
            section = None
            for _repeat in range(max(1, repeats)):
                spec = fresh(backend)  # cold means a fresh, empty store
                _, cold = _timed_run(source, policy_name, spec)
                _, warm = _timed_run(source, policy_name, spec)
                _, second = _timed_run(source, policy_name, spec)
                if section is None:
                    section = {"cold": cold, "warm": warm, "second": second}
                else:
                    # Counters and digests are identical across repeats;
                    # keep per-run best wall clock (noise on tiny scales).
                    for run, snapshot in (("cold", cold), ("warm", warm),
                                          ("second", second)):
                        if snapshot["seconds"] < section[run]["seconds"]:
                            section[run]["seconds"] = snapshot["seconds"]
            assert section is not None
            section["speedup_warm"] = (
                section["cold"]["seconds"] / section["warm"]["seconds"]
                if section["warm"]["seconds"] > 0 else 0.0)
            section["speedup_second"] = (
                section["cold"]["seconds"] / section["second"]["seconds"]
                if section["second"]["seconds"] > 0 else 0.0)
            policies[policy_name] = section
        backends[backend] = {
            "policies": policies,
            "mutated": _mutated_section(source, fresh(backend), width + 1),
        }

    artifact = {
        "workload": {"width": width, "inner_loops": loops, "bound": bound,
                     "repeats": repeats, "domain": "interval",
                     "procedures": width + 1},
        "backends": backends,
    }
    path = os.environ.get("REPRO_BENCH_WARM_JSON", "BENCH_warm.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return artifact


def test_warm_runs_do_near_zero_transfers(warm_results):
    """A restarted engine — and a second engine on the same store — serves
    every summary from disk: zero summary misses, zero writes, and only
    the entry procedure's own body is ever evaluated."""
    for backend, data in warm_results["backends"].items():
        for policy, section in data["policies"].items():
            where = "%s/%s" % (backend, policy)
            assert section["cold"]["summary_misses"] > 0, where
            assert section["cold"]["store_writes"] > 0, where
            for run in ("warm", "second"):
                assert section[run]["summary_misses"] == 0, (where, run)
                assert section[run]["store_writes"] == 0, (where, run)
                assert section[run]["store_errors"] == 0, (where, run)
                assert section[run]["store_hits"] >= 1, (where, run)
                # "Near zero": the entry body's handful of transfers, an
                # order of magnitude under the cold run's loop fixpoints.
                assert (section[run]["transfers"] * 10
                        <= section["cold"]["transfers"]), (where, run)


def test_warm_results_equal_cold_results(warm_results):
    """Digest-certified: serving summaries from the persistent store yields
    bit-for-bit the results of demanded evaluation, under every policy."""
    for backend, data in warm_results["backends"].items():
        for policy, section in data["policies"].items():
            where = "%s/%s" % (backend, policy)
            assert section["warm"]["digest"] == section["cold"]["digest"], where
            assert section["second"]["digest"] == section["cold"]["digest"], where


def test_warm_query_speedup(warm_results):
    """The headline: restart-and-query is >= 5x faster than cold analysis
    (the warm run replaces every worker loop fixpoint with a store read)."""
    for backend, data in warm_results["backends"].items():
        for policy, section in data["policies"].items():
            where = "%s/%s" % (backend, policy)
            print("\n%s: cold %.4fs warm %.4fs second %.4fs "
                  "(warm %.1fx, second %.1fx)"
                  % (where, section["cold"]["seconds"],
                     section["warm"]["seconds"], section["second"]["seconds"],
                     section["speedup_warm"], section["speedup_second"]))
            assert section["speedup_warm"] >= 5.0, where
            assert section["speedup_second"] >= 5.0, where


def test_mutated_warm_start_invalidates_locally(warm_results):
    """Editing one worker after a warm start re-analyzes O(dependent
    procedures), not the program: exactly the edited worker's summary
    misses (its digest changed), everything else stays served."""
    for backend, data in warm_results["backends"].items():
        mutated = data["mutated"]
        assert mutated["warm_misses_before_edit"] == 0, backend
        assert 1 <= mutated["misses_after_edit"] <= 2, backend
        assert mutated["misses_after_edit"] < mutated["procedures"], backend
        assert mutated["digest"] == mutated["digest_oracle"], backend


def test_warm_locality_counters_unchanged(warm_results):
    """The store tier must not regress the locality invariant: no
    call-site scans on any run."""
    for backend, data in warm_results["backends"].items():
        for policy, section in data["policies"].items():
            for run in ("cold", "warm", "second"):
                assert section[run]["callsite_scans"] == 0, (backend, policy, run)
