"""Ablation: context-sensitivity policy cost vs. precision (Section 7.1).

Interprocedural demanded analysis builds one DAIG per (procedure, context);
more context sensitivity means more DAIGs (more memory, more transfers) in
exchange for precision.  This ablation quantifies that trade-off over the
array suite: number of DAIGs constructed, abstract transfers evaluated,
wall-clock time, and accesses verified, for each policy.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import ArraySafetyClient
from repro.interproc import policy_by_name
from repro.lang import build_program_cfgs
from repro.lang.programs import ARRAY_PROGRAMS, array_program

POLICIES = ("insensitive", "1-call-site", "2-call-site")


def _run_policy(policy_name):
    verified = total = daigs = transfers = 0
    started = time.perf_counter()
    for name in sorted(ARRAY_PROGRAMS):
        cfgs = build_program_cfgs(array_program(name))
        client = ArraySafetyClient(cfgs, policy_by_name(policy_name))
        report = client.check(name)
        verified += report.verified
        total += report.total
        stats = client.engine.total_stats()
        daigs += stats["daigs"]
        transfers += stats["transfers"]
    return {
        "verified": verified,
        "total": total,
        "daigs": daigs,
        "transfers": transfers,
        "seconds": time.perf_counter() - started,
    }


@pytest.fixture(scope="module")
def context_results():
    return {policy: _run_policy(policy) for policy in POLICIES}


def test_ablation_context_sensitivity(context_results, benchmark):
    benchmark(lambda: {policy: row["verified"] for policy, row in context_results.items()})
    print("\n=== Ablation: context policy cost vs. precision (interval) ===")
    print("%-16s %10s %8s %11s %9s" % ("policy", "verified", "daigs",
                                        "transfers", "time(s)"))
    for policy in POLICIES:
        row = context_results[policy]
        print("%-16s %5d/%-5d %7d %11d %9.2f" % (
            policy, row["verified"], row["total"], row["daigs"],
            row["transfers"], row["seconds"]))

    insensitive = context_results["insensitive"]
    one_site = context_results["1-call-site"]
    two_site = context_results["2-call-site"]
    # Precision rises with sensitivity...
    assert insensitive["verified"] < one_site["verified"] < two_site["verified"]
    # ...and so does the number of per-context DAIGs (the cost axis).
    assert insensitive["daigs"] <= one_site["daigs"] <= two_site["daigs"]
    assert two_site["daigs"] > insensitive["daigs"]


def test_ablation_context_single_program(benchmark):
    """pytest-benchmark: 2-call-site analysis of the deepest-chain program."""
    cfgs = build_program_cfgs(array_program("peek_ends"))

    def analyze():
        client = ArraySafetyClient(
            {name: cfg.copy() for name, cfg in cfgs.items()},
            policy_by_name("2-call-site"))
        return client.check("peek_ends")

    report = benchmark(analyze)
    assert report.verified == report.total
