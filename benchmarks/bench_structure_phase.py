"""Structure-phase locality: edit latency work is O(affected region).

These benchmarks pin the asymptotic claim of the incremental structure
layer: the per-edit structure-phase work (dominator/loop maintenance and
snapshot re-signing) must not scale with program size.

* For **statement-only** edit streams the guarantee is exact: zero
  dominator/loop recomputation and zero full-CFG snapshot walks, with one
  snapshot location re-signed per edit — at *any* program size.
* For **structural** edit streams the work is proportional to the edit's
  affected region; the benchmark checks that the total locations
  re-analyzed stay well below edits x program-size (what the old
  from-scratch invalidation paid).

CI runs these as a smoke test alongside the Fig. 10 artifact.
"""

from __future__ import annotations

from repro.analysis.config import IncrementalDemandConfiguration
from repro.domains import OctagonDomain, SignDomain
from repro.workload import WorkloadGenerator, run_trial


def _grown_configuration(domain, edits, seed=0):
    """An I&DD configuration grown to ``edits`` edits, plus its generator."""
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(edits)
    configuration = IncrementalDemandConfiguration(domain)
    run_trial(configuration, steps)
    return configuration, generator


def _work_delta(configuration, steps):
    before = configuration.work_stats()
    run_trial(configuration, steps)
    after = configuration.work_stats()
    return {key: after.get(key, 0) - before.get(key, 0) for key in after}


def test_statement_only_stream_does_zero_structure_work(workload_scale):
    """Statement-only edits: no dominator/loop recomputation, no full
    snapshot walks, one snapshot re-sign per edit — independent of size."""
    edits, _trials = workload_scale
    relabels = 25
    for grow in (max(20, edits // 2), edits):
        configuration, generator = _grown_configuration(SignDomain(), grow)
        stream = generator.generate_statement_only(relabels)
        delta = _work_delta(configuration, stream)
        size = configuration.program_size()
        assert delta["structure_refreshes"] == 0, (size, delta)
        assert delta["structure_full_builds"] == 0, (size, delta)
        assert delta["structure_locs_reanalyzed"] == 0, (size, delta)
        assert delta["snapshot_full_captures"] == 0, (size, delta)
        # One location re-signed per relabel (deleting an already-skip
        # statement is a no-op and may re-sign nothing).
        assert delta["snapshot_locs_resigned"] <= relabels, (size, delta)


def test_structural_tail_edits_touch_constant_region(workload_scale):
    """Structural edits near the exit have a tiny forward region: the work
    they trigger is independent of program size (no full rebuilds, no
    O(program) re-analysis).

    (An insertion's affected region is its *forward closure* — the inserted
    location genuinely enters the dominator set of everything downstream —
    so size-independence is asserted where the closure is small; random
    positions are covered by the averaged bound below.)
    """
    import repro.lang.ast as A

    edits, _trials = workload_scale
    probe = 20
    works = []
    for grow in (max(20, edits // 2), edits):
        configuration, _generator = _grown_configuration(SignDomain(), grow)
        engine = configuration.engine
        before = configuration.work_stats()
        for i in range(probe):
            loc = engine.cfg.in_edges(engine.cfg.exit)[0].src
            engine.insert_statement_after(loc, A.AssignStmt("t", A.IntLit(i)))
        after = configuration.work_stats()
        delta = {k: after[k] - before.get(k, 0) for k in after}
        assert delta["structure_full_builds"] == 0, (grow, delta)
        works.append(delta["structure_locs_reanalyzed"]
                     + delta["snapshot_locs_resigned"])
    # Doubling the program must not scale the tail-edit structure work.
    assert works[1] <= 2 * works[0] + 8 * probe, works


def test_structural_stream_beats_per_edit_full_rebuilds(workload_scale):
    """Averaged over random edit positions, the structure phase re-analyzes
    strictly less than the old per-edit from-scratch invalidation did
    (which paid the full program for every edit)."""
    edits, _trials = workload_scale
    probe = 30
    configuration, generator = _grown_configuration(SignDomain(), edits)
    stream = generator.generate(probe)
    delta = _work_delta(configuration, stream)
    size = configuration.program_size()
    full_equivalent = probe * size  # what per-edit O(program) paid
    reanalyzed = (delta["structure_locs_reanalyzed"]
                  + delta["structure_full_builds"] * size)
    assert reanalyzed < 0.8 * full_equivalent, (size, delta)


def test_structure_phase_timing_benchmark(benchmark, workload_scale):
    """pytest-benchmark timing of a statement-only edit on a grown program
    (the pure fast path: patch + one-cell re-sign + dirty)."""
    import itertools

    edits, _trials = workload_scale
    configuration, generator = _grown_configuration(OctagonDomain(), edits)
    stream = itertools.cycle(generator.generate_statement_only(200))

    def one_statement_edit():
        step = next(stream)
        configuration.apply_edit(step.edit)

    benchmark(one_statement_edit)
