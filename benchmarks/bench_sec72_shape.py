"""Section 7.2 (shape analysis): verifying the linked-list programs.

The paper applies its DAIG-based separation-logic shape analysis to verify
the correctness (well-formedness of the returned list) and memory safety of
the ``append`` procedure of Fig. 1 and of several linked-list utilities from
Buckets.js (``foreach``, ``indexOf``, ...), and reports that analysis of the
``append`` traversal loop converges in a single demanded unrolling with a
precise result.  This benchmark regenerates that table of verdicts and
asserts the convergence claim.
"""

from __future__ import annotations

import pytest

from repro.analysis import ShapeVerificationClient
from repro.daig import DaigEngine
from repro.domains import ShapeDomain
from repro.lang import build_cfg
from repro.lang.programs import LIST_PROGRAMS, append_program, list_program

#: Paper-reported facts for EXPERIMENTS.md comparison.
PAPER_CLAIMS = {
    "append_verified": True,
    "append_demanded_unrollings": 1,
    "utilities_verified": ("foreach", "indexof"),
}


@pytest.fixture(scope="module")
def verdicts():
    client = ShapeVerificationClient()
    return {name: client.verify_program(list_program(name))[name]
            for name in sorted(LIST_PROGRAMS)}


def test_sec72_shape_verification_table(verdicts, benchmark):
    benchmark(lambda: {name: v.memory_safe for name, v in verdicts.items()})
    print("\n=== Section 7.2: shape-analysis verification of list programs ===")
    print("%-10s %-12s %-18s %-11s %s" % (
        "procedure", "memory-safe", "well-formed return", "unrollings",
        "exit disjuncts"))
    for name, verdict in verdicts.items():
        wellformed = ("n/a" if verdict.returns_wellformed_list is None
                      else str(verdict.returns_wellformed_list))
        print("%-10s %-12s %-18s %-11d %d" % (
            name, verdict.memory_safe, wellformed,
            verdict.demanded_unrollings, verdict.disjuncts_at_exit))

    # Every analyzed list utility is memory safe (no possible null deref).
    assert all(verdict.memory_safe for verdict in verdicts.values())
    # `append` returns a well-formed list and its loop converges after one
    # demanded unrolling, exactly as reported in the paper.
    assert verdicts["append"].returns_wellformed_list is True
    assert verdicts["append"].demanded_unrollings == \
        PAPER_CLAIMS["append_demanded_unrollings"]
    # The utilities the paper names are verified too.
    assert verdicts["foreach"].returns_wellformed_list is True
    assert verdicts["indexof"].memory_safe


def test_sec72_shape_incremental_requery(benchmark):
    """pytest-benchmark: edit + re-query of append, reusing the loop fixed point.

    The edit inserts a print statement on the ``p == null`` branch; the
    traversal loop's fixed point is unaffected, so the re-query reuses it and
    only recomputes the edited branch.  Each round starts from a freshly
    analyzed engine so rounds are independent.
    """
    from repro.lang import ast as A
    base_cfg = build_cfg(append_program().procedure("append"))
    domain = ShapeDomain()

    def setup():
        engine = DaigEngine(base_cfg.copy(), domain)
        engine.query_location(engine.cfg.exit)
        return (engine,), {}

    def edit_and_requery(engine):
        branch = next(edge for edge in engine.cfg.edges
                      if isinstance(edge.stmt, A.AssumeStmt)
                      and "p == null" in str(edge.stmt))
        engine.insert_statement_after(branch.dst, A.PrintStmt(A.Var("q")))
        return engine.query_location(engine.cfg.exit)

    result = benchmark.pedantic(edit_and_requery, setup=setup, rounds=20)
    assert not result.faults()


def test_sec72_shape_batch_append(benchmark):
    """pytest-benchmark: from-scratch shape analysis of append (baseline)."""
    cfg = build_cfg(append_program().procedure("append"))
    domain = ShapeDomain()

    def analyze():
        return DaigEngine(cfg.copy(), domain).query_location(cfg.exit)

    exit_state = benchmark(analyze)
    assert domain.verifies_wellformed(exit_state, "ret")
