"""Fig. 10 (summary table): per-configuration analysis-latency statistics.

Paper numbers (seconds), for reference:

    Analysis   mean   p50   p90   p95    p99
    Batch       9.0   1.4  18.9  36.2  173.6
    Incr.       1.7   0.6   3.6   6.3   16.6
    DD          1.5   0.1   3.7   7.9   16.7
    I&DD        0.3   0.1   0.7   1.2    3.0

The reproduction uses a pure-Python octagon domain and a scaled-down
workload, so absolute numbers are smaller; the expected *shape* is that
incremental-only and demand-driven-only each beat batch, and the combined
incremental & demand-driven configuration beats everything, most visibly in
the tail percentiles.
"""

from __future__ import annotations

import pytest

from repro.analysis.config import IncrementalDemandConfiguration
from repro.domains import OctagonDomain
from repro.workload import format_summary_table, generate_trials, run_trial, summarize

#: Paper-reported latency statistics (seconds) for EXPERIMENTS.md comparison.
PAPER_TABLE = {
    "batch": {"mean": 9.0, "p50": 1.4, "p90": 18.9, "p95": 36.2, "p99": 173.6},
    "incremental": {"mean": 1.7, "p50": 0.6, "p90": 3.6, "p95": 6.3, "p99": 16.6},
    "demand-driven": {"mean": 1.5, "p50": 0.1, "p90": 3.7, "p95": 7.9, "p99": 16.7},
    "incr+demand": {"mean": 0.3, "p50": 0.1, "p90": 0.7, "p95": 1.2, "p99": 3.0},
}


def test_fig10_summary_table(fig10_results, benchmark):
    """Regenerate the Fig. 10 table and check the ordering the paper reports."""
    rows = benchmark(lambda: {name: summarize([s.seconds for s in samples])
                              for name, samples in fig10_results.items()})

    print("\n=== Fig. 10 summary table (measured, seconds) ===")
    print(format_summary_table(rows))
    print("\n=== Fig. 10 summary table (paper, seconds) ===")
    print(format_summary_table(PAPER_TABLE))

    # Shape checks: the combined technique clearly beats the from-scratch
    # configurations, and every non-batch configuration beats batch.  At the
    # scaled-down default program size the incremental-only and combined
    # configurations are close (eager recomputation of a small program is
    # cheap, and with hash-consed domain operations both configurations'
    # per-step latencies sit in the low-millisecond, noise-dominated range),
    # so the comparison against incremental only bounds the gap loosely;
    # the scatter benchmark checks the growth trend that separates them.
    assert rows["incr+demand"]["mean"] < rows["batch"]["mean"]
    assert rows["incr+demand"]["p95"] < rows["batch"]["p95"]
    assert rows["incr+demand"]["p95"] < rows["demand-driven"]["p95"]
    assert rows["incr+demand"]["p95"] <= 2.5 * rows["incremental"]["p95"]
    assert rows["incremental"]["mean"] < rows["batch"]["mean"]
    assert rows["demand-driven"]["mean"] < rows["batch"]["mean"]


def test_fig10_incr_demand_step_latency(benchmark, workload_scale):
    """pytest-benchmark timing of one representative I&DD workload step."""
    edits, _trials = workload_scale
    steps = generate_trials(edits=edits, trials=1, base_seed=7)[0]
    warmup, probe = steps[:-1], steps[-1]

    configuration = IncrementalDemandConfiguration(OctagonDomain())
    for step in warmup:
        configuration.step(step.edit, step.query_locations)

    def run_last_step():
        configuration.answer_queries(probe.query_locations)

    benchmark(run_last_step)
