"""Shared configuration for the benchmark harness.

The paper's full workload (3,000 edits x 9 trials, 135,000 queries) takes
hours in pure Python; the checked-in defaults are scaled down so that
``pytest benchmarks/ --benchmark-only`` completes in a few minutes while
preserving the *shape* of every comparison (which configuration wins, by
roughly what factor, and where the tails are).  Set the environment
variables below to run closer to paper scale:

* ``REPRO_BENCH_EDITS``  — edits per trial (paper: 3000; default: 120)
* ``REPRO_BENCH_TRIALS`` — independent trials (paper: 9; default: 2)
* ``REPRO_BENCH_BATCH``  — consecutive edits coalesced into one splice per
  workload step (default: 1, the paper's one-edit-per-step session)
* ``REPRO_BENCH_JSON``   — path to dump the latency summaries and work
  counters (splice-vs-rebuild cell counts) as JSON; CI uploads this as the
  perf-trajectory artifact (default: ``BENCH_fig10.json`` in the CWD)
"""

from __future__ import annotations

import json
import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def workload_scale():
    """The (edits, trials) pair used by the Fig. 10 benchmarks."""
    return _env_int("REPRO_BENCH_EDITS", 120), _env_int("REPRO_BENCH_TRIALS", 2)


@pytest.fixture(scope="session")
def fig10_results(workload_scale):
    """Run the Fig. 10 workload once per session and share it across benches.

    Returns ``{configuration name: [LatencySample, ...]}`` pooled over all
    trials, and writes the summaries plus each configuration's final work
    counters (transfers, splice-vs-rebuild cell counts, ...) to the JSON
    artifact path.
    """
    from repro.analysis.config import ALL_CONFIGURATIONS
    from repro.domains import OctagonDomain
    from repro.workload import generate_trials, run_trial, summarize

    edits, trials = workload_scale
    batch_size = max(1, _env_int("REPRO_BENCH_BATCH", 1))
    streams = generate_trials(edits=edits, trials=trials, base_seed=0)
    results = {}
    work = {}
    phases = {}
    for configuration_cls in ALL_CONFIGURATIONS:
        samples = []
        total_work = {}
        total_phases = {}
        for stream in streams:
            configuration = configuration_cls(OctagonDomain())
            outcome = run_trial(configuration, stream, batch_size=batch_size)
            samples.extend(outcome.samples)
            for key, value in outcome.work.items():
                total_work[key] = total_work.get(key, 0) + value
            for key, value in outcome.phases.items():
                total_phases[key] = total_phases.get(key, 0.0) + value
        results[configuration_cls.name] = samples
        work[configuration_cls.name] = total_work
        phases[configuration_cls.name] = total_phases

    from repro.intern import intern_stats

    artifact = {
        "workload": {"edits": edits, "trials": trials, "batch_size": batch_size},
        "configurations": {
            name: {
                "latency_summary": summarize([s.seconds for s in samples]),
                "samples": len(samples),
                "work": work[name],
                # Per-phase latency breakdown (structure update / snapshot
                # update / splice / query), so future PRs can see which
                # phase regressed, not just the end-to-end latency.
                "phases": phases[name],
            }
            for name, samples in results.items()
        },
        # Hash-consing effectiveness over the whole workload: per-type intern
        # table hit/miss counters (hits = states/names reused by identity).
        "intern": intern_stats(),
        "perf_trajectory": _perf_trajectory(
            {"edits": edits, "trials": trials, "batch_size": batch_size},
            {name: phase.get("query", 0.0) for name, phase in phases.items()}),
    }
    path = os.environ.get("REPRO_BENCH_JSON", "BENCH_fig10.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return results


#: Query-phase seconds measured at the reference scale (edits=120, trials=2,
#: batch_size=1, base_seed=0) immediately *before* the hash-consing PR — the
#: first entry of the perf trajectory.  Update this table (and the label)
#: whenever a PR materially moves the numbers, so the artifact always records
#: where the current numbers came from.
_QUERY_SECONDS_BASELINE = {
    "label": "pre-hash-consing",
    "workload": {"edits": 120, "trials": 2, "batch_size": 1},
    "query_seconds": {
        "batch": 7.3164,
        "incremental": 1.5026,
        "demand-driven": 5.4498,
        "incr+demand": 1.1087,
    },
}


@pytest.fixture(scope="session")
def fig10_query_baseline():
    """The pre-hash-consing query-phase seconds (perf-trajectory anchor)."""
    return _QUERY_SECONDS_BASELINE


def _perf_trajectory(workload, current_query_seconds):
    """Before/after query-phase seconds (speedups only at the same scale)."""
    trajectory = {
        "baseline": _QUERY_SECONDS_BASELINE,
        "current_query_seconds": current_query_seconds,
        "comparable": workload == _QUERY_SECONDS_BASELINE["workload"],
    }
    if trajectory["comparable"]:
        baseline = _QUERY_SECONDS_BASELINE["query_seconds"]
        trajectory["speedup"] = {
            name: round(baseline[name] / seconds, 3)
            for name, seconds in current_query_seconds.items()
            if name in baseline and seconds > 0.0
        }
    return trajectory
