"""Shared configuration for the benchmark harness.

The paper's full workload (3,000 edits x 9 trials, 135,000 queries) takes
hours in pure Python; the checked-in defaults are scaled down so that
``pytest benchmarks/ --benchmark-only`` completes in a few minutes while
preserving the *shape* of every comparison (which configuration wins, by
roughly what factor, and where the tails are).  Set the environment
variables below to run closer to paper scale:

* ``REPRO_BENCH_EDITS``   — edits per trial (paper: 3000; default: 120)
* ``REPRO_BENCH_TRIALS``  — independent trials (paper: 9; default: 2)
"""

from __future__ import annotations

import os

import pytest


def _env_int(name: str, default: int) -> int:
    try:
        return int(os.environ.get(name, default))
    except ValueError:
        return default


@pytest.fixture(scope="session")
def workload_scale():
    """The (edits, trials) pair used by the Fig. 10 benchmarks."""
    return _env_int("REPRO_BENCH_EDITS", 120), _env_int("REPRO_BENCH_TRIALS", 2)


@pytest.fixture(scope="session")
def fig10_results(workload_scale):
    """Run the Fig. 10 workload once per session and share it across benches."""
    from repro.analysis.config import ALL_CONFIGURATIONS
    from repro.domains import OctagonDomain
    from repro.workload import generate_trials, run_trial

    edits, trials = workload_scale
    streams = generate_trials(edits=edits, trials=trials, base_seed=0)
    results = {}
    for configuration_cls in ALL_CONFIGURATIONS:
        samples = []
        for stream in streams:
            configuration = configuration_cls(OctagonDomain())
            outcome = run_trial(configuration, stream)
            samples.extend(outcome.samples)
        results[configuration_cls.name] = samples
    return results
