"""Section 7.2 (interval analysis): array-access verification counts.

The paper instantiates the framework with an (APRON-backed) interval domain
and verifies array-access safety in 23 array-manipulating programs from the
Buckets.JS test suite, 85 accesses in total:

    context policy        verified accesses
    2-call-site           85 / 85  (100%)
    1-call-site           71 / 74  ( 96%)
    context-insensitive    4 / 18  ( 22%)

This reproduction runs the same client over its 23 Buckets-style programs
and reports the same three rows; the expected shape is a strict precision
staircase (2-call-site >= 1-call-site > context-insensitive), with
2-call-site verifying every access.
"""

from __future__ import annotations

import pytest

from repro.analysis import ArraySafetyClient
from repro.interproc import policy_by_name
from repro.lang import build_program_cfgs
from repro.lang.programs import ARRAY_PROGRAMS, array_program

POLICIES = ("insensitive", "1-call-site", "2-call-site")

#: Paper-reported verification counts for EXPERIMENTS.md comparison.
PAPER_COUNTS = {"insensitive": (4, 18), "1-call-site": (71, 74),
                "2-call-site": (85, 85)}


def _run_policy(policy_name):
    verified = total = 0
    per_program = {}
    for name in sorted(ARRAY_PROGRAMS):
        cfgs = build_program_cfgs(array_program(name))
        client = ArraySafetyClient(cfgs, policy_by_name(policy_name))
        report = client.check(name)
        verified += report.verified
        total += report.total
        per_program[name] = (report.verified, report.total)
    return verified, total, per_program


@pytest.fixture(scope="module")
def verification_counts():
    return {policy: _run_policy(policy) for policy in POLICIES}


def test_sec72_interval_verification_table(verification_counts, benchmark):
    benchmark(lambda: {policy: counts[:2] for policy, counts in verification_counts.items()})
    print("\n=== Section 7.2: array accesses verified by the interval analysis ===")
    print("%-18s %12s %12s" % ("context policy", "measured", "paper"))
    for policy in POLICIES:
        verified, total, _ = verification_counts[policy]
        paper_v, paper_t = PAPER_COUNTS[policy]
        print("%-18s %6d/%-6d %6d/%-6d" % (policy, verified, total, paper_v, paper_t))

    insensitive = verification_counts["insensitive"]
    one_site = verification_counts["1-call-site"]
    two_site = verification_counts["2-call-site"]
    # The strict precision staircase of the paper.
    assert insensitive[0] < one_site[0] < two_site[0]
    # 2-call-site sensitivity verifies every access in the suite.
    assert two_site[0] == two_site[1]
    # The suite matches the paper's shape: 23 programs, dozens of accesses
    # (ours access arrays directly more often than through shared library
    # helpers, so the absolute access count is lower than the paper's 85).
    assert len(ARRAY_PROGRAMS) == 23
    assert two_site[1] >= 50


def test_sec72_interval_unproven_programs(verification_counts, benchmark):
    """Context-insensitive analysis loses exactly the helper-routed accesses."""
    benchmark(lambda: verification_counts["insensitive"][2])
    _verified, _total, per_program = verification_counts["insensitive"]
    unproven = {name for name, (v, t) in per_program.items() if v < t}
    print("\nPrograms with unproven accesses (context-insensitive):", sorted(unproven))
    assert unproven  # imprecision exists without context sensitivity
    _v2, _t2, per_program_2cs = verification_counts["2-call-site"]
    assert all(v == t for v, t in per_program_2cs.values())


def test_sec72_interval_analysis_time(benchmark):
    """pytest-benchmark: demanded interval analysis of one whole program."""
    cfgs = build_program_cfgs(array_program("histogram"))

    def analyze():
        client = ArraySafetyClient(
            {name: cfg.copy() for name, cfg in cfgs.items()},
            policy_by_name("2-call-site"))
        return client.check("histogram")

    report = benchmark(analyze)
    assert report.verified == report.total
