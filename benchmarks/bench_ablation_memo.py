"""Ablation: the auxiliary memo table M (Section 2.2 / Fig. 8).

The DAIG alone already provides location-based reuse; the auxiliary memo
table adds location-*independent* reuse (Q-Match), which pays off when edits
move code around or when the same abstract computation recurs at different
locations.  This ablation runs the combined incremental & demand-driven
configuration with the memo table enabled and disabled and reports the
latency difference and hit rates.
"""

from __future__ import annotations

import time

import pytest

from repro.daig import DaigEngine, MemoTable
from repro.domains import OctagonDomain
from repro.lang import ast as A
from repro.lang.cfg import Cfg
from repro.workload import generate_trials, summarize


def _run_with_memo(steps, enabled: bool):
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    memo = MemoTable(enabled=enabled)
    engine = DaigEngine(cfg, OctagonDomain(), memo=memo)
    latencies = []
    for step in steps:
        started = time.perf_counter()
        step.edit.apply_to_engine(engine)
        for loc in step.query_locations:
            engine.query_location(loc)
        latencies.append(time.perf_counter() - started)
    return latencies, memo, engine


@pytest.fixture(scope="module")
def memo_ablation(workload_scale):
    edits, _trials = workload_scale
    steps = generate_trials(edits=edits, trials=1, base_seed=17)[0]
    with_memo = _run_with_memo(steps, enabled=True)
    without_memo = _run_with_memo(steps, enabled=False)
    return with_memo, without_memo


def test_ablation_memo_table(memo_ablation, benchmark):
    benchmark(lambda: summarize(memo_ablation[0][0]))
    (memo_latencies, memo, memo_engine), (plain_latencies, _plain, plain_engine) = \
        memo_ablation
    print("\n=== Ablation: auxiliary memo table on/off (incr+demand, octagon) ===")
    print("with memo    :", {k: round(v, 4) for k, v in summarize(memo_latencies).items()})
    print("without memo :", {k: round(v, 4) for k, v in summarize(plain_latencies).items()})
    print("memo stats   :", memo.stats())
    print("transfers    : with=%d without=%d"
          % (memo_engine.stats.transfers, plain_engine.stats.transfers))

    # The memo table can only avoid work: never more transfer evaluations.
    assert memo_engine.stats.transfers <= plain_engine.stats.transfers
    assert memo.hits > 0
    # Both runs answered the same queries over the same program history.
    assert memo_engine.cfg.size() == plain_engine.cfg.size()


def test_ablation_memo_query_latency(benchmark):
    """pytest-benchmark: a fresh engine answering one query with a warm memo."""
    steps = generate_trials(edits=40, trials=1, base_seed=23)[0]
    latencies, memo, engine = _run_with_memo(steps, enabled=True)
    cfg = engine.cfg

    def fresh_engine_with_warm_memo():
        # A new DAIG (e.g. after dropping all cells to save memory) still
        # benefits from the shared memo table.
        fresh = DaigEngine(cfg.copy(), OctagonDomain(), memo=memo)
        return fresh.query_location(cfg.exit)

    benchmark(fresh_engine_with_warm_memo)
