"""Ablation: widening strategy (footnote 4 of the paper).

The DAIG encoding applies ∇ at every abstract iteration of a loop head until
two consecutive iterates agree.  Footnote 4 notes that other widening
strategies work too; a common one is *widening with thresholds*, which jumps
to a program-derived constant instead of straight to infinity and therefore
often proves tighter loop bounds at the cost of extra iterations.

This ablation compares the plain interval widening with a thresholded
variant on the array suite: number of demanded unrollings, analysis time,
and how many array accesses each verifies.
"""

from __future__ import annotations

import time
from typing import Optional

import pytest

from repro.analysis import ArraySafetyClient
from repro.daig import DaigEngine
from repro.domains.interval import IntervalDomain
from repro.domains.values import Interval, IntervalLattice
from repro.interproc import policy_by_name
from repro.lang import build_program_cfgs
from repro.lang.programs import ARRAY_PROGRAMS, array_program

#: Thresholds derived from the constants common in the subject programs.
THRESHOLDS = (0, 1, 2, 4, 8, 16, 32, 64)


class ThresholdIntervalLattice(IntervalLattice):
    """Interval widening that lands on the nearest threshold before ±∞."""

    name = "interval-thresholds"

    def widen(self, older: Interval, newer: Interval) -> Interval:
        if older.empty:
            return newer
        if newer.empty:
            return older
        lo: Optional[int] = older.lo
        if older.lo is not None and (newer.lo is None or newer.lo < older.lo):
            candidates = [t for t in THRESHOLDS
                          if newer.lo is not None and t <= newer.lo]
            lo = max(candidates) if candidates else None
        hi: Optional[int] = older.hi
        if older.hi is not None and (newer.hi is None or newer.hi > older.hi):
            candidates = [t for t in THRESHOLDS
                          if newer.hi is not None and t >= newer.hi]
            hi = min(candidates) if candidates else None
        return Interval(lo, hi)


class ThresholdIntervalDomain(IntervalDomain):
    """The environment domain over the thresholded interval lattice."""

    def __init__(self) -> None:
        super().__init__()
        self.lattice = ThresholdIntervalLattice()
        self.name = "interval-thresholds"


def _run_suite(domain_factory):
    verified = total = 0
    unrollings = 0
    started = time.perf_counter()
    for name in sorted(ARRAY_PROGRAMS):
        cfgs = build_program_cfgs(array_program(name))
        client = ArraySafetyClient(cfgs, policy_by_name("2-call-site"),
                                   domain=domain_factory())
        report = client.check(name)
        verified += report.verified
        total += report.total
        unrollings += sum(engine.stats.unrollings
                          for engine in client.engine.engines.values())
    elapsed = time.perf_counter() - started
    return verified, total, unrollings, elapsed


def test_ablation_widening_strategies(benchmark):
    plain = _run_suite(IntervalDomain)
    thresholded = _run_suite(ThresholdIntervalDomain)
    benchmark(lambda: (plain[:2], thresholded[:2]))

    print("\n=== Ablation: widening strategy (interval, 2-call-site) ===")
    print("%-22s %10s %12s %10s" % ("strategy", "verified", "unrollings", "time(s)"))
    print("%-22s %6d/%-6d %9d %10.2f" % ("widen-to-infinity", plain[0], plain[1],
                                          plain[2], plain[3]))
    print("%-22s %6d/%-6d %9d %10.2f" % ("widen-with-thresholds", thresholded[0],
                                          thresholded[1], thresholded[2],
                                          thresholded[3]))

    # Both strategies are sound and verify the whole suite; thresholds never
    # verify fewer accesses, and both converge (bounded unrollings).
    assert plain[0] == plain[1]
    assert thresholded[0] >= plain[0]
    assert plain[2] > 0 and thresholded[2] > 0


def test_ablation_widening_loop_unrollings(benchmark):
    """pytest-benchmark: demanded fixed point of one loop under thresholds."""
    cfgs = build_program_cfgs(array_program("sum"))

    def analyze():
        engine = DaigEngine(cfgs["main"].copy(), ThresholdIntervalDomain())
        engine.query_location(cfgs["main"].exit)
        return engine.stats.unrollings

    unrollings = benchmark(analyze)
    assert unrollings >= 1
