"""Domain-operation microbenchmarks and hash-consing effectiveness.

The hash-consing PR made every abstract state interned (structurally equal
states are the same object), equality O(1), and the join/transfer hot path
cheap; this module measures exactly those claims and lands the evidence in
``BENCH_domain.json`` (override with ``REPRO_BENCH_DOMAIN_JSON``):

1. **Microbenchmarks** — wall-clock per operation for ``join`` / ``widen``
   / ``leq`` / ``equal`` / ``transfer`` on representative interval-
   environment and octagon states, including the identity fast paths
   (``join(s, s)``, ``equal(s, s)``) that interning makes pointer-cheap.
2. **Intern-table hit rates** — per-type hit/miss counters after driving a
   real fig-10-style edit/query workload; CI asserts every hot table shows
   reuse (hit rate > 0).
3. **Fig-10 query-phase trajectory** — the before/after query-phase seconds
   comparison (the pre-PR baseline is recorded in ``conftest.py``), copied
   from the ``BENCH_fig10.json`` artifact when this session produced one.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.analysis.config import IncrementalDemandConfiguration
from repro.domains import IntervalDomain, OctagonDomain
from repro.domains.nonrel import EnvState
from repro.intern import all_tables, intern_stats, reset_intern_stats
from repro.lang import ast as A
from repro.workload import generate_trials, run_trial

#: Tables that a fig-10-style octagon workload must exercise; CI asserts a
#: nonzero hit rate on each (names interned per cell, octagon states shared
#: across memo entries and convergence checks).
HOT_TABLES = ("daig.Name", "octagon.OctagonState")


def _time_op(op, repeat: int = 2000) -> float:
    """Mean seconds per call of ``op`` over ``repeat`` calls."""
    started = time.perf_counter()
    for _ in range(repeat):
        op()
    return (time.perf_counter() - started) / repeat


def _interval_states(domain: IntervalDomain):
    """Two overlapping ~8-variable environments, the transfer-path shape."""
    state_a = domain.initial()
    state_b = domain.initial()
    for index in range(8):
        name = "v%d" % index
        state_a = domain.transfer(
            A.AssignStmt(name, A.IntLit(index)), state_a)
        state_b = domain.transfer(
            A.AssignStmt(name, A.IntLit(index + (index % 3))), state_b)
    return state_a, state_b


def _octagon_states(domain: OctagonDomain):
    """Two ~8-variable octagons with relational constraints."""
    state_a = domain.initial(["v%d" % i for i in range(8)])
    state_b = state_a
    for index in range(7):
        this, nxt = "v%d" % index, "v%d" % (index + 1)
        state_a = domain.transfer(
            A.AssignStmt(nxt, A.BinOp("+", A.Var(this), A.IntLit(1))), state_a)
        state_b = domain.transfer(
            A.AssignStmt(nxt, A.BinOp("+", A.Var(this), A.IntLit(2))), state_b)
    return state_a, state_b


def _op_micros(domain, state_a, state_b, stmt) -> dict:
    """Microseconds per domain operation (distinct and identical operands)."""
    return {
        "join_us": _time_op(lambda: domain.join(state_a, state_b)) * 1e6,
        "join_identical_us": _time_op(lambda: domain.join(state_a, state_a)) * 1e6,
        "widen_us": _time_op(lambda: domain.widen(state_a, state_b)) * 1e6,
        "leq_us": _time_op(lambda: domain.leq(state_a, state_b)) * 1e6,
        "equal_identical_us": _time_op(lambda: domain.equal(state_a, state_a)) * 1e6,
        "transfer_us": _time_op(lambda: domain.transfer(stmt, state_a)) * 1e6,
    }


@pytest.fixture(scope="module")
def domain_ops_artifact(fig10_query_baseline):
    """Measure everything once per session and write BENCH_domain.json."""
    interval = IntervalDomain()
    octagon = OctagonDomain()
    int_a, int_b = _interval_states(interval)
    oct_a, oct_b = _octagon_states(octagon)
    stmt = A.AssignStmt("v0", A.BinOp("+", A.Var("v1"), A.IntLit(3)))
    operations = {
        "interval-env": _op_micros(interval, int_a, int_b, stmt),
        "octagon": _op_micros(octagon, oct_a, oct_b, stmt),
    }

    # Drive a real (scaled-down) fig-10 workload so the intern hit rates
    # reflect analysis traffic, not the microbenchmark loops above (whose
    # discarded results are weakref-collected every iteration by design).
    reset_intern_stats()
    steps = generate_trials(edits=30, trials=1, base_seed=3)[0]
    run_trial(IncrementalDemandConfiguration(OctagonDomain()), steps)
    intern = intern_stats()
    for name, stats in intern.items():
        total = stats["hits"] + stats["misses"]
        stats["hit_rate"] = round(stats["hits"] / total, 4) if total else 0.0

    artifact = {
        "operations_microseconds": operations,
        "intern": intern,
        "fig10_query_trajectory": _fig10_trajectory(fig10_query_baseline),
    }
    path = os.environ.get("REPRO_BENCH_DOMAIN_JSON", "BENCH_domain.json")
    with open(path, "w") as handle:
        json.dump(artifact, handle, indent=2, sort_keys=True)
    return artifact


def _fig10_trajectory(baseline):
    """The before/after query-seconds comparison from BENCH_fig10.json.

    When the fig-10 artifact exists (CI runs ``bench_fig10_table.py``
    first), copy its trajectory; otherwise record only the checked-in
    pre-PR baseline so the artifact is self-describing either way.
    """
    fig10_path = os.environ.get("REPRO_BENCH_JSON", "BENCH_fig10.json")
    if os.path.exists(fig10_path):
        with open(fig10_path) as handle:
            fig10 = json.load(handle)
        if "perf_trajectory" in fig10:
            return fig10["perf_trajectory"]
    return {"baseline": baseline,
            "current_query_seconds": None, "comparable": False}


def test_identity_fast_paths_are_cheap(domain_ops_artifact):
    """`equal(s, s)` and `join(s, s)` are pointer checks: far cheaper than a
    structural join of two distinct states."""
    for domain, ops in domain_ops_artifact["operations_microseconds"].items():
        print("\n%s: %s" % (domain, {k: round(v, 3) for k, v in ops.items()}))
        assert ops["equal_identical_us"] < ops["join_us"], domain
        assert ops["join_identical_us"] < ops["join_us"], domain


def test_interning_reuses_states(domain_ops_artifact):
    """A real edit/query workload re-derives equal states constantly; the
    intern tables must show substantial reuse (and CI re-asserts this on
    the uploaded artifact)."""
    intern = domain_ops_artifact["intern"]
    for table in HOT_TABLES:
        assert table in intern, table
        assert intern[table]["hits"] > 0, table
        assert intern[table]["hit_rate"] > 0.0, table


def test_intern_tables_do_not_monopolize_memory(domain_ops_artifact):
    """Weak-value tables only retain reachable states: entry counts stay
    bounded by live objects, not by total constructions."""
    for table in all_tables():
        stats = table.stats()
        constructions = stats["misses"]
        if constructions:
            assert stats["entries"] <= constructions


def test_env_equality_is_identity():
    """The new invariant, spot-checked where benchmarks can see it: equal
    environments are the same object."""
    domain = IntervalDomain()
    state_a, _ = _interval_states(domain)
    state_b, _ = _interval_states(domain)
    assert state_a is state_b
    assert EnvState(state_a.bindings) is state_a
