"""repro — a Python reproduction of "Demanded Abstract Interpretation" (PLDI 2021).

The package is organized around the paper's architecture:

* :mod:`repro.lang` — the imperative language frontend (AST, parser, CFGs,
  subject programs);
* :mod:`repro.concrete` — the concrete semantics (soundness oracle);
* :mod:`repro.domains` — abstract domains behind the generic
  ⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩ interface (sign, constants, interval, octagon,
  separation-logic shape analysis);
* :mod:`repro.ai` — classical batch abstract interpretation (the baseline
  and from-scratch-consistency oracle);
* :mod:`repro.daig` — demanded abstract interpretation graphs: names, cells,
  initial construction, query semantics with demanded unrolling, incremental
  edit semantics, and the per-procedure engine;
* :mod:`repro.interproc` — context-sensitive interprocedural analysis built
  from one DAIG per (procedure, context);
* :mod:`repro.analysis` — the four analysis configurations of Section 7.3
  and the verification clients of Section 7.2;
* :mod:`repro.workload` — the synthetic edit/query workload generator and
  latency statistics used to reproduce Fig. 10.
"""

__version__ = "1.0.0"

from .lang import parse_program, build_cfg
from .domains import (
    ConstantDomain,
    IntervalDomain,
    OctagonDomain,
    ShapeDomain,
    SignDomain,
)
from .ai import BatchAnalyzer, analyze_cfg
from .daig import DaigEngine, MemoTable

__all__ = [
    "__version__",
    "parse_program",
    "build_cfg",
    "ConstantDomain",
    "IntervalDomain",
    "OctagonDomain",
    "ShapeDomain",
    "SignDomain",
    "BatchAnalyzer",
    "analyze_cfg",
    "DaigEngine",
    "MemoTable",
]
