"""Concrete semantics: states, interpreter, and bounded collecting semantics."""

from .state import (
    Address,
    ArrayValue,
    ConcreteError,
    ConcreteState,
    NullDereferenceError,
    OutOfBoundsError,
    initial_state,
)
from .interp import (
    CfgInterpreter,
    InfeasibleError,
    ProgramInterpreter,
    collecting_semantics,
    eval_expr,
    exec_stmt,
    random_initial_states,
)

__all__ = [
    "Address",
    "ArrayValue",
    "ConcreteError",
    "ConcreteState",
    "NullDereferenceError",
    "OutOfBoundsError",
    "initial_state",
    "CfgInterpreter",
    "InfeasibleError",
    "ProgramInterpreter",
    "collecting_semantics",
    "eval_expr",
    "exec_stmt",
    "random_initial_states",
]
