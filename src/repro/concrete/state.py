"""Concrete program states for the reference (concrete) semantics.

The concrete semantics of Section 3 interprets statements as partial
functions over concrete states ``σ ∈ Σ``.  A concrete state here is an
environment mapping variable names to values together with a heap mapping
addresses to records (used by the linked-list programs).  Values are:

* Python ``int`` / ``bool`` / ``str`` for scalars,
* ``None`` for the language's ``null``,
* :class:`ArrayValue` for arrays (reference semantics, like JavaScript),
* :class:`Address` for heap record references.

States are *copied* on each transition so that the collecting semantics can
keep historic states without aliasing surprises.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class Address:
    """An abstract heap address; identity is the allocation counter value."""

    index: int

    def __str__(self) -> str:
        return "addr#%d" % self.index


class ArrayValue:
    """A mutable array value with JavaScript-style reference semantics."""

    def __init__(self, elements: Optional[List[Any]] = None) -> None:
        self.elements: List[Any] = list(elements) if elements is not None else []

    def __len__(self) -> int:
        return len(self.elements)

    def copy(self) -> "ArrayValue":
        return ArrayValue(list(self.elements))

    def __repr__(self) -> str:
        return "ArrayValue(%r)" % (self.elements,)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ArrayValue) and self.elements == other.elements

    def __hash__(self) -> int:  # pragma: no cover - arrays are not dict keys
        return id(self)


class ConcreteError(Exception):
    """A runtime error in the concrete semantics (⊥ in the paper)."""


class NullDereferenceError(ConcreteError):
    """Dereference of ``null`` — the error the shape analysis rules out."""


class OutOfBoundsError(ConcreteError):
    """Array access outside ``[0, length)`` — ruled out by the interval client."""


class ConcreteState:
    """An environment plus a heap of records; the σ of the paper."""

    _alloc_counter = itertools.count()

    def __init__(
        self,
        env: Optional[Dict[str, Any]] = None,
        heap: Optional[Dict[Address, Dict[str, Any]]] = None,
    ) -> None:
        self.env: Dict[str, Any] = dict(env) if env else {}
        self.heap: Dict[Address, Dict[str, Any]] = (
            {addr: dict(fields) for addr, fields in heap.items()} if heap else {}
        )

    # -- environment ----------------------------------------------------------

    def read(self, name: str) -> Any:
        if name not in self.env:
            raise ConcreteError("read of undefined variable %r" % name)
        return self.env[name]

    def write(self, name: str, value: Any) -> "ConcreteState":
        out = self.copy()
        out.env[name] = value
        return out

    def defined(self, name: str) -> bool:
        return name in self.env

    # -- heap ------------------------------------------------------------------

    def allocate(self) -> tuple["ConcreteState", Address]:
        out = self.copy()
        addr = Address(next(ConcreteState._alloc_counter))
        out.heap[addr] = {}
        return out, addr

    def read_field(self, addr: Any, fieldname: str) -> Any:
        if addr is None:
            raise NullDereferenceError("null.%s" % fieldname)
        if not isinstance(addr, Address):
            raise ConcreteError("field read on non-record value %r" % (addr,))
        return self.heap.get(addr, {}).get(fieldname, None)

    def write_field(self, addr: Any, fieldname: str, value: Any) -> "ConcreteState":
        if addr is None:
            raise NullDereferenceError("null.%s = ..." % fieldname)
        if not isinstance(addr, Address):
            raise ConcreteError("field write on non-record value %r" % (addr,))
        out = self.copy()
        out.heap.setdefault(addr, {})[fieldname] = value
        return out

    # -- misc -------------------------------------------------------------------

    def copy(self) -> "ConcreteState":
        out = ConcreteState()
        out.env = dict(self.env)
        out.heap = {addr: dict(fields) for addr, fields in self.heap.items()}
        # Arrays have reference semantics within a single state but should not
        # leak mutations into previously recorded snapshots; copy them too and
        # patch aliases so that variables sharing an array keep sharing it.
        replacements: Dict[int, ArrayValue] = {}
        for name, value in out.env.items():
            if isinstance(value, ArrayValue):
                if id(value) not in replacements:
                    replacements[id(value)] = value.copy()
                out.env[name] = replacements[id(value)]
        for fields in out.heap.values():
            for fieldname, value in fields.items():
                if isinstance(value, ArrayValue):
                    if id(value) not in replacements:
                        replacements[id(value)] = value.copy()
                    fields[fieldname] = replacements[id(value)]
        return out

    def snapshot(self) -> Dict[str, Any]:
        """A hashable-ish summary of the environment, for tests and display."""
        out: Dict[str, Any] = {}
        for name, value in sorted(self.env.items()):
            if isinstance(value, ArrayValue):
                out[name] = tuple(value.elements)
            elif isinstance(value, Address):
                out[name] = str(value)
            else:
                out[name] = value
        return out

    def __repr__(self) -> str:
        return "ConcreteState(%r)" % (self.snapshot(),)


def initial_state(**bindings: Any) -> ConcreteState:
    """Build an initial concrete state from keyword bindings."""
    return ConcreteState(env=dict(bindings))
