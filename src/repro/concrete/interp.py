"""The concrete denotational semantics ``⟦·⟧ : Stmt → Σ → Σ⊥``.

This module interprets atomic statements over :class:`ConcreteState`, and
lifts the statement semantics to whole CFGs and programs.  It serves two
purposes in the reproduction:

* it is the *soundness oracle*: property-based tests execute programs
  concretely and check that every reachable concrete state is abstracted by
  the analysis results (Definition 3.1 / Proposition 3.2), and
* it is the reference implementation for the collecting semantics
  ``⟦ℓ⟧*`` of Section 3 (bounded, since the true collecting semantics is
  uncomputable).
"""

from __future__ import annotations

import random
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..lang import ast as A
from ..lang.cfg import Cfg, CfgEdge, Loc
from .state import (
    ArrayValue,
    ConcreteError,
    ConcreteState,
    NullDereferenceError,
    OutOfBoundsError,
)


class InfeasibleError(Exception):
    """Raised when an ``assume`` statement's condition evaluates to false.

    This is not a runtime error: it simply means the execution cannot take
    the corresponding control-flow edge.
    """


def _to_int(value: Any) -> int:
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return value
    raise ConcreteError("expected an integer, found %r" % (value,))


def _truthy(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    if value is None:
        return False
    return True


def eval_expr(expr: A.Expr, state: ConcreteState) -> Any:
    """Evaluate a side-effect-free expression in a concrete state."""
    if isinstance(expr, A.Var):
        return state.read(expr.name)
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.BoolLit):
        return expr.value
    if isinstance(expr, A.NullLit):
        return None
    if isinstance(expr, A.StrLit):
        return expr.value
    if isinstance(expr, A.UnaryOp):
        value = eval_expr(expr.operand, state)
        if expr.op == "-":
            return -_to_int(value)
        return not _truthy(value)
    if isinstance(expr, A.BinOp):
        return _eval_binop(expr, state)
    if isinstance(expr, A.ArrayLit):
        return ArrayValue([eval_expr(e, state) for e in expr.elements])
    if isinstance(expr, A.ArrayRead):
        array = eval_expr(expr.array, state)
        index = _to_int(eval_expr(expr.index, state))
        if not isinstance(array, ArrayValue):
            raise ConcreteError("indexing a non-array value %r" % (array,))
        if index < 0 or index >= len(array):
            raise OutOfBoundsError("index %d out of bounds for length %d"
                                   % (index, len(array)))
        return array.elements[index]
    if isinstance(expr, A.ArrayLen):
        array = eval_expr(expr.array, state)
        if not isinstance(array, ArrayValue):
            raise ConcreteError("length of a non-array value %r" % (array,))
        return len(array)
    if isinstance(expr, A.FieldRead):
        base = eval_expr(expr.base, state)
        return state.read_field(base, expr.fieldname)
    if isinstance(expr, A.AllocRecord):
        raise ConcreteError("new() may only appear as the right-hand side of "
                            "an assignment")
    raise ConcreteError("cannot evaluate expression %r" % (expr,))


def _eval_binop(expr: A.BinOp, state: ConcreteState) -> Any:
    if expr.op == "&&":
        return _truthy(eval_expr(expr.left, state)) and _truthy(
            eval_expr(expr.right, state))
    if expr.op == "||":
        return _truthy(eval_expr(expr.left, state)) or _truthy(
            eval_expr(expr.right, state))
    left = eval_expr(expr.left, state)
    right = eval_expr(expr.right, state)
    if expr.op == "==":
        return left == right
    if expr.op == "!=":
        return left != right
    lhs, rhs = _to_int(left), _to_int(right)
    if expr.op == "+":
        return lhs + rhs
    if expr.op == "-":
        return lhs - rhs
    if expr.op == "*":
        return lhs * rhs
    if expr.op == "/":
        if rhs == 0:
            raise ConcreteError("division by zero")
        quotient = abs(lhs) // abs(rhs)
        return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
    if expr.op == "%":
        if rhs == 0:
            raise ConcreteError("modulo by zero")
        return lhs - rhs * (abs(lhs) // abs(rhs)) * (1 if (lhs >= 0) == (rhs >= 0) else -1)
    if expr.op == "<":
        return lhs < rhs
    if expr.op == "<=":
        return lhs <= rhs
    if expr.op == ">":
        return lhs > rhs
    if expr.op == ">=":
        return lhs >= rhs
    raise ConcreteError("unknown operator %r" % (expr.op,))


def exec_stmt(stmt: A.AtomicStmt, state: ConcreteState) -> ConcreteState:
    """Execute one atomic statement.

    Raises :class:`InfeasibleError` for a failed ``assume`` and
    :class:`ConcreteError` subclasses for genuine runtime errors.
    """
    if isinstance(stmt, A.AssignStmt):
        if isinstance(stmt.value, A.AllocRecord):
            out, addr = state.allocate()
            return out.write(stmt.target, addr)
        return state.write(stmt.target, eval_expr(stmt.value, state))
    if isinstance(stmt, A.AssumeStmt):
        if not _truthy(eval_expr(stmt.cond, state)):
            raise InfeasibleError(str(stmt))
        return state.copy()
    if isinstance(stmt, A.ArrayWriteStmt):
        array = state.read(stmt.array)
        if not isinstance(array, ArrayValue):
            raise ConcreteError("array write to non-array %r" % (array,))
        index = _to_int(eval_expr(stmt.index, state))
        if index < 0 or index >= len(array):
            raise OutOfBoundsError("index %d out of bounds for length %d"
                                   % (index, len(array)))
        value = eval_expr(stmt.value, state)
        out = state.copy()
        target = out.read(stmt.array)
        target.elements[index] = value
        return out
    if isinstance(stmt, A.FieldWriteStmt):
        base = state.read(stmt.base)
        value = eval_expr(stmt.value, state)
        return state.write_field(base, stmt.fieldname, value)
    if isinstance(stmt, A.PrintStmt):
        eval_expr(stmt.value, state)
        return state.copy()
    if isinstance(stmt, A.SkipStmt):
        return state.copy()
    if isinstance(stmt, A.CallStmt):
        raise ConcreteError(
            "call statements require the program-level interpreter")
    raise ConcreteError("cannot execute statement %r" % (stmt,))


class CfgInterpreter:
    """Executes a single CFG concretely (no calls), with bounded fuel."""

    def __init__(self, cfg: Cfg, fuel: int = 10_000) -> None:
        self.cfg = cfg
        self.fuel = fuel

    def run(self, state: ConcreteState) -> ConcreteState:
        """Run from the entry to the exit, returning the final state."""
        loc = self.cfg.entry
        remaining = self.fuel
        current = state
        while loc != self.cfg.exit:
            if remaining <= 0:
                raise ConcreteError("out of fuel at location %d" % loc)
            remaining -= 1
            loc, current = self._step(loc, current)
        return current

    def _step(self, loc: Loc, state: ConcreteState) -> Tuple[Loc, ConcreteState]:
        for edge in self.cfg.out_edges(loc):
            try:
                return edge.dst, exec_stmt(edge.stmt, state)
            except InfeasibleError:
                continue
        raise ConcreteError("execution is stuck at location %d" % loc)

    def trace(self, state: ConcreteState) -> List[Tuple[Loc, ConcreteState]]:
        """Run to the exit, recording the state observed at each location."""
        loc = self.cfg.entry
        remaining = self.fuel
        current = state
        observed: List[Tuple[Loc, ConcreteState]] = [(loc, current)]
        while loc != self.cfg.exit:
            if remaining <= 0:
                raise ConcreteError("out of fuel at location %d" % loc)
            remaining -= 1
            loc, current = self._step(loc, current)
            observed.append((loc, current))
        return observed


class ProgramInterpreter:
    """Executes whole programs, resolving ``x = f(y)`` calls recursively."""

    def __init__(self, cfgs: Dict[str, Cfg], fuel: int = 50_000) -> None:
        self.cfgs = cfgs
        self.fuel = fuel

    def call(self, name: str, args: List[Any]) -> Any:
        """Call procedure ``name`` with concrete argument values."""
        state, budget = self._call(name, args, self.fuel)
        return state.env.get(A.RETURN_VARIABLE)

    def _call(self, name: str, args: List[Any], fuel: int) -> Tuple[ConcreteState, int]:
        cfg = self.cfgs[name]
        if len(args) != len(cfg.params):
            raise ConcreteError("arity mismatch calling %s" % name)
        state = ConcreteState(env=dict(zip(cfg.params, args)))
        loc = cfg.entry
        while loc != cfg.exit:
            if fuel <= 0:
                raise ConcreteError("out of fuel in %s" % name)
            fuel -= 1
            progressed = False
            for edge in cfg.out_edges(loc):
                stmt = edge.stmt
                try:
                    if isinstance(stmt, A.CallStmt):
                        arg_values = [eval_expr(a, state) for a in stmt.args]
                        result_state, fuel = self._call(
                            stmt.function, arg_values, fuel)
                        result = result_state.env.get(A.RETURN_VARIABLE)
                        state = (state.write(stmt.target, result)
                                 if stmt.target is not None else state.copy())
                    else:
                        state = exec_stmt(stmt, state)
                except InfeasibleError:
                    continue
                loc = edge.dst
                progressed = True
                break
            if not progressed:
                raise ConcreteError("execution is stuck at %s:%d" % (name, loc))
        return state, fuel


def collecting_semantics(
    cfg: Cfg,
    initial_states: Iterable[ConcreteState],
    max_steps: int = 20_000,
) -> Dict[Loc, List[ConcreteState]]:
    """A bounded under-approximation of the collecting semantics ``⟦ℓ⟧*``.

    Explores executions of ``cfg`` from each initial state for up to
    ``max_steps`` total transitions, recording every state observed at every
    location.  Runtime errors terminate the offending execution (they are ⊥
    in the concrete semantics) but do not abort collection.  The result is an
    under-approximation of the true collecting semantics, which is exactly
    what a soundness test needs: every collected state must be covered by the
    abstract result.
    """
    collected: Dict[Loc, List[ConcreteState]] = {loc: [] for loc in cfg.locations}
    budget = max_steps
    for start in initial_states:
        frontier: List[Tuple[Loc, ConcreteState]] = [(cfg.entry, start)]
        collected[cfg.entry].append(start)
        while frontier and budget > 0:
            loc, state = frontier.pop()
            for edge in cfg.out_edges(loc):
                if budget <= 0:
                    break
                budget -= 1
                try:
                    nxt = exec_stmt(edge.stmt, state)
                except InfeasibleError:
                    continue
                except ConcreteError:
                    continue
                collected[edge.dst].append(nxt)
                if edge.dst != cfg.exit:
                    frontier.append((edge.dst, nxt))
    return collected


def random_initial_states(
    cfg: Cfg,
    count: int = 5,
    seed: int = 0,
    low: int = -8,
    high: int = 8,
) -> List[ConcreteState]:
    """Generate random integer-valued initial states for a CFG's parameters.

    Used by the soundness property tests for the numeric domains; every
    parameter (and every otherwise-unbound variable read by the program) is
    bound to a small random integer.
    """
    rng = random.Random(seed)
    states = []
    names = sorted(set(cfg.params) | cfg.variables())
    for _ in range(count):
        env = {name: rng.randint(low, high) for name in names}
        states.append(ConcreteState(env=env))
    return states
