"""The interval abstract domain (Section 7.2).

The interval domain is the paper's textbook example of an infinite-height
lattice requiring widening.  The paper instantiates its framework with an
APRON-backed interval domain; this reproduction uses a pure-Python interval
lattice (:class:`~repro.domains.values.IntervalLattice`) behind the same
environment-domain interface, so the framework sees an identical
⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩ signature.
"""

from __future__ import annotations

from .nonrel import ArraySummary, EnvState, ScalarValue, ValueEnvDomain
from .values import Interval, IntervalLattice


class IntervalDomain(ValueEnvDomain):
    """Interval analysis over abstract environments."""

    def __init__(self) -> None:
        super().__init__(IntervalLattice())
        self.name = "interval"


__all__ = ["IntervalDomain", "Interval", "IntervalLattice", "EnvState",
           "ScalarValue", "ArraySummary"]
