"""The constant-propagation abstract domain (flat lattice of integers)."""

from __future__ import annotations

from .nonrel import ValueEnvDomain
from .values import Constant, ConstantLattice


class ConstantDomain(ValueEnvDomain):
    """Constant propagation over abstract environments."""

    def __init__(self) -> None:
        super().__init__(ConstantLattice())
        self.name = "constant"


__all__ = ["ConstantDomain", "Constant", "ConstantLattice"]
