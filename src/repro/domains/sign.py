"""The sign abstract domain: a finite-height sanity-check instantiation.

Sign analysis terminates without widening, which makes it useful for
differential testing of the DAIG machinery: any divergence between demanded
and batch results over the sign domain is a framework bug rather than a
widening subtlety.
"""

from __future__ import annotations

from .nonrel import ValueEnvDomain
from .values import SignLattice


class SignDomain(ValueEnvDomain):
    """Sign analysis over abstract environments."""

    def __init__(self) -> None:
        super().__init__(SignLattice())
        self.name = "sign"


__all__ = ["SignDomain", "SignLattice"]
