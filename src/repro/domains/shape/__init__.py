"""Separation-logic shape analysis for singly-linked lists."""

from .heap import NIL, CanonicalHeap, ListSeg, PointsTo, SymbolicHeap
from .domain import MAX_DISJUNCTS, ShapeDomain, ShapeState

__all__ = [
    "NIL",
    "CanonicalHeap",
    "ListSeg",
    "PointsTo",
    "SymbolicHeap",
    "MAX_DISJUNCTS",
    "ShapeDomain",
    "ShapeState",
]
