"""Symbolic heaps: the building block of the separation-logic shape domain.

Following Section 7.2 of the paper, an abstract state of the shape domain is
built from three components:

* a separation-logic formula over points-to (``α.f ↦ α'``) and list-segment
  (``lseg(α, α')``) atomic propositions,
* pure constraints: equalities and disequalities over symbolic addresses,
* an environment mapping program variables to symbolic addresses.

A :class:`SymbolicHeap` is one such triple (one disjunct).  The full domain
(:mod:`repro.domains.shape.domain`) manages finite disjunctions of symbolic
heaps; this module provides the per-disjunct machinery: equality saturation
over the pure constraints (a small union-find), materialization of ``next``
fields (unfolding ``lseg``), canonical abstraction (folding points-to chains
back into ``lseg``), canonical renaming (so that structurally equal heaps
compare equal), and the entailment checks the verification client uses
(``lseg(x, null)`` reachability, i.e. list well-formedness).

``lseg(α, α')`` is interpreted as a *possibly empty* list segment: zero or
more ``next`` dereferences lead from ``α`` to ``α'``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

#: The distinguished symbolic value for ``null``.
NIL = 0

Sym = int


@dataclass(frozen=True)
class PointsTo:
    """The atom ``src.next ↦ dst`` (a single materialized list cell)."""

    src: Sym
    dst: Sym

    def __str__(self) -> str:
        return "%s.next↦%s" % (_sym_name(self.src), _sym_name(self.dst))


@dataclass(frozen=True)
class ListSeg:
    """The atom ``lseg(src, dst)``: a possibly-empty list segment."""

    src: Sym
    dst: Sym

    def __str__(self) -> str:
        return "lseg(%s, %s)" % (_sym_name(self.src), _sym_name(self.dst))


Atom = object  # PointsTo | ListSeg


def _sym_name(sym: Sym) -> str:
    return "null" if sym == NIL else "α%d" % sym


class SymbolicHeap:
    """One separation-logic disjunct: env + heap atoms + pure constraints.

    Instances are immutable in spirit: every operation returns a new heap.
    ``inconsistent`` marks a disjunct whose pure constraints are
    contradictory (it denotes no concrete states and is dropped by the
    domain); ``faults`` accumulates descriptions of possible memory-safety
    violations (null dereferences) encountered on the way to this state.
    """

    __slots__ = ("env", "points_to", "lsegs", "equalities", "disequalities",
                 "faults", "next_sym")

    def __init__(
        self,
        env: Optional[Dict[str, Sym]] = None,
        points_to: Iterable[PointsTo] = (),
        lsegs: Iterable[ListSeg] = (),
        equalities: Iterable[Tuple[Sym, Sym]] = (),
        disequalities: Iterable[Tuple[Sym, Sym]] = (),
        faults: Iterable[str] = (),
        next_sym: int = 1,
    ) -> None:
        self.env: Dict[str, Sym] = dict(env) if env else {}
        self.points_to: Set[PointsTo] = set(points_to)
        self.lsegs: Set[ListSeg] = set(lsegs)
        self.equalities: Set[Tuple[Sym, Sym]] = set(equalities)
        self.disequalities: Set[Tuple[Sym, Sym]] = set(disequalities)
        self.faults: Set[str] = set(faults)
        self.next_sym = max(
            [next_sym, NIL + 1]
            + [s + 1 for s in self._all_syms()]
        )

    # -- basic plumbing ----------------------------------------------------------

    def _all_syms(self) -> Set[Sym]:
        syms = set(self.env.values()) | {NIL}
        for atom in self.points_to:
            syms |= {atom.src, atom.dst}
        for atom in self.lsegs:
            syms |= {atom.src, atom.dst}
        for a, b in self.equalities | self.disequalities:
            syms |= {a, b}
        return syms

    def copy(self) -> "SymbolicHeap":
        return SymbolicHeap(self.env, self.points_to, self.lsegs,
                            self.equalities, self.disequalities, self.faults,
                            self.next_sym)

    def fresh(self) -> Sym:
        sym = self.next_sym
        self.next_sym += 1
        return sym

    # -- pure constraints ----------------------------------------------------------

    def _union_find(self) -> Dict[Sym, Sym]:
        """Representatives of the equality classes over all symbols."""
        parent: Dict[Sym, Sym] = {s: s for s in self._all_syms()}

        def find(x: Sym) -> Sym:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in self.equalities:
            ra, rb = find(a), find(b)
            if ra != rb:
                # Prefer NIL (and otherwise the smaller id) as representative.
                if rb == NIL or (ra != NIL and rb < ra):
                    ra, rb = rb, ra
                parent[rb] = ra
        return {s: find(s) for s in parent}

    def rep(self, sym: Sym) -> Sym:
        """The representative of ``sym``'s equality class."""
        return self._union_find().get(sym, sym)

    def must_equal(self, a: Sym, b: Sym) -> bool:
        reps = self._union_find()
        return reps.get(a, a) == reps.get(b, b)

    def must_differ(self, a: Sym, b: Sym) -> bool:
        reps = self._union_find()
        ra, rb = reps.get(a, a), reps.get(b, b)
        if ra == rb:
            return False
        for x, y in self.disequalities:
            if {reps.get(x, x), reps.get(y, y)} == {ra, rb}:
                return True
        # Separation: two distinct points-to atoms have distinct sources, and
        # any points-to source is an allocated (hence non-null) address.
        sources = {reps.get(p.src, p.src) for p in self.points_to}
        if NIL in (ra, rb) and (ra in sources or rb in sources):
            return True
        if ra in sources and rb in sources:
            return True
        return False

    def is_inconsistent(self) -> bool:
        """Whether the pure constraints (plus separation) are contradictory."""
        reps = self._union_find()
        for a, b in self.disequalities:
            if reps.get(a, a) == reps.get(b, b):
                return True
        # A points-to whose source is null is impossible.
        for atom in self.points_to:
            if reps.get(atom.src, atom.src) == NIL:
                return True
        # Separation: the same address cannot be the source of two distinct
        # points-to facts.
        seen: Dict[Sym, Sym] = {}
        for atom in self.points_to:
            src = reps.get(atom.src, atom.src)
            dst = reps.get(atom.dst, atom.dst)
            if src in seen and seen[src] != dst:
                return True
            seen[src] = dst
        return False

    # -- normalization ----------------------------------------------------------------

    def normalize(self) -> "SymbolicHeap":
        """Apply equalities everywhere and drop trivial atoms.

        After normalization every symbol that appears is the representative
        of its equality class, empty segments ``lseg(a, a)`` are removed, and
        duplicate atoms collapse.
        """
        reps = self._union_find()

        def r(sym: Sym) -> Sym:
            return reps.get(sym, sym)

        out = SymbolicHeap(next_sym=self.next_sym)
        out.env = {name: r(sym) for name, sym in self.env.items()}
        for atom in self.points_to:
            out.points_to.add(PointsTo(r(atom.src), r(atom.dst)))
        for atom in self.lsegs:
            src, dst = r(atom.src), r(atom.dst)
            if src != dst:
                out.lsegs.add(ListSeg(src, dst))
        out.disequalities = {
            (min(r(a), r(b)), max(r(a), r(b)))
            for a, b in self.disequalities
            if r(a) != r(b) or True  # keep even if now equal: inconsistency check
        }
        out.faults = set(self.faults)
        out.next_sym = self.next_sym
        return out

    # -- abstraction (folding) ------------------------------------------------------------

    def abstract(self, aggressive: bool = False) -> "SymbolicHeap":
        """Canonical abstraction: fold chains through anonymous symbols.

        Two rewrite rules (from the Chang-Rival-Necula style checker rules,
        specialized to list segments):

        * a points-to atom entails a (possibly-empty) segment, so exact cells
          may be weakened: ``x.next ↦ y`` becomes ``lseg(x, y)``.  In the
          default mode this happens only when the cell is not pinned at both
          ends by program variables (exact cells still directly reachable may
          matter to later dereferences); in ``aggressive`` mode — used by the
          widening at loop heads — every points-to atom is folded, which is
          what makes loop invariants stabilize after a single abstract
          iteration on list-traversal loops;
        * adjacent segments through an anonymous, otherwise-unreferenced
          symbol compose: ``lseg(x, y) * lseg(y, z)`` becomes ``lseg(x, z)``.

        Abstraction is what bounds the heap size at loop heads and makes
        widening convergent.
        """
        heap = self.normalize()
        named = set(heap.env.values()) | {NIL}

        changed = True
        while changed:
            changed = False
            for atom in list(heap.points_to):
                if not aggressive and atom.dst in named and atom.src in named:
                    continue
                heap.points_to.discard(atom)
                if atom.src != atom.dst:
                    heap.lsegs.add(ListSeg(atom.src, atom.dst))
                changed = True
            # Compose segments through anonymous middle symbols.
            by_src: Dict[Sym, List[ListSeg]] = {}
            for seg in heap.lsegs:
                by_src.setdefault(seg.src, []).append(seg)
            incoming: Dict[Sym, int] = {}
            for seg in heap.lsegs:
                incoming[seg.dst] = incoming.get(seg.dst, 0) + 1
            for seg in list(heap.lsegs):
                middle = seg.dst
                if middle in named or middle == NIL:
                    continue
                if incoming.get(middle, 0) != 1:
                    continue
                if any(p.src == middle or p.dst == middle for p in heap.points_to):
                    continue
                onward = [s for s in heap.lsegs if s.src == middle]
                if len(onward) != 1:
                    continue
                nxt = onward[0]
                heap.lsegs.discard(seg)
                heap.lsegs.discard(nxt)
                if seg.src != nxt.dst:
                    heap.lsegs.add(ListSeg(seg.src, nxt.dst))
                changed = True
                break
        # Drop pure constraints that mention symbols no longer used anywhere;
        # they cannot influence later analysis and keeping them would defeat
        # convergence of widening.
        used = set(heap.env.values()) | {NIL}
        for atom in heap.points_to:
            used |= {atom.src, atom.dst}
        for atom in heap.lsegs:
            used |= {atom.src, atom.dst}
        heap.disequalities = {
            (a, b) for a, b in heap.disequalities if a in used and b in used}
        return heap

    # -- canonical renaming -----------------------------------------------------------------

    def canonical(self) -> "CanonicalHeap":
        """A canonical, hashable rendering used for equality and subsumption.

        Symbols are renamed in a deterministic traversal order starting from
        the program variables (sorted by name) and following heap atoms, so
        two alpha-equivalent heaps produce identical canonical forms.
        """
        heap = self.normalize()
        order: Dict[Sym, int] = {NIL: 0}
        counter = 1

        def visit(sym: Sym) -> None:
            nonlocal counter
            if sym not in order:
                order[sym] = counter
                counter += 1

        for name in sorted(heap.env):
            visit(heap.env[name])
        # Follow next-chains deterministically.
        frontier = [heap.env[name] for name in sorted(heap.env)]
        seen: Set[Sym] = set()
        while frontier:
            sym = frontier.pop(0)
            if sym in seen:
                continue
            seen.add(sym)
            successors = sorted(
                [p.dst for p in heap.points_to if p.src == sym]
                + [s.dst for s in heap.lsegs if s.src == sym])
            for succ in successors:
                visit(succ)
                frontier.append(succ)
        for atom in sorted(heap.points_to, key=lambda a: (a.src, a.dst)):
            visit(atom.src)
            visit(atom.dst)
        for atom in sorted(heap.lsegs, key=lambda a: (a.src, a.dst)):
            visit(atom.src)
            visit(atom.dst)
        for a, b in sorted(heap.disequalities):
            visit(a)
            visit(b)

        def r(sym: Sym) -> int:
            return order.get(sym, -1)

        env = tuple(sorted((name, r(sym)) for name, sym in heap.env.items()))
        points_to = tuple(sorted((r(a.src), r(a.dst)) for a in heap.points_to))
        lsegs = tuple(sorted((r(a.src), r(a.dst)) for a in heap.lsegs))
        diseq = tuple(sorted((min(r(a), r(b)), max(r(a), r(b)))
                             for a, b in heap.disequalities))
        return CanonicalHeap(env, points_to, lsegs, diseq,
                             tuple(sorted(heap.faults)))

    # -- materialization ---------------------------------------------------------------------

    def next_of(self, sym: Sym) -> Optional[Sym]:
        """The ``next`` field of ``sym`` if already materialized, else None."""
        reps = self._union_find()
        target = reps.get(sym, sym)
        for atom in self.points_to:
            if reps.get(atom.src, atom.src) == target:
                return atom.dst
        return None

    def materialize_next(self, sym: Sym) -> List[Tuple["SymbolicHeap", Optional[Sym]]]:
        """Materialize ``sym.next``, unfolding a segment if necessary.

        Returns a list of ``(heap, next_sym)`` cases.  ``next_sym is None``
        indicates a case in which the dereference faults (``sym`` may be
        null or dangling); callers record the fault and usually continue
        with the non-faulting cases.
        """
        heap = self.normalize()
        rep = heap.rep(sym)
        if rep == NIL:
            return [(heap, None)]
        existing = heap.next_of(rep)
        if existing is not None:
            return [(heap, existing)]
        # A segment starting at `rep` can be unfolded.
        for seg in list(heap.lsegs):
            if heap.rep(seg.src) != rep:
                continue
            cases: List[Tuple[SymbolicHeap, Optional[Sym]]] = []
            # Case 1: the segment is empty, i.e. rep == seg.dst; sym then
            # aliases the segment end and its `next` is whatever lies beyond
            # (unknown here): recurse on the end symbol.
            if not heap.must_differ(rep, seg.dst):
                empty = heap.copy()
                empty.lsegs.discard(seg)
                empty.equalities.add((rep, seg.dst))
                empty = empty.normalize()
                if not empty.is_inconsistent():
                    cases.extend(empty.materialize_next(seg.dst))
            # Case 2: the segment is non-empty: rep.next ↦ fresh * lseg(fresh, dst).
            nonempty = heap.copy()
            nonempty.lsegs.discard(seg)
            fresh = nonempty.fresh()
            nonempty.points_to.add(PointsTo(rep, fresh))
            if seg.dst != fresh:
                nonempty.lsegs.add(ListSeg(fresh, seg.dst))
            nonempty.disequalities.add((min(rep, NIL), max(rep, NIL)))
            if not nonempty.is_inconsistent():
                cases.append((nonempty, fresh))
            if cases:
                return cases
        # Nothing is known about `rep`: it may be null (fault) or point to an
        # unknown cell.  Materialize a fresh cell in the non-faulting case.
        cases = []
        if not heap.must_differ(rep, NIL):
            faulting = heap.copy()
            cases.append((faulting, None))
        unknown = heap.copy()
        fresh = unknown.fresh()
        unknown.points_to.add(PointsTo(rep, fresh))
        unknown.disequalities.add((min(rep, NIL), max(rep, NIL)))
        if not unknown.is_inconsistent():
            cases.append((unknown, fresh))
        return cases

    # -- entailment ----------------------------------------------------------------------------

    def entails_lseg(self, start: Sym, end: Sym) -> bool:
        """Whether this heap entails ``lseg(start, end)`` (well-formedness).

        A simple syntactic proof search: follow points-to and lseg atoms from
        ``start``, using each at most once, until ``end`` is reached (or
        ``start`` and ``end`` are already equal).
        """
        heap = self.normalize()
        reps = heap._union_find()

        def r(sym: Sym) -> Sym:
            return reps.get(sym, sym)

        target = r(end)
        current = r(start)
        used_pt: Set[PointsTo] = set()
        used_seg: Set[ListSeg] = set()
        for _ in range(len(heap.points_to) + len(heap.lsegs) + 1):
            if current == target:
                return True
            advanced = False
            for atom in heap.points_to:
                if atom not in used_pt and r(atom.src) == current:
                    used_pt.add(atom)
                    current = r(atom.dst)
                    advanced = True
                    break
            if advanced:
                continue
            for seg in heap.lsegs:
                if seg not in used_seg and r(seg.src) == current:
                    used_seg.add(seg)
                    current = r(seg.dst)
                    advanced = True
                    break
            if not advanced:
                return False
        return current == target

    def __str__(self) -> str:
        parts = []
        env = ", ".join("%s=%s" % (name, _sym_name(sym))
                        for name, sym in sorted(self.env.items()))
        atoms = " * ".join(
            [str(a) for a in sorted(self.points_to, key=lambda a: (a.src, a.dst))]
            + [str(a) for a in sorted(self.lsegs, key=lambda a: (a.src, a.dst))])
        pure = ", ".join("%s≠%s" % (_sym_name(a), _sym_name(b))
                         for a, b in sorted(self.disequalities))
        parts.append("[%s]" % env)
        parts.append(atoms if atoms else "emp")
        if pure:
            parts.append(pure)
        if self.faults:
            parts.append("faults=%s" % sorted(self.faults))
        return " | ".join(parts)


@dataclass(frozen=True)
class CanonicalHeap:
    """A hashable canonical form of a symbolic heap (used for equality)."""

    env: Tuple[Tuple[str, int], ...]
    points_to: Tuple[Tuple[int, int], ...]
    lsegs: Tuple[Tuple[int, int], ...]
    disequalities: Tuple[Tuple[int, int], ...]
    faults: Tuple[str, ...]
