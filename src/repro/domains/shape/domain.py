"""The separation-logic shape domain for singly-linked lists (Section 7.2).

An abstract state is a finite *disjunction* of symbolic heaps
(:class:`~repro.domains.shape.heap.SymbolicHeap`).  The initial state for a
procedure assumes, as the paper does for ``append``, that every parameter is
a well-formed (acyclic, null-terminated) list: ``lseg(p, null)`` for each
parameter ``p``.

Transfer functions materialize ``next`` fields on demand (unfolding
segments, recording potential null-dereference faults), update cells with a
strong update, and re-abstract after every step so that loop invariants
converge.  Join and widening take the union of disjuncts, deduplicate via
canonical forms, and cap the number of disjuncts (collapsing the remainder
to a heap-agnostic summary) so that widening terminates.

This domain is exactly the kind of instantiation the paper argues previous
incremental/demand-driven frameworks cannot express: the lattice has
unbounded height, there is no best abstraction, and the join/widen operators
are implemented with rewriting rather than a pointwise lattice product.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ...concrete.state import Address, ConcreteState
from ...lang import ast as A
from ..base import AbstractDomain
from .heap import NIL, CanonicalHeap, ListSeg, PointsTo, Sym, SymbolicHeap

#: Maximum number of disjuncts kept per abstract state.
MAX_DISJUNCTS = 8


class ShapeState:
    """A finite disjunction of symbolic heaps (empty disjunction = ⊥)."""

    __slots__ = ("disjuncts", "_canonical")

    def __init__(self, disjuncts: Sequence[SymbolicHeap] = ()) -> None:
        self.disjuncts: Tuple[SymbolicHeap, ...] = tuple(disjuncts)
        self._canonical: Optional[FrozenSet[CanonicalHeap]] = None

    def canonical(self) -> FrozenSet[CanonicalHeap]:
        if self._canonical is None:
            self._canonical = frozenset(d.canonical() for d in self.disjuncts)
        return self._canonical

    def is_bottom(self) -> bool:
        return not self.disjuncts

    def faults(self) -> FrozenSet[str]:
        out: set = set()
        for disjunct in self.disjuncts:
            out |= disjunct.faults
        return frozenset(out)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ShapeState):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __str__(self) -> str:
        if not self.disjuncts:
            return "⊥"
        return " ∨ ".join(str(d) for d in self.disjuncts)


class ShapeDomain(AbstractDomain[ShapeState]):
    """The list shape domain behind the generic abstract-interpreter interface."""

    name = "shape"

    def __init__(self, max_disjuncts: int = MAX_DISJUNCTS) -> None:
        self.max_disjuncts = max_disjuncts

    # -- lattice -------------------------------------------------------------------

    def bottom(self) -> ShapeState:
        return ShapeState(())

    def initial(self, params: Sequence[str] = ()) -> ShapeState:
        heap = SymbolicHeap()
        for param in params:
            sym = heap.fresh()
            heap.env[param] = sym
            heap.lsegs.add(ListSeg(sym, NIL))
        return ShapeState((heap.abstract(),))

    def is_bottom(self, state: ShapeState) -> bool:
        return state.is_bottom()

    def _dedupe(
        self, disjuncts: Sequence[SymbolicHeap], mode: str = "transfer"
    ) -> ShapeState:
        """Normalize, deduplicate, and bound a list of disjuncts.

        ``mode`` selects how much folding is applied: transfer results are
        only normalized (materialized cells and the pure facts recorded on
        them must survive until the next join), joins fold anonymous cells,
        and widenings fold every cell back into segments so that loop
        invariants stabilize.
        """
        kept: List[SymbolicHeap] = []
        seen: set = set()
        for disjunct in disjuncts:
            if disjunct.is_inconsistent():
                continue
            if mode == "transfer":
                processed = disjunct.normalize()
            else:
                processed = disjunct.abstract(aggressive=(mode == "widen"))
            key = processed.canonical()
            if key in seen:
                continue
            seen.add(key)
            kept.append(processed)
        if len(kept) > self.max_disjuncts:
            kept = self._collapse(kept)
        return ShapeState(tuple(kept))

    def _collapse(self, disjuncts: List[SymbolicHeap]) -> List[SymbolicHeap]:
        """Collapse excess disjuncts into a heap-agnostic summary."""
        kept = disjuncts[: self.max_disjuncts - 1]
        summary = SymbolicHeap()
        faults: set = set()
        names: set = set()
        for disjunct in disjuncts[self.max_disjuncts - 1:]:
            faults |= disjunct.faults
            names |= set(disjunct.env)
        for name in sorted(names):
            summary.env[name] = summary.fresh()
        summary.faults = faults
        kept.append(summary)
        return kept

    def join(self, left: ShapeState, right: ShapeState) -> ShapeState:
        return self._dedupe(
            tuple(left.disjuncts) + tuple(right.disjuncts), mode="join")

    def widen(self, older: ShapeState, newer: ShapeState) -> ShapeState:
        # Widening applies the aggressive folding (every points-to weakened
        # to a segment) so that list-traversal loop invariants stabilize
        # after one abstract iteration, as reported in Section 7.2.
        return self._dedupe(
            tuple(older.disjuncts) + tuple(newer.disjuncts), mode="widen")

    def leq(self, left: ShapeState, right: ShapeState) -> bool:
        right_keys = right.canonical()
        right_has_summary = any(
            not d.points_to and not d.lsegs and not d.disequalities
            for d in right.disjuncts)
        for disjunct in left.disjuncts:
            key = disjunct.abstract().canonical()
            if key in right_keys:
                continue
            if right_has_summary and set(disjunct.faults) <= set(right.faults()):
                continue
            return False
        return True

    def equal(self, left: ShapeState, right: ShapeState) -> bool:
        return left == right

    # -- expression values ------------------------------------------------------------

    def _value_of(self, expr: A.Expr, heap: SymbolicHeap) -> Sym:
        """The symbolic value of a pointer expression (fresh if unknown)."""
        if isinstance(expr, A.NullLit):
            return NIL
        if isinstance(expr, A.Var):
            if expr.name not in heap.env:
                heap.env[expr.name] = heap.fresh()
            return heap.env[expr.name]
        return heap.fresh()

    # -- transfer -----------------------------------------------------------------------

    def transfer(self, stmt: A.AtomicStmt, state: ShapeState) -> ShapeState:
        out: List[SymbolicHeap] = []
        for disjunct in state.disjuncts:
            out.extend(self._transfer_disjunct(stmt, disjunct.copy()))
        return self._dedupe(out)

    def _transfer_disjunct(
        self, stmt: A.AtomicStmt, heap: SymbolicHeap
    ) -> List[SymbolicHeap]:
        if isinstance(stmt, A.AssignStmt):
            return self._assign(stmt.target, stmt.value, heap)
        if isinstance(stmt, A.AssumeStmt):
            return self._assume(stmt.cond, heap)
        if isinstance(stmt, A.FieldWriteStmt):
            return self._field_write(stmt, heap)
        if isinstance(stmt, (A.PrintStmt, A.SkipStmt, A.ArrayWriteStmt)):
            return [heap]
        if isinstance(stmt, A.CallStmt):
            if stmt.target is not None:
                heap.env[stmt.target] = heap.fresh()
            return [heap]
        return [heap]

    def _assign(self, target: str, value: A.Expr, heap: SymbolicHeap) -> List[SymbolicHeap]:
        if isinstance(value, A.NullLit):
            heap.env[target] = NIL
            return [heap]
        if isinstance(value, A.Var):
            heap.env[target] = self._value_of(value, heap)
            return [heap]
        if isinstance(value, A.AllocRecord):
            fresh = heap.fresh()
            heap.points_to.add(PointsTo(fresh, NIL))
            heap.disequalities.add((NIL, fresh))
            heap.env[target] = fresh
            return [heap]
        if isinstance(value, A.FieldRead):
            return self._field_read(target, value, heap)
        # Scalar (numeric, boolean, array, ...) values carry no shape
        # information: bind the target to a fresh unconstrained symbol.
        heap.env[target] = heap.fresh()
        return [heap]

    def _field_read(
        self, target: str, value: A.FieldRead, heap: SymbolicHeap
    ) -> List[SymbolicHeap]:
        base = self._value_of(value.base, heap)
        if value.fieldname != "next":
            # Data fields are not tracked; only the null-dereference check
            # matters for memory safety.
            survivors = self._check_non_null(base, value, heap)
            for survivor in survivors:
                survivor.env[target] = survivor.fresh()
            return survivors
        out: List[SymbolicHeap] = []
        fault_message = "possible null dereference: %s" % (value,)
        faulted_cases = 0
        for case, next_sym in heap.materialize_next(base):
            if next_sym is None:
                faulted_cases += 1
                continue
            case.env[target] = next_sym
            out.append(case)
        if faulted_cases:
            # The dereference may fault on some concrete states; the fault is
            # recorded on every surviving disjunct so it reaches the exit.
            for case in out:
                case.faults.add(fault_message)
        if not out:
            faulted = heap.copy()
            faulted.faults.add(fault_message)
            faulted.env[target] = faulted.fresh()
            out.append(faulted)
        return out

    def _check_non_null(
        self, base: Sym, expr: A.Expr, heap: SymbolicHeap
    ) -> List[SymbolicHeap]:
        if heap.must_differ(base, NIL):
            return [heap]
        if heap.must_equal(base, NIL):
            heap.faults.add("possible null dereference: %s" % (expr,))
            return [heap]
        heap.faults.add("possible null dereference: %s" % (expr,))
        heap.disequalities.add((NIL, base))
        return [heap]

    def _field_write(self, stmt: A.FieldWriteStmt, heap: SymbolicHeap) -> List[SymbolicHeap]:
        base = self._value_of(A.Var(stmt.base), heap)
        if stmt.fieldname != "next":
            return self._check_non_null(base, stmt, heap)
        new_value = self._value_of(stmt.value, heap)
        out: List[SymbolicHeap] = []
        for case, _old in heap.materialize_next(base):
            rep = case.rep(base)
            if case.next_of(rep) is None:
                case.faults.add("possible null dereference: %s" % (stmt,))
                continue
            # Strong update: replace the materialized cell's successor.
            case.points_to = {
                p for p in case.points_to if case.rep(p.src) != rep}
            case.points_to.add(PointsTo(rep, new_value))
            out.append(case)
        faulting = [case for case, nxt in heap.materialize_next(base) if nxt is None]
        if faulting and not out:
            fallback = heap.copy()
            fallback.faults.add("possible null dereference: %s" % (stmt,))
            out.append(fallback)
        elif faulting:
            for case in out:
                case.faults.add("possible null dereference: %s" % (stmt,))
        return out

    # -- assume ---------------------------------------------------------------------------

    def _assume(self, cond: A.Expr, heap: SymbolicHeap) -> List[SymbolicHeap]:
        if isinstance(cond, A.BoolLit):
            return [heap] if cond.value else []
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            return self._assume(A.negate(cond.operand), heap)
        if isinstance(cond, A.BinOp) and cond.op == "&&":
            out: List[SymbolicHeap] = []
            for case in self._assume(cond.left, heap):
                out.extend(self._assume(cond.right, case))
            return out
        if isinstance(cond, A.BinOp) and cond.op == "||":
            return (self._assume(cond.left, heap.copy())
                    + self._assume(cond.right, heap.copy()))
        if isinstance(cond, A.BinOp) and cond.op in ("==", "!="):
            return self._assume_equality(cond, heap)
        # Arithmetic comparisons and truthiness tests over data values carry
        # no shape information.
        return [heap]

    def _pointer_cases(
        self, expr: A.Expr, heap: SymbolicHeap
    ) -> List[Tuple[SymbolicHeap, Optional[Sym]]]:
        """Evaluate a pointer expression, materializing ``.next`` reads."""
        if isinstance(expr, (A.NullLit, A.Var)):
            return [(heap, self._value_of(expr, heap))]
        if isinstance(expr, A.FieldRead) and expr.fieldname == "next":
            base = self._value_of(expr.base, heap)
            out: List[Tuple[SymbolicHeap, Optional[Sym]]] = []
            for case, next_sym in heap.materialize_next(base):
                if next_sym is None:
                    case.faults.add("possible null dereference: %s" % (expr,))
                    out.append((case, None))
                else:
                    out.append((case, next_sym))
            return out
        return [(heap, None)]

    def _assume_equality(self, cond: A.BinOp, heap: SymbolicHeap) -> List[SymbolicHeap]:
        pointerish = any(
            isinstance(side, (A.NullLit, A.FieldRead))
            or (isinstance(side, A.Var))
            for side in (cond.left, cond.right))
        if not pointerish:
            return [heap]
        out: List[SymbolicHeap] = []
        for left_case, left_sym in self._pointer_cases(cond.left, heap.copy()):
            if left_sym is None and not isinstance(cond.left, (A.NullLit, A.Var)):
                # Faulting or non-pointer left operand: no refinement.
                if left_case.faults - heap.faults:
                    out.append(left_case)
                    continue
            for case, right_sym in self._pointer_cases(
                    cond.right, left_case.copy()):
                if left_sym is None or right_sym is None:
                    out.append(case)
                    continue
                if cond.op == "==":
                    if case.must_differ(left_sym, right_sym):
                        continue
                    case.equalities.add((left_sym, right_sym))
                    normalized = case.normalize()
                    if not normalized.is_inconsistent():
                        out.append(normalized)
                else:
                    if case.must_equal(left_sym, right_sym):
                        continue
                    case.disequalities.add(
                        (min(left_sym, right_sym), max(left_sym, right_sym)))
                    if not case.is_inconsistent():
                        out.append(case)
        return out

    # -- concretization --------------------------------------------------------------------

    def models(self, concrete: ConcreteState, abstract: ShapeState) -> bool:
        if abstract.is_bottom():
            return False
        return any(self._heap_models(concrete, d) for d in abstract.disjuncts)

    def _heap_models(self, concrete: ConcreteState, heap: SymbolicHeap) -> bool:
        normalized = heap.normalize()
        assignment: Dict[Sym, object] = {NIL: None}
        for name, sym in normalized.env.items():
            if name not in concrete.env:
                continue
            value = concrete.env[name]
            if sym in assignment and assignment[sym] != value:
                return False
            assignment[sym] = value
        for a, b in normalized.disequalities:
            if a in assignment and b in assignment and assignment[a] == assignment[b]:
                return False
        for atom in normalized.points_to:
            if atom.src not in assignment:
                continue
            source = assignment[atom.src]
            if not isinstance(source, Address):
                return False
            actual = concrete.heap.get(source, {}).get("next", None)
            if atom.dst in assignment and assignment[atom.dst] != actual:
                return False
        for seg in normalized.lsegs:
            if seg.src not in assignment or seg.dst not in assignment:
                continue
            if not self._reaches(concrete, assignment[seg.src], assignment[seg.dst]):
                return False
        return True

    def _reaches(self, concrete: ConcreteState, start: object, end: object) -> bool:
        current = start
        for _ in range(len(concrete.heap) + 1):
            if current == end:
                return True
            if not isinstance(current, Address):
                return False
            current = concrete.heap.get(current, {}).get("next", None)
        return current == end

    # -- interprocedural hooks ----------------------------------------------------------------

    def call_entry(
        self,
        caller_state: ShapeState,
        callee_params: Sequence[str],
        args: Sequence[A.Expr],
    ) -> ShapeState:
        # The coarse (but sound, given the loose concretization) choice: the
        # callee sees well-formed lists for its parameters.
        return self.initial(callee_params)

    def call_return(
        self,
        caller_state: ShapeState,
        callee_exit: ShapeState,
        target: Optional[str],
        args: Sequence[A.Expr] = (),
    ) -> ShapeState:
        if target is None:
            return caller_state
        out: List[SymbolicHeap] = []
        for disjunct in caller_state.disjuncts:
            updated = disjunct.copy()
            updated.env[target] = updated.fresh()
            out.append(updated)
        return self._dedupe(out)

    # -- client helpers --------------------------------------------------------------------------

    def verifies_wellformed(self, state: ShapeState, variable: str) -> bool:
        """Whether every disjunct proves ``lseg(variable, null)``."""
        if state.is_bottom():
            return True
        for disjunct in state.disjuncts:
            normalized = disjunct.normalize()
            if variable not in normalized.env:
                return False
            if not normalized.entails_lseg(normalized.env[variable], NIL):
                return False
        return True

    def describe(self, state: ShapeState) -> str:
        return str(state)
