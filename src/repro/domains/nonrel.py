"""A generic non-relational environment domain over a value lattice.

This module implements the abstract environment shared by the sign,
constant-propagation and interval analyses: an abstract state maps variable
names to abstract values, where an abstract value is either

* a :class:`ScalarValue` — a value-lattice element describing the numeric
  values the variable may hold, plus "may be null" / "may be a non-numeric
  reference" flags, or
* an :class:`ArraySummary` — an abstraction of an array as a pair of its
  length (a value-lattice element) and a single summary of all its elements.

Unbound variables are implicitly ⊤ (completely unknown), so dropping a
binding is always sound; joins and widenings intersect binding sets and
combine pointwise.

The transfer function interprets the atomic statement language of
:mod:`repro.lang.ast`, including backward refinement of ``assume``
conditions (which is what lets the interval instantiation prove array
bounds), weak updates for array writes, and sound havoc for the features the
domain does not track (heap fields, opaque calls).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..concrete.state import Address, ArrayValue, ConcreteState
from ..lang import ast as A
from .base import AbstractDomain
from .values import ValueLattice


@dataclass(frozen=True)
class ScalarValue:
    """Abstraction of a single (non-array) value.

    ``num`` abstracts the integer values the variable may hold (booleans are
    abstracted as 0/1); ``maybe_null`` and ``maybe_other`` record whether the
    value may additionally be ``null`` or some non-numeric reference (a
    record address, a string, ...).
    """

    num: Any
    maybe_null: bool = False
    maybe_other: bool = False

    def __str__(self) -> str:
        parts = [str(self.num)]
        if self.maybe_null:
            parts.append("null?")
        if self.maybe_other:
            parts.append("ref?")
        return "{" + ", ".join(parts) + "}"


@dataclass(frozen=True)
class ArraySummary:
    """Abstraction of an array: its length and a summary of its elements."""

    length: Any
    element: ScalarValue

    def __str__(self) -> str:
        return "array(len=%s, elem=%s)" % (self.length, self.element)


Binding = Union[ScalarValue, ArraySummary]


@dataclass(frozen=True)
class EnvState:
    """An abstract environment: sorted variable bindings, or ⊥."""

    bindings: Tuple[Tuple[str, Binding], ...] = ()
    bottom: bool = False

    def as_dict(self) -> Dict[str, Binding]:
        return dict(self.bindings)

    def get(self, name: str) -> Optional[Binding]:
        for key, value in self.bindings:
            if key == name:
                return value
        return None

    def __str__(self) -> str:
        if self.bottom:
            return "⊥"
        if not self.bindings:
            return "⊤"
        return ", ".join("%s↦%s" % (k, v) for k, v in self.bindings)


def _make_state(bindings: Dict[str, Binding]) -> EnvState:
    return EnvState(tuple(sorted(bindings.items(), key=lambda kv: kv[0])))


class ValueEnvDomain(AbstractDomain[EnvState]):
    """The non-relational environment domain over a pluggable value lattice."""

    def __init__(self, lattice: ValueLattice) -> None:
        self.lattice = lattice
        self.name = "%s-env" % lattice.name

    # -- scalar helpers ----------------------------------------------------------

    def _top_scalar(self) -> ScalarValue:
        return ScalarValue(self.lattice.top(), True, True)

    def _num_scalar(self, num: Any) -> ScalarValue:
        return ScalarValue(num, False, False)

    def _null_scalar(self) -> ScalarValue:
        return ScalarValue(self.lattice.bottom(), True, False)

    def _other_scalar(self) -> ScalarValue:
        return ScalarValue(self.lattice.bottom(), False, True)

    def _bool_scalar(self) -> ScalarValue:
        return self._num_scalar(
            self.lattice.join(self.lattice.from_const(0), self.lattice.from_const(1)))

    def _scalar_is_bottom(self, value: ScalarValue) -> bool:
        return (self.lattice.is_bottom(value.num)
                and not value.maybe_null and not value.maybe_other)

    def _join_scalar(self, a: ScalarValue, b: ScalarValue, widen: bool = False) -> ScalarValue:
        combine = self.lattice.widen if widen else self.lattice.join
        return ScalarValue(combine(a.num, b.num),
                           a.maybe_null or b.maybe_null,
                           a.maybe_other or b.maybe_other)

    def _leq_scalar(self, a: ScalarValue, b: ScalarValue) -> bool:
        return (self.lattice.leq(a.num, b.num)
                and (not a.maybe_null or b.maybe_null)
                and (not a.maybe_other or b.maybe_other))

    def _join_binding(self, a: Binding, b: Binding, widen: bool = False) -> Optional[Binding]:
        if isinstance(a, ScalarValue) and isinstance(b, ScalarValue):
            return self._join_scalar(a, b, widen)
        if isinstance(a, ArraySummary) and isinstance(b, ArraySummary):
            combine = self.lattice.widen if widen else self.lattice.join
            return ArraySummary(combine(a.length, b.length),
                                self._join_scalar(a.element, b.element, widen))
        return None  # incompatible kinds: drop to ⊤

    # -- the AbstractDomain interface ----------------------------------------------

    def bottom(self) -> EnvState:
        return EnvState(bottom=True)

    def initial(self, params: Sequence[str] = ()) -> EnvState:
        # Parameters are unconstrained at entry, which is exactly the empty
        # binding map (unbound = ⊤).
        return EnvState()

    def is_bottom(self, state: EnvState) -> bool:
        return state.bottom

    def join(self, left: EnvState, right: EnvState) -> EnvState:
        return self._combine(left, right, widen=False)

    def widen(self, older: EnvState, newer: EnvState) -> EnvState:
        return self._combine(older, newer, widen=True)

    def _combine(self, left: EnvState, right: EnvState, widen: bool) -> EnvState:
        if left.bottom:
            return right
        if right.bottom:
            return left
        left_map, right_map = left.as_dict(), right.as_dict()
        out: Dict[str, Binding] = {}
        for name in left_map.keys() & right_map.keys():
            combined = self._join_binding(left_map[name], right_map[name], widen)
            if combined is not None:
                out[name] = combined
        return _make_state(out)

    def leq(self, left: EnvState, right: EnvState) -> bool:
        if left.bottom:
            return True
        if right.bottom:
            return False
        left_map = left.as_dict()
        for name, right_value in right.bindings:
            left_value = left_map.get(name)
            if left_value is None:
                return False
            if isinstance(right_value, ScalarValue):
                if not isinstance(left_value, ScalarValue):
                    return False
                if not self._leq_scalar(left_value, right_value):
                    return False
            else:
                if not isinstance(left_value, ArraySummary):
                    return False
                if not self.lattice.leq(left_value.length, right_value.length):
                    return False
                if not self._leq_scalar(left_value.element, right_value.element):
                    return False
        return True

    def equal(self, left: EnvState, right: EnvState) -> bool:
        return left == right

    # -- expression evaluation --------------------------------------------------------

    def eval(self, expr: A.Expr, state: EnvState) -> Binding:
        """Abstractly evaluate an expression in ``state``."""
        if state.bottom:
            return ScalarValue(self.lattice.bottom(), False, False)
        if isinstance(expr, A.Var):
            binding = state.get(expr.name)
            return binding if binding is not None else self._top_scalar()
        if isinstance(expr, A.IntLit):
            return self._num_scalar(self.lattice.from_const(expr.value))
        if isinstance(expr, A.BoolLit):
            return self._num_scalar(self.lattice.from_const(1 if expr.value else 0))
        if isinstance(expr, A.NullLit):
            return self._null_scalar()
        if isinstance(expr, A.StrLit):
            return self._other_scalar()
        if isinstance(expr, A.AllocRecord):
            return self._other_scalar()
        if isinstance(expr, A.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, A.BinOp):
            return self._eval_binop(expr, state)
        if isinstance(expr, A.ArrayLit):
            return self._eval_array_literal(expr, state)
        if isinstance(expr, A.ArrayRead):
            array = self.eval(expr.array, state)
            if isinstance(array, ArraySummary):
                return array.element
            return self._top_scalar()
        if isinstance(expr, A.ArrayLen):
            array = self.eval(expr.array, state)
            if isinstance(array, ArraySummary):
                return self._num_scalar(array.length)
            return self._num_scalar(self.lattice.top())
        if isinstance(expr, A.FieldRead):
            return self._top_scalar()
        return self._top_scalar()

    def _numeric(self, binding: Binding) -> Any:
        """The numeric component of a binding (arrays have none)."""
        if isinstance(binding, ScalarValue):
            return binding.num
        return self.lattice.bottom()

    def _eval_unary(self, expr: A.UnaryOp, state: EnvState) -> ScalarValue:
        operand = self._numeric(self.eval(expr.operand, state))
        if expr.op == "-":
            return self._num_scalar(self.lattice.neg(operand))
        return self._bool_scalar()

    def _eval_binop(self, expr: A.BinOp, state: EnvState) -> ScalarValue:
        if expr.op in A.LOGICAL_OPS:
            return self._bool_scalar()
        left = self.eval(expr.left, state)
        right = self.eval(expr.right, state)
        if expr.op in A.COMPARISON_OPS:
            verdict = None
            if isinstance(left, ScalarValue) and isinstance(right, ScalarValue):
                if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                    verdict = self.lattice.compare(expr.op, left.num, right.num)
            if verdict is True:
                return self._num_scalar(self.lattice.from_const(1))
            if verdict is False:
                return self._num_scalar(self.lattice.from_const(0))
            return self._bool_scalar()
        left_num, right_num = self._numeric(left), self._numeric(right)
        operations = {
            "+": self.lattice.add,
            "-": self.lattice.sub,
            "*": self.lattice.mul,
            "/": self.lattice.div,
            "%": self.lattice.mod,
        }
        return self._num_scalar(operations[expr.op](left_num, right_num))

    def _eval_array_literal(self, expr: A.ArrayLit, state: EnvState) -> ArraySummary:
        element = ScalarValue(self.lattice.bottom(), False, False)
        for item in expr.elements:
            value = self.eval(item, state)
            if isinstance(value, ScalarValue):
                element = self._join_scalar(element, value)
            else:
                element = self._top_scalar()
        return ArraySummary(self.lattice.from_const(len(expr.elements)), element)

    # -- transfer -----------------------------------------------------------------------

    def transfer(self, stmt: A.AtomicStmt, state: EnvState) -> EnvState:
        if state.bottom:
            return state
        if isinstance(stmt, A.AssignStmt):
            bindings = state.as_dict()
            bindings[stmt.target] = self.eval(stmt.value, state)
            return _make_state(bindings)
        if isinstance(stmt, A.AssumeStmt):
            return self._assume(stmt.cond, state)
        if isinstance(stmt, A.ArrayWriteStmt):
            return self._array_write(stmt, state)
        if isinstance(stmt, A.FieldWriteStmt):
            return state
        if isinstance(stmt, (A.PrintStmt, A.SkipStmt)):
            return state
        if isinstance(stmt, A.CallStmt):
            # Without the interprocedural engine the best sound answer is to
            # havoc the target and any array arguments' contents.
            bindings = state.as_dict()
            if stmt.target is not None:
                bindings.pop(stmt.target, None)
            for arg in stmt.args:
                if isinstance(arg, A.Var) and isinstance(bindings.get(arg.name), ArraySummary):
                    summary = bindings[arg.name]
                    bindings[arg.name] = ArraySummary(summary.length, self._top_scalar())
            return _make_state(bindings)
        return state

    def _array_write(self, stmt: A.ArrayWriteStmt, state: EnvState) -> EnvState:
        bindings = state.as_dict()
        existing = bindings.get(stmt.array)
        value = self.eval(stmt.value, state)
        scalar = value if isinstance(value, ScalarValue) else self._top_scalar()
        if isinstance(existing, ArraySummary):
            bindings[stmt.array] = ArraySummary(
                existing.length, self._join_scalar(existing.element, scalar))
        # Writing through a variable that is not known to be an array leaves
        # it unknown (⊤), which is what the absence of a binding means.
        elif existing is not None:
            bindings.pop(stmt.array, None)
        return _make_state(bindings)

    # -- assume refinement -----------------------------------------------------------------

    def _assume(self, cond: A.Expr, state: EnvState) -> EnvState:
        if isinstance(cond, A.BoolLit):
            return state if cond.value else self.bottom()
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            return self._assume(A.negate(cond.operand), state)
        if isinstance(cond, A.BinOp) and cond.op == "&&":
            return self._assume(cond.right, self._assume(cond.left, state))
        if isinstance(cond, A.BinOp) and cond.op == "||":
            return self.join(self._assume(cond.left, state),
                             self._assume(cond.right, state))
        if isinstance(cond, A.BinOp) and cond.op in A.COMPARISON_OPS:
            return self._assume_comparison(cond, state)
        if isinstance(cond, A.Var):
            # Truthiness: the value is neither 0 nor null nor false.
            binding = state.get(cond.name)
            if isinstance(binding, ScalarValue):
                refined = ScalarValue(
                    self.lattice.refine_ne(binding.num, self.lattice.from_const(0)),
                    False, binding.maybe_other)
                return self._rebind_checked(state, cond.name, refined)
            return state
        return state

    def _assume_comparison(self, cond: A.BinOp, state: EnvState) -> EnvState:
        left_is_null = isinstance(cond.left, A.NullLit)
        right_is_null = isinstance(cond.right, A.NullLit)
        if left_is_null or right_is_null:
            other = cond.right if left_is_null else cond.left
            return self._assume_null_test(cond.op, other, state)

        left = self.eval(cond.left, state)
        right = self.eval(cond.right, state)
        left_num = self._numeric_or_none(left)
        right_num = self._numeric_or_none(right)
        if left_num is None or right_num is None:
            return state

        verdict = self.lattice.compare(cond.op, left_num, right_num)
        if verdict is False:
            # The comparison may still hold for null/reference values that
            # the numeric component does not cover (only for == / !=).
            if cond.op in ("<", "<=", ">", ">="):
                return self.bottom()
            if isinstance(left, ScalarValue) and isinstance(right, ScalarValue):
                if not (left.maybe_null or left.maybe_other
                        or right.maybe_null or right.maybe_other):
                    return self.bottom()

        refinements = {
            "==": (self.lattice.refine_eq, self.lattice.refine_eq),
            "!=": (self.lattice.refine_ne, self.lattice.refine_ne),
            "<": (self.lattice.refine_lt, self.lattice.refine_gt),
            "<=": (self.lattice.refine_le, self.lattice.refine_ge),
            ">": (self.lattice.refine_gt, self.lattice.refine_lt),
            ">=": (self.lattice.refine_ge, self.lattice.refine_le),
        }
        refine_left, refine_right = refinements[cond.op]
        out = state
        if isinstance(cond.left, A.Var) and isinstance(left, ScalarValue):
            refined = ScalarValue(refine_left(left.num, right_num),
                                  left.maybe_null and cond.op in ("==", "!="),
                                  left.maybe_other and cond.op in ("==", "!="))
            if cond.op in ("<", "<=", ">", ">="):
                refined = ScalarValue(refine_left(left.num, right_num), False, False)
            out = self._rebind_checked(out, cond.left.name, refined)
        if isinstance(cond.right, A.Var) and isinstance(right, ScalarValue) and not out.bottom:
            refined = ScalarValue(refine_right(right.num, left_num),
                                  right.maybe_null and cond.op in ("==", "!="),
                                  right.maybe_other and cond.op in ("==", "!="))
            if cond.op in ("<", "<=", ">", ">="):
                refined = ScalarValue(refine_right(right.num, left_num), False, False)
            out = self._rebind_checked(out, cond.right.name, refined)
        return out

    def _assume_null_test(self, op: str, other: A.Expr, state: EnvState) -> EnvState:
        if op not in ("==", "!="):
            return state
        if not isinstance(other, A.Var):
            return state
        binding = state.get(other.name)
        if not isinstance(binding, ScalarValue):
            if isinstance(binding, ArraySummary):
                # Arrays are never null.
                return self.bottom() if op == "==" else state
            return state
        if op == "==":
            if not binding.maybe_null:
                return self.bottom()
            return self._rebind_checked(state, other.name, self._null_scalar())
        refined = ScalarValue(binding.num, False, binding.maybe_other)
        return self._rebind_checked(state, other.name, refined)

    def _numeric_or_none(self, binding: Binding) -> Optional[Any]:
        if isinstance(binding, ScalarValue):
            return binding.num
        return None

    def _rebind_checked(self, state: EnvState, name: str, value: ScalarValue) -> EnvState:
        if self._scalar_is_bottom(value):
            return self.bottom()
        bindings = state.as_dict()
        bindings[name] = value
        return _make_state(bindings)

    # -- concretization ---------------------------------------------------------------------

    def models(self, concrete: ConcreteState, abstract: EnvState) -> bool:
        if abstract.bottom:
            return False
        for name, binding in abstract.bindings:
            if name not in concrete.env:
                continue
            if not self._value_models(concrete.env[name], binding):
                return False
        return True

    def _value_models(self, value: Any, binding: Binding) -> bool:
        if isinstance(binding, ArraySummary):
            if not isinstance(value, ArrayValue):
                return False
            if not self.lattice.contains(binding.length, len(value)):
                return False
            return all(self._value_models(v, binding.element) for v in value.elements)
        if isinstance(value, bool):
            return self.lattice.contains(binding.num, 1 if value else 0)
        if isinstance(value, int):
            return self.lattice.contains(binding.num, value)
        if value is None:
            return binding.maybe_null
        return binding.maybe_other

    # -- interprocedural hooks ----------------------------------------------------------------

    def call_entry(
        self,
        caller_state: EnvState,
        callee_params: Sequence[str],
        args: Sequence[A.Expr],
    ) -> EnvState:
        if caller_state.bottom:
            return self.bottom()
        bindings: Dict[str, Binding] = {}
        for param, arg in zip(callee_params, args):
            bindings[param] = self.eval(arg, caller_state)
        return _make_state(bindings)

    def call_return(
        self,
        caller_state: EnvState,
        callee_exit: EnvState,
        target: Optional[str],
        args: Sequence[A.Expr] = (),
    ) -> EnvState:
        if caller_state.bottom or callee_exit.bottom:
            return self.bottom()
        bindings = caller_state.as_dict()
        # The callee may have written through array arguments (reference
        # semantics), so weaken their element summaries.
        for arg in args:
            if isinstance(arg, A.Var) and isinstance(bindings.get(arg.name), ArraySummary):
                summary = bindings[arg.name]
                bindings[arg.name] = ArraySummary(summary.length, self._top_scalar())
        if target is not None:
            result = callee_exit.get(A.RETURN_VARIABLE)
            if result is None:
                bindings.pop(target, None)
            else:
                bindings[target] = result
        return _make_state(bindings)

    # -- client helpers -----------------------------------------------------------------------

    def numeric_bounds(self, expr: A.Expr, state: EnvState) -> Tuple[Optional[int], Optional[int]]:
        """Bounds of an expression's numeric value (for the safety clients)."""
        value = self.eval(expr, state)
        if isinstance(value, ScalarValue):
            return self.lattice.bounds(value.num)
        return (None, None)

    def array_length_bounds(self, expr: A.Expr, state: EnvState) -> Tuple[Optional[int], Optional[int]]:
        """Bounds of the length of an array-valued expression."""
        value = self.eval(expr, state)
        if isinstance(value, ArraySummary):
            return self.lattice.bounds(value.length)
        return (None, None)

    def describe(self, state: EnvState) -> str:
        return str(state)
