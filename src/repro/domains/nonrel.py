"""A generic non-relational environment domain over a value lattice.

This module implements the abstract environment shared by the sign,
constant-propagation and interval analyses: an abstract state maps variable
names to abstract values, where an abstract value is either

* a :class:`ScalarValue` — a value-lattice element describing the numeric
  values the variable may hold, plus "may be null" / "may be a non-numeric
  reference" flags, or
* an :class:`ArraySummary` — an abstraction of an array as a pair of its
  length (a value-lattice element) and a single summary of all its elements.

Unbound variables are implicitly ⊤ (completely unknown), so dropping a
binding is always sound; joins and widenings intersect binding sets and
combine pointwise.

The transfer function interprets the atomic statement language of
:mod:`repro.lang.ast`, including backward refinement of ``assume``
conditions (which is what lets the interval instantiation prove array
bounds), weak updates for array writes, and sound havoc for the features the
domain does not track (heap fields, opaque calls).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Optional, Sequence, Tuple, Union

from ..concrete.state import Address, ArrayValue, ConcreteState
from ..intern import InternTable
from ..lang import ast as A
from .base import AbstractDomain
from .values import ValueLattice


class ScalarValue:
    """Abstraction of a single (non-array) value.

    ``num`` abstracts the integer values the variable may hold (booleans are
    abstracted as 0/1); ``maybe_null`` and ``maybe_other`` record whether the
    value may additionally be ``null`` or some non-numeric reference (a
    record address, a string, ...).

    Scalar values are interned (hash-consed): constructing an equal value
    twice yields the same object, so equality is identity and the hash is
    computed once.
    """

    __slots__ = ("num", "maybe_null", "maybe_other", "_hash", "_cbytes",
                 "__weakref__")

    _intern = InternTable("nonrel.ScalarValue")

    num: Any
    maybe_null: bool
    maybe_other: bool

    def __new__(cls, num: Any, maybe_null: bool = False,
                maybe_other: bool = False) -> "ScalarValue":
        key = (num, maybe_null, maybe_other)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "num", num)
        object.__setattr__(self, "maybe_null", maybe_null)
        object.__setattr__(self, "maybe_other", maybe_other)
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("ScalarValue is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ScalarValue, (self.num, self.maybe_null, self.maybe_other))

    def __repr__(self) -> str:
        return "ScalarValue(num=%r, maybe_null=%r, maybe_other=%r)" % (
            self.num, self.maybe_null, self.maybe_other)

    def __str__(self) -> str:
        parts = [str(self.num)]
        if self.maybe_null:
            parts.append("null?")
        if self.maybe_other:
            parts.append("ref?")
        return "{" + ", ".join(parts) + "}"


class ArraySummary:
    """Abstraction of an array: its length and a summary of its elements.

    Interned like :class:`ScalarValue`.
    """

    __slots__ = ("length", "element", "_hash", "_cbytes", "__weakref__")

    _intern = InternTable("nonrel.ArraySummary")

    length: Any
    element: ScalarValue

    def __new__(cls, length: Any, element: ScalarValue) -> "ArraySummary":
        key = (length, element)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "length", length)
        object.__setattr__(self, "element", element)
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("ArraySummary is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (ArraySummary, (self.length, self.element))

    def __repr__(self) -> str:
        return "ArraySummary(length=%r, element=%r)" % (self.length, self.element)

    def __str__(self) -> str:
        return "array(len=%s, elem=%s)" % (self.length, self.element)


Binding = Union[ScalarValue, ArraySummary]


class EnvState:
    """An abstract environment: sorted variable bindings, or ⊥.

    Environments are interned, so two structurally equal states are the
    *same* object: ``EnvState`` equality is identity and the domain's
    ``equal`` check is O(1).  Each state also carries a name → position
    index so :meth:`get` is a dict lookup instead of a linear scan.
    """

    __slots__ = ("bindings", "bottom", "_index", "_keys", "_hash", "_cbytes",
                 "__weakref__")

    _intern = InternTable("nonrel.EnvState")

    bindings: Tuple[Tuple[str, Binding], ...]
    bottom: bool

    def __new__(cls, bindings: Tuple[Tuple[str, Binding], ...] = (),
                bottom: bool = False) -> "EnvState":
        key = (bindings, bottom)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "bindings", bindings)
        object.__setattr__(self, "bottom", bottom)
        object.__setattr__(self, "_index",
                           {name: pos for pos, (name, _) in enumerate(bindings)})
        object.__setattr__(self, "_keys", tuple(name for name, _ in bindings))
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("EnvState is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (EnvState, (self.bindings, self.bottom))

    def __repr__(self) -> str:
        return "EnvState(bindings=%r, bottom=%r)" % (self.bindings, self.bottom)

    def as_dict(self) -> Dict[str, Binding]:
        return dict(self.bindings)

    def get(self, name: str) -> Optional[Binding]:
        pos = self._index.get(name)
        if pos is None:
            return None
        return self.bindings[pos][1]

    def __str__(self) -> str:
        if self.bottom:
            return "⊥"
        if not self.bindings:
            return "⊤"
        return ", ".join("%s↦%s" % (k, v) for k, v in self.bindings)


def _make_state(bindings: Dict[str, Binding]) -> EnvState:
    return EnvState(tuple(sorted(bindings.items(), key=lambda kv: kv[0])))


class ValueEnvDomain(AbstractDomain[EnvState]):
    """The non-relational environment domain over a pluggable value lattice."""

    def __init__(self, lattice: ValueLattice) -> None:
        self.lattice = lattice
        self.name = "%s-env" % lattice.name
        # Singletons, allocated once per domain instead of on every transfer
        # (interning would dedup them anyway, but caching also skips the
        # lattice top/bottom/join calls on the hot path).
        self._top = ScalarValue(lattice.top(), True, True)
        self._null = ScalarValue(lattice.bottom(), True, False)
        self._other = ScalarValue(lattice.bottom(), False, True)
        self._bool = ScalarValue(
            lattice.join(lattice.from_const(0), lattice.from_const(1)), False, False)
        self._bottom_scalar = ScalarValue(lattice.bottom(), False, False)
        self._bottom_state = EnvState(bottom=True)
        self._empty_state = EnvState()

    # -- scalar helpers ----------------------------------------------------------

    def _top_scalar(self) -> ScalarValue:
        return self._top

    def _num_scalar(self, num: Any) -> ScalarValue:
        return ScalarValue(num, False, False)

    def _null_scalar(self) -> ScalarValue:
        return self._null

    def _other_scalar(self) -> ScalarValue:
        return self._other

    def _bool_scalar(self) -> ScalarValue:
        return self._bool

    def _scalar_is_bottom(self, value: ScalarValue) -> bool:
        return (not value.maybe_null and not value.maybe_other
                and self.lattice.is_bottom(value.num))

    def _join_scalar(self, a: ScalarValue, b: ScalarValue, widen: bool = False) -> ScalarValue:
        if a is b and not widen:
            return a
        combine = self.lattice.widen if widen else self.lattice.join
        return ScalarValue(combine(a.num, b.num),
                           a.maybe_null or b.maybe_null,
                           a.maybe_other or b.maybe_other)

    def _leq_scalar(self, a: ScalarValue, b: ScalarValue) -> bool:
        if a is b:
            return True
        return (self.lattice.leq(a.num, b.num)
                and (not a.maybe_null or b.maybe_null)
                and (not a.maybe_other or b.maybe_other))

    def _join_binding(self, a: Binding, b: Binding, widen: bool = False) -> Optional[Binding]:
        if isinstance(a, ScalarValue) and isinstance(b, ScalarValue):
            return self._join_scalar(a, b, widen)
        if isinstance(a, ArraySummary) and isinstance(b, ArraySummary):
            combine = self.lattice.widen if widen else self.lattice.join
            return ArraySummary(combine(a.length, b.length),
                                self._join_scalar(a.element, b.element, widen))
        return None  # incompatible kinds: drop to ⊤

    # -- the AbstractDomain interface ----------------------------------------------

    def bottom(self) -> EnvState:
        return self._bottom_state

    def initial(self, params: Sequence[str] = ()) -> EnvState:
        # Parameters are unconstrained at entry, which is exactly the empty
        # binding map (unbound = ⊤).
        return self._empty_state

    def is_bottom(self, state: EnvState) -> bool:
        return state.bottom

    def join(self, left: EnvState, right: EnvState) -> EnvState:
        return self._combine(left, right, widen=False)

    def widen(self, older: EnvState, newer: EnvState) -> EnvState:
        return self._combine(older, newer, widen=True)

    def _combine(self, left: EnvState, right: EnvState, widen: bool) -> EnvState:
        # Interned states make `join(s, s) is s` a pointer comparison.
        if left is right:
            return left
        if left.bottom:
            return right
        if right.bottom:
            return left
        # Both binding tuples are sorted by name: merge with two pointers,
        # reusing the existing (name, binding) tuples whenever the combined
        # binding is one of the inputs, so an unchanged side costs no
        # allocation and the result needs no re-sort.
        left_bindings, right_bindings = left.bindings, right.bindings
        out = []
        i = j = 0
        left_len, right_len = len(left_bindings), len(right_bindings)
        while i < left_len and j < right_len:
            left_pair = left_bindings[i]
            right_pair = right_bindings[j]
            left_name = left_pair[0]
            right_name = right_pair[0]
            if left_name == right_name:
                left_value = left_pair[1]
                right_value = right_pair[1]
                if left_value is right_value and not widen:
                    out.append(left_pair)
                else:
                    combined = self._join_binding(left_value, right_value, widen)
                    if combined is not None:
                        if combined is left_value:
                            out.append(left_pair)
                        elif combined is right_value:
                            out.append(right_pair)
                        else:
                            out.append((left_name, combined))
                i += 1
                j += 1
            elif left_name < right_name:
                i += 1
            else:
                j += 1
        if len(out) == left_len and all(
                pair is other for pair, other in zip(out, left_bindings)):
            return left
        if len(out) == right_len and all(
                pair is other for pair, other in zip(out, right_bindings)):
            return right
        return EnvState(tuple(out))

    def leq(self, left: EnvState, right: EnvState) -> bool:
        if left is right:
            return True
        if left.bottom:
            return True
        if right.bottom:
            return False
        left_get = left.get
        for name, right_value in right.bindings:
            left_value = left_get(name)
            if left_value is None:
                return False
            if left_value is right_value:
                continue
            if isinstance(right_value, ScalarValue):
                if not isinstance(left_value, ScalarValue):
                    return False
                if not self._leq_scalar(left_value, right_value):
                    return False
            else:
                if not isinstance(left_value, ArraySummary):
                    return False
                if not self.lattice.leq(left_value.length, right_value.length):
                    return False
                if not self._leq_scalar(left_value.element, right_value.element):
                    return False
        return True

    def equal(self, left: EnvState, right: EnvState) -> bool:
        # Total interning makes structural equality pointer equality.
        return left is right

    # -- expression evaluation --------------------------------------------------------

    def eval(self, expr: A.Expr, state: EnvState) -> Binding:
        """Abstractly evaluate an expression in ``state``."""
        if state.bottom:
            return self._bottom_scalar
        if isinstance(expr, A.Var):
            binding = state.get(expr.name)
            return binding if binding is not None else self._top_scalar()
        if isinstance(expr, A.IntLit):
            return self._num_scalar(self.lattice.from_const(expr.value))
        if isinstance(expr, A.BoolLit):
            return self._num_scalar(self.lattice.from_const(1 if expr.value else 0))
        if isinstance(expr, A.NullLit):
            return self._null_scalar()
        if isinstance(expr, A.StrLit):
            return self._other_scalar()
        if isinstance(expr, A.AllocRecord):
            return self._other_scalar()
        if isinstance(expr, A.UnaryOp):
            return self._eval_unary(expr, state)
        if isinstance(expr, A.BinOp):
            return self._eval_binop(expr, state)
        if isinstance(expr, A.ArrayLit):
            return self._eval_array_literal(expr, state)
        if isinstance(expr, A.ArrayRead):
            array = self.eval(expr.array, state)
            if isinstance(array, ArraySummary):
                return array.element
            return self._top_scalar()
        if isinstance(expr, A.ArrayLen):
            array = self.eval(expr.array, state)
            if isinstance(array, ArraySummary):
                return self._num_scalar(array.length)
            return self._num_scalar(self.lattice.top())
        if isinstance(expr, A.FieldRead):
            return self._top_scalar()
        return self._top_scalar()

    def _numeric(self, binding: Binding) -> Any:
        """The numeric component of a binding (arrays have none)."""
        if isinstance(binding, ScalarValue):
            return binding.num
        return self.lattice.bottom()

    def _eval_unary(self, expr: A.UnaryOp, state: EnvState) -> ScalarValue:
        operand = self._numeric(self.eval(expr.operand, state))
        if expr.op == "-":
            return self._num_scalar(self.lattice.neg(operand))
        return self._bool_scalar()

    def _eval_binop(self, expr: A.BinOp, state: EnvState) -> ScalarValue:
        if expr.op in A.LOGICAL_OPS:
            return self._bool_scalar()
        left = self.eval(expr.left, state)
        right = self.eval(expr.right, state)
        if expr.op in A.COMPARISON_OPS:
            verdict = None
            if isinstance(left, ScalarValue) and isinstance(right, ScalarValue):
                if expr.op in ("<", "<=", ">", ">=", "==", "!="):
                    verdict = self.lattice.compare(expr.op, left.num, right.num)
            if verdict is True:
                return self._num_scalar(self.lattice.from_const(1))
            if verdict is False:
                return self._num_scalar(self.lattice.from_const(0))
            return self._bool_scalar()
        left_num, right_num = self._numeric(left), self._numeric(right)
        operations = {
            "+": self.lattice.add,
            "-": self.lattice.sub,
            "*": self.lattice.mul,
            "/": self.lattice.div,
            "%": self.lattice.mod,
        }
        return self._num_scalar(operations[expr.op](left_num, right_num))

    def _eval_array_literal(self, expr: A.ArrayLit, state: EnvState) -> ArraySummary:
        element = self._bottom_scalar
        for item in expr.elements:
            value = self.eval(item, state)
            if isinstance(value, ScalarValue):
                element = self._join_scalar(element, value)
            else:
                element = self._top_scalar()
        return ArraySummary(self.lattice.from_const(len(expr.elements)), element)

    # -- single-binding edits (sorted tuples, no dict round-trip) -----------------------

    def _rebind(self, state: EnvState, name: str, value: Binding) -> EnvState:
        """``state`` with ``name`` bound to ``value`` (O(log n) + one splice)."""
        bindings = state.bindings
        pos = state._index.get(name)
        if pos is not None:
            if bindings[pos][1] is value:
                return state
            return EnvState(bindings[:pos] + ((name, value),) + bindings[pos + 1:])
        pos = bisect_left(state._keys, name)
        return EnvState(bindings[:pos] + ((name, value),) + bindings[pos:])

    def _unbind(self, state: EnvState, name: str) -> EnvState:
        """``state`` with ``name`` dropped to ⊤ (i.e. unbound)."""
        pos = state._index.get(name)
        if pos is None:
            return state
        bindings = state.bindings
        return EnvState(bindings[:pos] + bindings[pos + 1:])

    # -- transfer -----------------------------------------------------------------------

    def transfer(self, stmt: A.AtomicStmt, state: EnvState) -> EnvState:
        if state.bottom:
            return state
        if isinstance(stmt, A.AssignStmt):
            return self._rebind(state, stmt.target, self.eval(stmt.value, state))
        if isinstance(stmt, A.AssumeStmt):
            return self._assume(stmt.cond, state)
        if isinstance(stmt, A.ArrayWriteStmt):
            return self._array_write(stmt, state)
        if isinstance(stmt, A.FieldWriteStmt):
            return state
        if isinstance(stmt, (A.PrintStmt, A.SkipStmt)):
            return state
        if isinstance(stmt, A.CallStmt):
            # Without the interprocedural engine the best sound answer is to
            # havoc the target and any array arguments' contents.
            if stmt.target is not None:
                state = self._unbind(state, stmt.target)
            for arg in stmt.args:
                if isinstance(arg, A.Var):
                    summary = state.get(arg.name)
                    if isinstance(summary, ArraySummary):
                        state = self._rebind(state, arg.name, ArraySummary(
                            summary.length, self._top_scalar()))
            return state
        return state

    def _array_write(self, stmt: A.ArrayWriteStmt, state: EnvState) -> EnvState:
        existing = state.get(stmt.array)
        value = self.eval(stmt.value, state)
        scalar = value if isinstance(value, ScalarValue) else self._top_scalar()
        if isinstance(existing, ArraySummary):
            return self._rebind(state, stmt.array, ArraySummary(
                existing.length, self._join_scalar(existing.element, scalar)))
        # Writing through a variable that is not known to be an array leaves
        # it unknown (⊤), which is what the absence of a binding means.
        if existing is not None:
            return self._unbind(state, stmt.array)
        return state

    # -- assume refinement -----------------------------------------------------------------

    def _assume(self, cond: A.Expr, state: EnvState) -> EnvState:
        if isinstance(cond, A.BoolLit):
            return state if cond.value else self.bottom()
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            return self._assume(A.negate(cond.operand), state)
        if isinstance(cond, A.BinOp) and cond.op == "&&":
            return self._assume(cond.right, self._assume(cond.left, state))
        if isinstance(cond, A.BinOp) and cond.op == "||":
            return self.join(self._assume(cond.left, state),
                             self._assume(cond.right, state))
        if isinstance(cond, A.BinOp) and cond.op in A.COMPARISON_OPS:
            return self._assume_comparison(cond, state)
        if isinstance(cond, A.Var):
            # Truthiness: the value is neither 0 nor null nor false.
            binding = state.get(cond.name)
            if isinstance(binding, ScalarValue):
                refined = ScalarValue(
                    self.lattice.refine_ne(binding.num, self.lattice.from_const(0)),
                    False, binding.maybe_other)
                return self._rebind_checked(state, cond.name, refined)
            return state
        return state

    def _assume_comparison(self, cond: A.BinOp, state: EnvState) -> EnvState:
        left_is_null = isinstance(cond.left, A.NullLit)
        right_is_null = isinstance(cond.right, A.NullLit)
        if left_is_null or right_is_null:
            other = cond.right if left_is_null else cond.left
            return self._assume_null_test(cond.op, other, state)

        left = self.eval(cond.left, state)
        right = self.eval(cond.right, state)
        left_num = self._numeric_or_none(left)
        right_num = self._numeric_or_none(right)
        if left_num is None or right_num is None:
            return state

        verdict = self.lattice.compare(cond.op, left_num, right_num)
        if verdict is False:
            # The comparison may still hold for null/reference values that
            # the numeric component does not cover (only for == / !=).
            if cond.op in ("<", "<=", ">", ">="):
                return self.bottom()
            if isinstance(left, ScalarValue) and isinstance(right, ScalarValue):
                if not (left.maybe_null or left.maybe_other
                        or right.maybe_null or right.maybe_other):
                    return self.bottom()

        refinements = {
            "==": (self.lattice.refine_eq, self.lattice.refine_eq),
            "!=": (self.lattice.refine_ne, self.lattice.refine_ne),
            "<": (self.lattice.refine_lt, self.lattice.refine_gt),
            "<=": (self.lattice.refine_le, self.lattice.refine_ge),
            ">": (self.lattice.refine_gt, self.lattice.refine_lt),
            ">=": (self.lattice.refine_ge, self.lattice.refine_le),
        }
        refine_left, refine_right = refinements[cond.op]
        out = state
        if isinstance(cond.left, A.Var) and isinstance(left, ScalarValue):
            refined = ScalarValue(refine_left(left.num, right_num),
                                  left.maybe_null and cond.op in ("==", "!="),
                                  left.maybe_other and cond.op in ("==", "!="))
            if cond.op in ("<", "<=", ">", ">="):
                refined = ScalarValue(refine_left(left.num, right_num), False, False)
            out = self._rebind_checked(out, cond.left.name, refined)
        if isinstance(cond.right, A.Var) and isinstance(right, ScalarValue) and not out.bottom:
            refined = ScalarValue(refine_right(right.num, left_num),
                                  right.maybe_null and cond.op in ("==", "!="),
                                  right.maybe_other and cond.op in ("==", "!="))
            if cond.op in ("<", "<=", ">", ">="):
                refined = ScalarValue(refine_right(right.num, left_num), False, False)
            out = self._rebind_checked(out, cond.right.name, refined)
        return out

    def _assume_null_test(self, op: str, other: A.Expr, state: EnvState) -> EnvState:
        if op not in ("==", "!="):
            return state
        if not isinstance(other, A.Var):
            return state
        binding = state.get(other.name)
        if not isinstance(binding, ScalarValue):
            if isinstance(binding, ArraySummary):
                # Arrays are never null.
                return self.bottom() if op == "==" else state
            return state
        if op == "==":
            if not binding.maybe_null:
                return self.bottom()
            return self._rebind_checked(state, other.name, self._null_scalar())
        refined = ScalarValue(binding.num, False, binding.maybe_other)
        return self._rebind_checked(state, other.name, refined)

    def _numeric_or_none(self, binding: Binding) -> Optional[Any]:
        if isinstance(binding, ScalarValue):
            return binding.num
        return None

    def _rebind_checked(self, state: EnvState, name: str, value: ScalarValue) -> EnvState:
        if self._scalar_is_bottom(value):
            return self.bottom()
        return self._rebind(state, name, value)

    # -- concretization ---------------------------------------------------------------------

    def models(self, concrete: ConcreteState, abstract: EnvState) -> bool:
        if abstract.bottom:
            return False
        for name, binding in abstract.bindings:
            if name not in concrete.env:
                continue
            if not self._value_models(concrete.env[name], binding):
                return False
        return True

    def _value_models(self, value: Any, binding: Binding) -> bool:
        if isinstance(binding, ArraySummary):
            if not isinstance(value, ArrayValue):
                return False
            if not self.lattice.contains(binding.length, len(value)):
                return False
            return all(self._value_models(v, binding.element) for v in value.elements)
        if isinstance(value, bool):
            return self.lattice.contains(binding.num, 1 if value else 0)
        if isinstance(value, int):
            return self.lattice.contains(binding.num, value)
        if value is None:
            return binding.maybe_null
        return binding.maybe_other

    # -- interprocedural hooks ----------------------------------------------------------------

    def call_entry(
        self,
        caller_state: EnvState,
        callee_params: Sequence[str],
        args: Sequence[A.Expr],
    ) -> EnvState:
        if caller_state.bottom:
            return self.bottom()
        bindings: Dict[str, Binding] = {}
        for param, arg in zip(callee_params, args):
            bindings[param] = self.eval(arg, caller_state)
        return _make_state(bindings)

    def call_return(
        self,
        caller_state: EnvState,
        callee_exit: EnvState,
        target: Optional[str],
        args: Sequence[A.Expr] = (),
    ) -> EnvState:
        if caller_state.bottom or callee_exit.bottom:
            return self.bottom()
        state = caller_state
        # The callee may have written through array arguments (reference
        # semantics), so weaken their element summaries.
        for arg in args:
            if isinstance(arg, A.Var):
                summary = state.get(arg.name)
                if isinstance(summary, ArraySummary):
                    state = self._rebind(state, arg.name, ArraySummary(
                        summary.length, self._top_scalar()))
        if target is not None:
            result = callee_exit.get(A.RETURN_VARIABLE)
            if result is None:
                state = self._unbind(state, target)
            else:
                state = self._rebind(state, target, result)
        return state

    # -- client helpers -----------------------------------------------------------------------

    def numeric_bounds(self, expr: A.Expr, state: EnvState) -> Tuple[Optional[int], Optional[int]]:
        """Bounds of an expression's numeric value (for the safety clients)."""
        value = self.eval(expr, state)
        if isinstance(value, ScalarValue):
            return self.lattice.bounds(value.num)
        return (None, None)

    def array_length_bounds(self, expr: A.Expr, state: EnvState) -> Tuple[Optional[int], Optional[int]]:
        """Bounds of the length of an array-valued expression."""
        value = self.eval(expr, state)
        if isinstance(value, ArraySummary):
            return self.lattice.bounds(value.length)
        return (None, None)

    def describe(self, state: EnvState) -> str:
        return str(state)
