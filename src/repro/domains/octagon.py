"""The octagon abstract domain (Miné), used by the Section 7.3 workload.

Octagons represent conjunctions of constraints of the form ``±x ± y <= c``.
The paper uses an APRON-backed octagon domain; this reproduction implements
the standard difference-bound-matrix (DBM) encoding directly (with numpy for
the cubic closure), exposing it through the same generic domain interface as
every other domain, so the DAIG framework is oblivious to the change.

Representation: for a variable universe ``x_0 .. x_{n-1}`` the DBM has
``2n`` rows/columns, where index ``2k`` stands for ``+x_k`` and ``2k+1`` for
``-x_k``; entry ``m[i, j]`` bounds ``V_i - V_j <= m[i, j]``.  States are
kept *closed* (canonical) at all times, so structural equality of the
matrices coincides with semantic equality — which is exactly what the
demanded-unrolling convergence check needs.

The variable universe is dynamic: operations on states with different
variable sets first unify them (new variables are unconstrained), which is
what allows the synthetic edit workload to introduce fresh variables at any
time.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..concrete.state import ArrayValue, ConcreteState
from ..intern import InternTable
from ..lang import ast as A
from .base import AbstractDomain

_INF = float("inf")


class OctagonState:
    """An octagon: a variable tuple plus a DBM (or canonical ⊥).

    States are interned by ``(variables, matrix bytes)``, so structurally
    equal octagons are the same object: equality is identity and the hash is
    computed once at construction.  Matrices are frozen (non-writeable) on
    interning; every mutation site works on a fresh copy.

    ``closed`` records whether the matrix is known to be strongly closed
    (the canonical form).  Most states are — transfer and join keep states
    closed — but widening results deliberately are not (re-closing a widened
    DBM can defeat convergence, the standard octagon caveat), so operations
    take fast paths only when their inputs are known-closed and fall back to
    the full cubic closure otherwise.
    """

    __slots__ = ("variables", "matrix", "is_bottom", "closed", "_hash",
                 "_cbytes", "__weakref__")

    _intern = InternTable("octagon.OctagonState")

    def __new__(
        cls,
        variables: Tuple[str, ...],
        matrix: Optional[np.ndarray],
        is_bottom: bool = False,
        closed: bool = False,
    ) -> "OctagonState":
        if is_bottom:
            key: Any = ("octagon", "bottom")
            matrix = None
            closed = True
        else:
            assert matrix is not None
            matrix = np.ascontiguousarray(matrix)
            key = (variables, matrix.tobytes())
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            # ``closed`` is monotone knowledge about the same matrix: if any
            # construction path proves closure, the canonical object keeps it.
            if closed and not canonical.closed:
                object.__setattr__(canonical, "closed", True)
            return canonical
        self = object.__new__(cls)
        if matrix is not None:
            matrix.flags.writeable = False
        object.__setattr__(self, "variables", variables)
        object.__setattr__(self, "matrix", matrix)
        object.__setattr__(self, "is_bottom", is_bottom)
        object.__setattr__(self, "closed", closed)
        object.__setattr__(self, "_hash", hash(key))
        winner = table.insert(key, self)
        if winner is not self and closed and not winner.closed:
            # Lost an insertion race to an equal state: carry the monotone
            # closure knowledge over to the surviving canonical object.
            object.__setattr__(winner, "closed", True)
        return winner

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("OctagonState is immutable (interned)")

    # -- equality / hashing: interning makes both pointer-cheap -----------------

    def __hash__(self) -> int:
        return self._hash

    # object.__eq__ (identity) is structural equality for interned states;
    # semantic equality of non-closed (widened) states still goes through
    # OctagonDomain.equal, which falls back to a double ⊑ check.

    def __reduce__(self):
        if self.is_bottom:
            return (OctagonState, ((), None, True))
        return (OctagonState,
                (self.variables, np.array(self.matrix), False, self.closed))

    def __canonical_args__(self):
        # The canonical encoding must not include ``closed``: it is monotone
        # knowledge about the same matrix, flipped in place on the canonical
        # object, and two moments of the same state must digest equally.
        if self.is_bottom:
            return ((), None, True)
        return (self.variables, np.array(self.matrix), False)

    def __str__(self) -> str:
        if self.is_bottom:
            return "⊥"
        constraints = []
        for name in self.variables:
            lo, hi = self.variable_bounds(name)
            if lo is None and hi is None:
                continue
            lo_text = "-inf" if lo is None else str(lo)
            hi_text = "+inf" if hi is None else str(hi)
            constraints.append("%s∈[%s,%s]" % (name, lo_text, hi_text))
        return "{" + ", ".join(constraints) + "}" if constraints else "⊤"

    def index(self, name: str) -> int:
        return self.variables.index(name)

    def variable_bounds(self, name: str) -> Tuple[Optional[int], Optional[int]]:
        """The interval implied for ``name`` by the octagon constraints."""
        if self.is_bottom or name not in self.variables:
            return (0, -1) if self.is_bottom else (None, None)
        assert self.matrix is not None
        k = self.index(name)
        hi_bound = self.matrix[2 * k, 2 * k + 1]
        lo_bound = self.matrix[2 * k + 1, 2 * k]
        hi = None if hi_bound == _INF else int(np.floor(hi_bound / 2.0))
        lo = None if lo_bound == _INF else int(-np.floor(lo_bound / 2.0))
        return (lo, hi)


def _strengthen_and_check(m: np.ndarray) -> Optional[np.ndarray]:
    """Octagonal strengthening + feasibility check of a closed DBM.

    Strengthening (``m[i,j] = min(m[i,j], (m[i, i^1] + m[j^1, j]) / 2)``)
    after a full closure yields the strongly closed canonical form.  The
    final ``+ 0.0`` normalizes any ``-0.0`` entries to ``+0.0`` so that the
    byte-level interning key coincides with numeric equality.
    """
    size = m.shape[0]
    arange = np.arange(size)
    bar = arange ^ 1
    half = (m[arange, bar][:, None] + m[bar, arange][None, :]) / 2.0
    np.minimum(m, half, out=m)
    if np.any(np.diag(m) < 0):
        return None
    np.fill_diagonal(m, 0.0)
    np.add(m, 0.0, out=m)
    return m


def _close(matrix: np.ndarray) -> Optional[np.ndarray]:
    """Shortest-path closure plus octagonal strengthening.

    Returns the closed matrix, or ``None`` if the constraint system is
    infeasible (a negative cycle exists).
    """
    m = matrix.copy()
    size = m.shape[0]
    np.fill_diagonal(m, 0.0)
    for k in range(size):
        np.minimum(m, m[:, k:k + 1] + m[k:k + 1, :], out=m)
    return _strengthen_and_check(m)


def _close_incremental(
    matrix: np.ndarray, touched: Sequence[int]
) -> Optional[np.ndarray]:
    """Restore strong closure after tightening entries incident to ``touched``.

    If ``matrix`` was strongly closed before constraints were added, and
    every added constraint's entries lie in rows/columns of the ``touched``
    DBM indices, then any *new* shortest path must pass through a touched
    vertex — so running Floyd–Warshall restricted to the touched pivots
    restores closure in O(|touched| · n²) instead of O(n³), after which one
    strengthening pass restores the strongly closed form as usual.
    """
    m = matrix.copy()
    np.fill_diagonal(m, 0.0)
    for k in touched:
        np.minimum(m, m[:, k:k + 1] + m[k:k + 1, :], out=m)
    return _strengthen_and_check(m)


class OctagonDomain(AbstractDomain[OctagonState]):
    """The octagon domain behind the generic abstract-interpreter interface."""

    name = "octagon"

    # -- construction helpers ------------------------------------------------------

    def top(self, variables: Sequence[str] = ()) -> OctagonState:
        names = tuple(sorted(set(variables)))
        size = 2 * len(names)
        matrix = np.full((size, size), _INF)
        np.fill_diagonal(matrix, 0.0)
        return OctagonState(names, matrix, False, closed=True)

    def bottom(self) -> OctagonState:
        return OctagonState((), None, True)

    def initial(self, params: Sequence[str] = ()) -> OctagonState:
        return self.top(params)

    def is_bottom(self, state: OctagonState) -> bool:
        return state.is_bottom

    def _closed(self, variables: Tuple[str, ...], matrix: np.ndarray) -> OctagonState:
        closed = _close(matrix)
        if closed is None:
            return self.bottom()
        return OctagonState(variables, closed, False, closed=True)

    def _closed_incremental(
        self,
        variables: Tuple[str, ...],
        matrix: np.ndarray,
        touched: Sequence[int],
        base_closed: bool,
    ) -> OctagonState:
        """Close ``matrix`` after constraint additions incident to ``touched``.

        Uses the pivot-restricted incremental closure when the base matrix
        was known to be strongly closed, and the full cubic closure
        otherwise (e.g. downstream of a deliberately non-closed widening).
        """
        if base_closed:
            closed = _close_incremental(matrix, touched)
        else:
            closed = _close(matrix)
        if closed is None:
            return self.bottom()
        return OctagonState(variables, closed, False, closed=True)

    def _unify(
        self, left: OctagonState, right: OctagonState
    ) -> Tuple[Tuple[str, ...], np.ndarray, np.ndarray]:
        # Fast path: identical variable universes need no expansion at all
        # (callers never mutate the returned matrices in place).
        if left.variables == right.variables:
            assert left.matrix is not None and right.matrix is not None
            return left.variables, left.matrix, right.matrix
        names = tuple(sorted(set(left.variables) | set(right.variables)))
        return names, self._expand(left, names), self._expand(right, names)

    def _expand(self, state: OctagonState, names: Tuple[str, ...]) -> np.ndarray:
        size = 2 * len(names)
        out = np.full((size, size), _INF)
        np.fill_diagonal(out, 0.0)
        if state.matrix is None:
            return out
        position = {name: index for index, name in enumerate(names)}
        old = np.empty(2 * len(state.variables), dtype=np.intp)
        for old_index, name in enumerate(state.variables):
            new_index = 2 * position[name]
            old[2 * old_index] = new_index
            old[2 * old_index + 1] = new_index + 1
        out[np.ix_(old, old)] = state.matrix
        return out

    # -- lattice ---------------------------------------------------------------------

    def join(self, left: OctagonState, right: OctagonState) -> OctagonState:
        if left is right:
            return left
        if left.is_bottom:
            return right
        if right.is_bottom:
            return left
        names, a, b = self._unify(left, right)
        if left.closed and right.closed:
            # The pointwise max of two strongly closed DBMs is itself
            # strongly closed (Miné), so the cubic re-closure is a no-op:
            # skip it.  (Expansion with unconstrained fresh variables
            # preserves strong closure, so the unified matrices still
            # qualify; the diagonal is 0 in both inputs, so the result is
            # feasible by construction.)
            return OctagonState(names, np.maximum(a, b), False, closed=True)
        return self._closed(names, np.maximum(a, b))

    def widen(self, older: OctagonState, newer: OctagonState) -> OctagonState:
        if older.is_bottom:
            return newer
        if newer.is_bottom:
            return older
        names, a, b = self._unify(older, newer)
        widened = np.where(b <= a, a, _INF)
        np.fill_diagonal(widened, 0.0)
        # The widening result is deliberately *not* re-closed: closing a
        # widened DBM can re-tighten entries and defeat convergence (the
        # standard octagon-widening caveat).  Structural equality therefore
        # does not coincide with semantic equality for widened states, so
        # `equal` falls back to a double ⊑ check.
        return OctagonState(names, widened, False, closed=False)

    def leq(self, left: OctagonState, right: OctagonState) -> bool:
        if left is right:
            return True
        if left.is_bottom:
            return True
        if right.is_bottom:
            return False
        names, a, b = self._unify(left, right)
        return bool(np.all(a <= b))

    def equal(self, left: OctagonState, right: OctagonState) -> bool:
        # Interning makes structural equality identity; non-closed (widened)
        # representations still need the semantic double ⊑ fallback.
        return left is right or (self.leq(left, right) and self.leq(right, left))

    # -- linear forms -------------------------------------------------------------------

    def _linear_form(
        self, expr: A.Expr
    ) -> Optional[Tuple[Dict[str, int], int]]:
        """Try to view ``expr`` as ``sum(coeff_i * x_i) + constant``.

        Only coefficient magnitudes 0/1 with at most two variables are useful
        to an octagon, but the caller filters; return ``None`` for anything
        non-linear or non-numeric.
        """
        if isinstance(expr, A.IntLit):
            return {}, expr.value
        if isinstance(expr, A.BoolLit):
            return {}, 1 if expr.value else 0
        if isinstance(expr, A.Var):
            return {expr.name: 1}, 0
        if isinstance(expr, A.UnaryOp) and expr.op == "-":
            inner = self._linear_form(expr.operand)
            if inner is None:
                return None
            coeffs, constant = inner
            return {name: -c for name, c in coeffs.items()}, -constant
        if isinstance(expr, A.BinOp) and expr.op in ("+", "-"):
            left = self._linear_form(expr.left)
            right = self._linear_form(expr.right)
            if left is None or right is None:
                return None
            sign = 1 if expr.op == "+" else -1
            coeffs = dict(left[0])
            for name, coeff in right[0].items():
                coeffs[name] = coeffs.get(name, 0) + sign * coeff
            coeffs = {name: c for name, c in coeffs.items() if c != 0}
            return coeffs, left[1] + sign * right[1]
        if isinstance(expr, A.BinOp) and expr.op == "*":
            left = self._linear_form(expr.left)
            right = self._linear_form(expr.right)
            if left is None or right is None:
                return None
            if not left[0]:
                factor = left[1]
                coeffs = {n: c * factor for n, c in right[0].items() if c * factor != 0}
                return coeffs, right[1] * factor
            if not right[0]:
                factor = right[1]
                coeffs = {n: c * factor for n, c in left[0].items() if c * factor != 0}
                return coeffs, left[1] * factor
            return None
        return None

    def _expr_bounds(
        self, expr: A.Expr, state: OctagonState
    ) -> Tuple[Optional[float], Optional[float]]:
        """Interval bounds of an arbitrary expression, via variable bounds."""
        form = self._linear_form(expr)
        if form is not None:
            coeffs, constant = form
            lo: Optional[float] = float(constant)
            hi: Optional[float] = float(constant)
            for name, coeff in coeffs.items():
                var_lo, var_hi = state.variable_bounds(name)
                if coeff >= 0:
                    term_lo = None if var_lo is None else coeff * var_lo
                    term_hi = None if var_hi is None else coeff * var_hi
                else:
                    term_lo = None if var_hi is None else coeff * var_hi
                    term_hi = None if var_lo is None else coeff * var_lo
                lo = None if lo is None or term_lo is None else lo + term_lo
                hi = None if hi is None or term_hi is None else hi + term_hi
            return lo, hi
        if isinstance(expr, A.BinOp) and expr.op in A.COMPARISON_OPS + A.LOGICAL_OPS:
            return 0.0, 1.0
        if isinstance(expr, A.UnaryOp) and expr.op == "!":
            return 0.0, 1.0
        return None, None

    # -- transfer --------------------------------------------------------------------------

    def transfer(self, stmt: A.AtomicStmt, state: OctagonState) -> OctagonState:
        if state.is_bottom:
            return state
        if isinstance(stmt, A.AssignStmt):
            return self._assign(stmt.target, stmt.value, state)
        if isinstance(stmt, A.AssumeStmt):
            return self._assume(stmt.cond, state)
        if isinstance(stmt, A.ArrayWriteStmt):
            return state
        if isinstance(stmt, (A.FieldWriteStmt, A.PrintStmt, A.SkipStmt)):
            return state
        if isinstance(stmt, A.CallStmt):
            if stmt.target is None:
                return state
            return self._forget(stmt.target, state)
        return state

    def _with_variable(self, state: OctagonState, name: str) -> OctagonState:
        if name in state.variables:
            return state
        names = tuple(sorted(set(state.variables) | {name}))
        # Adding an unconstrained variable preserves strong closure.
        return OctagonState(names, self._expand(state, names), False,
                            closed=state.closed)

    def _forget(self, name: str, state: OctagonState) -> OctagonState:
        state = self._with_variable(state, name)
        assert state.matrix is not None
        matrix = state.matrix.copy()
        k = state.index(name)
        matrix[2 * k, :] = _INF
        matrix[2 * k + 1, :] = _INF
        matrix[:, 2 * k] = _INF
        matrix[:, 2 * k + 1] = _INF
        matrix[2 * k, 2 * k] = 0.0
        matrix[2 * k + 1, 2 * k + 1] = 0.0
        # Forgetting (projecting out) a variable preserves strong closure.
        return OctagonState(state.variables, matrix, False, closed=state.closed)

    def _assign(self, target: str, value: A.Expr, state: OctagonState) -> OctagonState:
        lo, hi = self._expr_bounds(value, state)
        form = self._linear_form(value)
        # Invertible self-assignments x = x + c translate existing constraints.
        if (form is not None and list(form[0].items()) == [(target, 1)]
                and target in state.variables):
            assert state.matrix is not None
            matrix = state.matrix.copy()
            k = state.index(target)
            constant = float(form[1])
            # x := x + c translates every constraint mentioning x: bounds on
            # +x grow by c (row 2k / column 2k+1) and bounds on -x shrink by
            # c (row 2k+1 / column 2k); entries touched by both a modified
            # row and column shift by 2c, which is exactly right for the
            # unary constraints 2x <= b and -2x <= b.
            matrix[2 * k, :] += constant
            matrix[:, 2 * k] -= constant
            matrix[2 * k + 1, :] -= constant
            matrix[:, 2 * k + 1] += constant
            matrix[2 * k, 2 * k] = 0.0
            matrix[2 * k + 1, 2 * k + 1] = 0.0
            if state.closed:
                # Translating x by a constant is a bijection on the solution
                # set that shifts entries consistently along every path, so
                # it preserves strong closure and feasibility: no re-closure
                # needed.
                return OctagonState(state.variables, matrix, False, closed=True)
            return self._closed(state.variables, matrix)

        # Track every variable the right-hand side mentions *before* adding
        # constraints: the transfer function must depend only on the state's
        # meaning, not on which semantically-unconstrained variables happen
        # to be in its universe (demanded and batch analyses reach the same
        # location with different universes, and must still agree).
        if form is not None:
            for name in form[0]:
                state = self._with_variable(state, name)
        out = self._forget(target, state)
        assert out.matrix is not None
        matrix = out.matrix.copy()
        k = out.index(target)
        touched = [2 * k, 2 * k + 1]
        if hi is not None:
            matrix[2 * k, 2 * k + 1] = min(matrix[2 * k, 2 * k + 1], 2 * hi)
        if lo is not None:
            matrix[2 * k + 1, 2 * k] = min(matrix[2 * k + 1, 2 * k], -2 * lo)
        # Relational constraints for x = ±y + c with a single other variable.
        if form is not None:
            coeffs, constant = form
            others = [(n, c) for n, c in coeffs.items() if n != target]
            if len(others) == 1 and target not in coeffs:
                other, coeff = others[0]
                if coeff in (1, -1) and other in out.variables:
                    j = out.index(other)
                    if coeff == 1:
                        # x - y <= c and y - x <= -c
                        matrix[2 * k, 2 * j] = min(matrix[2 * k, 2 * j], constant)
                        matrix[2 * j + 1, 2 * k + 1] = min(
                            matrix[2 * j + 1, 2 * k + 1], constant)
                        matrix[2 * j, 2 * k] = min(matrix[2 * j, 2 * k], -constant)
                        matrix[2 * k + 1, 2 * j + 1] = min(
                            matrix[2 * k + 1, 2 * j + 1], -constant)
                    else:
                        # x + y <= c and -x - y <= -c
                        matrix[2 * k, 2 * j + 1] = min(matrix[2 * k, 2 * j + 1], constant)
                        matrix[2 * j, 2 * k + 1] = min(matrix[2 * j, 2 * k + 1], constant)
                        matrix[2 * k + 1, 2 * j] = min(matrix[2 * k + 1, 2 * j], -constant)
                        matrix[2 * j + 1, 2 * k] = min(matrix[2 * j + 1, 2 * k], -constant)
        # Every constraint added above mentions the (just forgotten) target,
        # so closure only needs to propagate through its two DBM indices.
        return self._closed_incremental(out.variables, matrix, touched, out.closed)

    # -- assume ------------------------------------------------------------------------------

    def _assume(self, cond: A.Expr, state: OctagonState) -> OctagonState:
        if isinstance(cond, A.BoolLit):
            return state if cond.value else self.bottom()
        if isinstance(cond, A.UnaryOp) and cond.op == "!":
            return self._assume(A.negate(cond.operand), state)
        if isinstance(cond, A.BinOp) and cond.op == "&&":
            return self._assume(cond.right, self._assume(cond.left, state))
        if isinstance(cond, A.BinOp) and cond.op == "||":
            return self.join(self._assume(cond.left, state),
                             self._assume(cond.right, state))
        if isinstance(cond, A.BinOp) and cond.op in A.COMPARISON_OPS:
            return self._assume_comparison(cond, state)
        return state

    def _assume_comparison(self, cond: A.BinOp, state: OctagonState) -> OctagonState:
        # Null / reference comparisons carry no octagonal information.
        if isinstance(cond.left, A.NullLit) or isinstance(cond.right, A.NullLit):
            return state
        left = self._linear_form(cond.left)
        right = self._linear_form(cond.right)
        if left is None or right is None:
            return state
        # Normalize to sum(coeffs) <= constant form(s).
        coeffs: Dict[str, int] = dict(left[0])
        for name, coeff in right[0].items():
            coeffs[name] = coeffs.get(name, 0) - coeff
        coeffs = {name: c for name, c in coeffs.items() if c != 0}
        constant = right[1] - left[1]
        op = cond.op
        if op == ">":
            coeffs = {n: -c for n, c in coeffs.items()}
            constant, op = -constant, "<"
        elif op == ">=":
            coeffs = {n: -c for n, c in coeffs.items()}
            constant, op = -constant, "<="
        if op == "<":
            constant -= 1
            op = "<="
        if op == "<=":
            return self._add_upper_bound(coeffs, constant, state)
        if op == "==":
            first = self._add_upper_bound(coeffs, constant, state)
            negated = {n: -c for n, c in coeffs.items()}
            return self._add_upper_bound(negated, -constant, first)
        if op == "!=":
            return state
        return state

    def _add_upper_bound(
        self, coeffs: Dict[str, int], constant: int, state: OctagonState
    ) -> OctagonState:
        """Add the constraint ``sum(coeff_i * x_i) <= constant`` if octagonal."""
        if state.is_bottom:
            return state
        if not coeffs:
            return state if 0 <= constant else self.bottom()
        if any(abs(c) != 1 for c in coeffs.values()) or len(coeffs) > 2:
            return state
        for name in coeffs:
            state = self._with_variable(state, name)
        assert state.matrix is not None
        matrix = state.matrix.copy()
        items = sorted(coeffs.items())
        bound = float(constant)
        touched = []
        for name in coeffs:
            k = state.index(name)
            touched.extend((2 * k, 2 * k + 1))
        if len(items) == 1:
            (name, coeff), = items
            k = state.index(name)
            if coeff == 1:
                matrix[2 * k, 2 * k + 1] = min(matrix[2 * k, 2 * k + 1], 2 * bound)
            else:
                matrix[2 * k + 1, 2 * k] = min(matrix[2 * k + 1, 2 * k], 2 * bound)
        else:
            (name_a, coeff_a), (name_b, coeff_b) = items
            i, j = state.index(name_a), state.index(name_b)
            if coeff_a == 1 and coeff_b == -1:
                matrix[2 * i, 2 * j] = min(matrix[2 * i, 2 * j], bound)
                matrix[2 * j + 1, 2 * i + 1] = min(matrix[2 * j + 1, 2 * i + 1], bound)
            elif coeff_a == -1 and coeff_b == 1:
                matrix[2 * j, 2 * i] = min(matrix[2 * j, 2 * i], bound)
                matrix[2 * i + 1, 2 * j + 1] = min(matrix[2 * i + 1, 2 * j + 1], bound)
            elif coeff_a == 1 and coeff_b == 1:
                matrix[2 * i, 2 * j + 1] = min(matrix[2 * i, 2 * j + 1], bound)
                matrix[2 * j, 2 * i + 1] = min(matrix[2 * j, 2 * i + 1], bound)
            else:
                matrix[2 * i + 1, 2 * j] = min(matrix[2 * i + 1, 2 * j], bound)
                matrix[2 * j + 1, 2 * i] = min(matrix[2 * j + 1, 2 * i], bound)
        # All tightened entries are incident to the constraint's variables.
        return self._closed_incremental(state.variables, matrix, touched,
                                        state.closed)

    # -- concretization -----------------------------------------------------------------------

    def models(self, concrete: ConcreteState, abstract: OctagonState) -> bool:
        if abstract.is_bottom:
            return False
        assert abstract.matrix is not None

        def value_of(index: int) -> Optional[float]:
            name = abstract.variables[index // 2]
            if name not in concrete.env:
                return None
            value = concrete.env[name]
            if isinstance(value, bool):
                value = 1 if value else 0
            if not isinstance(value, int):
                return None
            return float(value) if index % 2 == 0 else -float(value)

        size = abstract.matrix.shape[0]
        for i in range(size):
            vi = value_of(i)
            for j in range(size):
                bound = abstract.matrix[i, j]
                if bound == _INF:
                    continue
                vj = value_of(j)
                if vi is None or vj is None:
                    # The concretization only constrains numeric values:
                    # constraints mentioning a variable whose runtime value
                    # is null, an array, or a record hold vacuously (the
                    # transfer functions establish relational constraints
                    # only along paths where the values are numeric).
                    continue
                if vi - vj > bound + 1e-9:
                    return False
        return True

    # -- interprocedural hooks ------------------------------------------------------------------

    def call_entry(
        self,
        caller_state: OctagonState,
        callee_params: Sequence[str],
        args: Sequence[A.Expr],
    ) -> OctagonState:
        entry = self.top(callee_params)
        if caller_state.is_bottom:
            return self.bottom()
        assert entry.matrix is not None
        matrix = entry.matrix.copy()
        for param, arg in zip(callee_params, args):
            lo, hi = self._expr_bounds(arg, caller_state)
            k = entry.index(param)
            if hi is not None:
                matrix[2 * k, 2 * k + 1] = 2 * hi
            if lo is not None:
                matrix[2 * k + 1, 2 * k] = -2 * lo
        return self._closed(entry.variables, matrix)

    def call_return(
        self,
        caller_state: OctagonState,
        callee_exit: OctagonState,
        target: Optional[str],
        args: Sequence[A.Expr] = (),
    ) -> OctagonState:
        if caller_state.is_bottom or callee_exit.is_bottom:
            return self.bottom()
        if target is None:
            return caller_state
        out = self._forget(target, caller_state)
        assert out.matrix is not None
        lo, hi = callee_exit.variable_bounds(A.RETURN_VARIABLE)
        matrix = out.matrix.copy()
        k = out.index(target)
        if hi is not None:
            matrix[2 * k, 2 * k + 1] = min(matrix[2 * k, 2 * k + 1], 2.0 * hi)
        if lo is not None:
            matrix[2 * k + 1, 2 * k] = min(matrix[2 * k + 1, 2 * k], -2.0 * lo)
        return self._closed_incremental(out.variables, matrix,
                                        (2 * k, 2 * k + 1), out.closed)

    def variable_bounds(self, state: OctagonState, name: str) -> Tuple[Optional[int], Optional[int]]:
        """Interval bounds the octagon implies for ``name`` (client helper)."""
        return state.variable_bounds(name)
