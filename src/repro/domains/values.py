"""Value lattices: abstractions of individual integer values.

The non-relational environment domain (:mod:`repro.domains.nonrel`) is
parameterized by a *value lattice* — an abstraction of single machine
integers — so that the sign, constant-propagation and interval domains share
one environment/transfer implementation and differ only in how they abstract
numbers.  The interval lattice is the paper's canonical infinite-height
example; sign and constants are finite-height domains used for differential
testing (they need no widening to terminate, so they let tests separate
framework bugs from widening bugs).

Every lattice implements :class:`ValueLattice`: lattice operations, abstract
arithmetic, and *refinement* operations used to interpret ``assume``
statements (e.g. ``refine_le(v, bound)`` strengthens ``v`` under the
assumption ``v <= bound``).  Refinements may be conservative (returning their
input unchanged is always sound).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Optional, Tuple

from ..intern import InternTable


# ---------------------------------------------------------------------------
# Intervals
# ---------------------------------------------------------------------------


class Interval:
    """A (possibly unbounded, possibly empty) integer interval ``[lo, hi]``.

    ``lo is None`` means −∞ and ``hi is None`` means +∞.  The empty interval
    is the canonical bottom element and is represented with ``empty=True``.

    Intervals are interned: equal bounds yield the same object, so interval
    equality is identity and hashing is cached.
    """

    __slots__ = ("lo", "hi", "empty", "_hash", "_cbytes", "__weakref__")

    _intern = InternTable("values.Interval")

    lo: Optional[int]
    hi: Optional[int]
    empty: bool

    def __new__(cls, lo: Optional[int] = None, hi: Optional[int] = None,
                empty: bool = False) -> "Interval":
        key = (lo, hi, empty)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        object.__setattr__(self, "empty", empty)
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("Interval is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Interval, (self.lo, self.hi, self.empty))

    def __repr__(self) -> str:
        return "Interval(lo=%r, hi=%r, empty=%r)" % (self.lo, self.hi, self.empty)

    @staticmethod
    def make(lo: Optional[int], hi: Optional[int]) -> "Interval":
        if lo is not None and hi is not None and lo > hi:
            return Interval(empty=True)
        return Interval(lo, hi)

    @staticmethod
    def const(value: int) -> "Interval":
        return Interval(value, value)

    @staticmethod
    def top() -> "Interval":
        return Interval(None, None)

    @staticmethod
    def bottom() -> "Interval":
        return Interval(empty=True)

    def is_top(self) -> bool:
        return not self.empty and self.lo is None and self.hi is None

    def is_const(self) -> bool:
        return not self.empty and self.lo is not None and self.lo == self.hi

    def contains(self, value: int) -> bool:
        if self.empty:
            return False
        if self.lo is not None and value < self.lo:
            return False
        if self.hi is not None and value > self.hi:
            return False
        return True

    def __str__(self) -> str:
        if self.empty:
            return "⊥"
        lo = "-inf" if self.lo is None else str(self.lo)
        hi = "+inf" if self.hi is None else str(self.hi)
        return "[%s, %s]" % (lo, hi)


def _min_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return min(a, b)


def _max_bound(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None or b is None:
        return None
    return max(a, b)


class ValueLattice(ABC):
    """Interface shared by all value abstractions."""

    name: str = "value"

    @abstractmethod
    def top(self) -> Any: ...

    @abstractmethod
    def bottom(self) -> Any: ...

    @abstractmethod
    def from_const(self, value: int) -> Any: ...

    @abstractmethod
    def is_bottom(self, value: Any) -> bool: ...

    @abstractmethod
    def join(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def widen(self, older: Any, newer: Any) -> Any: ...

    @abstractmethod
    def meet(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def leq(self, left: Any, right: Any) -> bool: ...

    @abstractmethod
    def contains(self, value: Any, concrete: int) -> bool: ...

    def equal(self, left: Any, right: Any) -> bool:
        return self.leq(left, right) and self.leq(right, left)

    def is_top(self, value: Any) -> bool:
        return self.leq(self.top(), value)

    # -- arithmetic -------------------------------------------------------------

    @abstractmethod
    def add(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def sub(self, left: Any, right: Any) -> Any: ...

    @abstractmethod
    def mul(self, left: Any, right: Any) -> Any: ...

    def div(self, left: Any, right: Any) -> Any:
        return self.top()

    def mod(self, left: Any, right: Any) -> Any:
        return self.top()

    @abstractmethod
    def neg(self, value: Any) -> Any: ...

    # -- comparison refinement ----------------------------------------------------

    def refine_le(self, value: Any, bound: Any) -> Any:
        """Strengthen ``value`` under the assumption ``value <= bound``."""
        return value

    def refine_ge(self, value: Any, bound: Any) -> Any:
        return value

    def refine_lt(self, value: Any, bound: Any) -> Any:
        return self.refine_le(value, self.sub(bound, self.from_const(1)))

    def refine_gt(self, value: Any, bound: Any) -> Any:
        return self.refine_ge(value, self.add(bound, self.from_const(1)))

    def refine_eq(self, value: Any, other: Any) -> Any:
        return self.meet(value, other)

    def refine_ne(self, value: Any, other: Any) -> Any:
        return value

    # -- reflection ----------------------------------------------------------------

    def bounds(self, value: Any) -> Tuple[Optional[int], Optional[int]]:
        """Best-effort numeric bounds ``(lo, hi)`` of the concretization.

        ``None`` means unbounded in that direction.  Used by the array-safety
        client and by the environment domain's comparison refinements.
        """
        return (None, None)

    def compare(self, op: str, left: Any, right: Any) -> Optional[bool]:
        """Decide a comparison if the abstraction can, else ``None``."""
        return None


class IntervalLattice(ValueLattice):
    """The classical interval lattice — infinite height, requires widening."""

    name = "interval"

    def top(self) -> Interval:
        return Interval.top()

    def bottom(self) -> Interval:
        return Interval.bottom()

    def from_const(self, value: int) -> Interval:
        return Interval.const(value)

    def is_bottom(self, value: Interval) -> bool:
        return value.empty

    def join(self, left: Interval, right: Interval) -> Interval:
        if left.empty:
            return right
        if right.empty:
            return left
        return Interval(_min_bound(left.lo, right.lo), _max_bound(left.hi, right.hi))

    def widen(self, older: Interval, newer: Interval) -> Interval:
        if older.empty:
            return newer
        if newer.empty:
            return older
        lo = older.lo
        if older.lo is not None and (newer.lo is None or newer.lo < older.lo):
            lo = None
        hi = older.hi
        if older.hi is not None and (newer.hi is None or newer.hi > older.hi):
            hi = None
        return Interval(lo, hi)

    def meet(self, left: Interval, right: Interval) -> Interval:
        if left.empty or right.empty:
            return Interval.bottom()
        lo = left.lo if right.lo is None else (right.lo if left.lo is None else max(left.lo, right.lo))
        hi = left.hi if right.hi is None else (right.hi if left.hi is None else min(left.hi, right.hi))
        return Interval.make(lo, hi)

    def leq(self, left: Interval, right: Interval) -> bool:
        if left.empty:
            return True
        if right.empty:
            return False
        lo_ok = right.lo is None or (left.lo is not None and left.lo >= right.lo)
        hi_ok = right.hi is None or (left.hi is not None and left.hi <= right.hi)
        return lo_ok and hi_ok

    def contains(self, value: Interval, concrete: int) -> bool:
        return value.contains(concrete)

    # arithmetic ------------------------------------------------------------------

    def add(self, left: Interval, right: Interval) -> Interval:
        if left.empty or right.empty:
            return Interval.bottom()
        lo = None if left.lo is None or right.lo is None else left.lo + right.lo
        hi = None if left.hi is None or right.hi is None else left.hi + right.hi
        return Interval(lo, hi)

    def sub(self, left: Interval, right: Interval) -> Interval:
        return self.add(left, self.neg(right))

    def neg(self, value: Interval) -> Interval:
        if value.empty:
            return value
        lo = None if value.hi is None else -value.hi
        hi = None if value.lo is None else -value.lo
        return Interval(lo, hi)

    def mul(self, left: Interval, right: Interval) -> Interval:
        if left.empty or right.empty:
            return Interval.bottom()
        if left.is_const() and right.is_const():
            return Interval.const(left.lo * right.lo)  # type: ignore[operator]
        candidates = []
        unbounded = False
        for a in (left.lo, left.hi):
            for b in (right.lo, right.hi):
                if a is None or b is None:
                    unbounded = True
                else:
                    candidates.append(a * b)
        if unbounded or not candidates:
            # A finite-times-unbounded product could still be bounded on one
            # side, but the coarse answer is always sound.
            return Interval.top()
        return Interval(min(candidates), max(candidates))

    def div(self, left: Interval, right: Interval) -> Interval:
        if left.empty or right.empty:
            return Interval.bottom()
        if right.is_const() and right.lo not in (0, None) and not left.empty:
            divisor = right.lo
            points = []
            for bound in (left.lo, left.hi):
                if bound is None:
                    return Interval.top()
                points.append(int(abs(bound) // abs(divisor)) *
                              (1 if (bound >= 0) == (divisor > 0) else -1))
            return Interval(min(points), max(points))
        return Interval.top()

    def mod(self, left: Interval, right: Interval) -> Interval:
        if left.empty or right.empty:
            return Interval.bottom()
        if right.is_const() and right.lo not in (0, None):
            magnitude = abs(right.lo)
            if left.lo is not None and left.lo >= 0:
                return Interval(0, magnitude - 1)
            return Interval(-(magnitude - 1), magnitude - 1)
        return Interval.top()

    # refinement --------------------------------------------------------------------

    def refine_le(self, value: Interval, bound: Interval) -> Interval:
        if value.empty or bound.empty:
            return Interval.bottom()
        if bound.hi is None:
            return value
        return self.meet(value, Interval(None, bound.hi))

    def refine_ge(self, value: Interval, bound: Interval) -> Interval:
        if value.empty or bound.empty:
            return Interval.bottom()
        if bound.lo is None:
            return value
        return self.meet(value, Interval(bound.lo, None))

    def refine_ne(self, value: Interval, other: Interval) -> Interval:
        if value.empty:
            return value
        if other.is_const():
            constant = other.lo
            if value.lo == constant and value.hi == constant:
                return Interval.bottom()
            if value.lo == constant:
                return Interval.make(constant + 1, value.hi)  # type: ignore[operator]
            if value.hi == constant:
                return Interval.make(value.lo, constant - 1)  # type: ignore[operator]
        return value

    def bounds(self, value: Interval) -> Tuple[Optional[int], Optional[int]]:
        if value.empty:
            return (0, -1)
        return (value.lo, value.hi)

    def compare(self, op: str, left: Interval, right: Interval) -> Optional[bool]:
        if left.empty or right.empty:
            return None
        if op == "<" and left.hi is not None and right.lo is not None and left.hi < right.lo:
            return True
        if op == "<" and left.lo is not None and right.hi is not None and left.lo >= right.hi:
            return False
        if op == "<=" and left.hi is not None and right.lo is not None and left.hi <= right.lo:
            return True
        if op == "<=" and left.lo is not None and right.hi is not None and left.lo > right.hi:
            return False
        if op == "==" and left.is_const() and right.is_const():
            return left.lo == right.lo
        return None


# ---------------------------------------------------------------------------
# Signs
# ---------------------------------------------------------------------------

#: Sign lattice elements, encoded as frozensets of {-1, 0, 1} "directions".
_SIGN_ALL = frozenset({-1, 0, 1})


class SignLattice(ValueLattice):
    """The classic sign lattice: subsets of {negative, zero, positive}.

    Finite height (4), so analyses over it terminate without widening; its
    widening is simply the join.
    """

    name = "sign"

    def top(self) -> frozenset:
        return _SIGN_ALL

    def bottom(self) -> frozenset:
        return frozenset()

    def from_const(self, value: int) -> frozenset:
        if value < 0:
            return frozenset({-1})
        if value == 0:
            return frozenset({0})
        return frozenset({1})

    def is_bottom(self, value: frozenset) -> bool:
        return not value

    def join(self, left: frozenset, right: frozenset) -> frozenset:
        return left | right

    def widen(self, older: frozenset, newer: frozenset) -> frozenset:
        return older | newer

    def meet(self, left: frozenset, right: frozenset) -> frozenset:
        return left & right

    def leq(self, left: frozenset, right: frozenset) -> bool:
        return left <= right

    def contains(self, value: frozenset, concrete: int) -> bool:
        sign = -1 if concrete < 0 else (0 if concrete == 0 else 1)
        return sign in value

    def add(self, left: frozenset, right: frozenset) -> frozenset:
        if not left or not right:
            return frozenset()
        out = set()
        for a in left:
            for b in right:
                if a == 0:
                    out.add(b)
                elif b == 0:
                    out.add(a)
                elif a == b:
                    out.add(a)
                else:
                    out |= _SIGN_ALL
        return frozenset(out)

    def sub(self, left: frozenset, right: frozenset) -> frozenset:
        return self.add(left, self.neg(right))

    def neg(self, value: frozenset) -> frozenset:
        return frozenset({-s for s in value})

    def mul(self, left: frozenset, right: frozenset) -> frozenset:
        if not left or not right:
            return frozenset()
        out = set()
        for a in left:
            for b in right:
                out.add(a * b if a * b in (-1, 0, 1) else (1 if a * b > 0 else -1))
        return frozenset(out)

    def refine_ge(self, value: frozenset, bound: frozenset) -> frozenset:
        if bound and min(bound) >= 0 and 0 not in bound:
            return value & frozenset({1})
        if bound and min(bound) >= 0:
            return value & frozenset({0, 1})
        return value

    def refine_le(self, value: frozenset, bound: frozenset) -> frozenset:
        if bound and max(bound) <= 0 and 0 not in bound:
            return value & frozenset({-1})
        if bound and max(bound) <= 0:
            return value & frozenset({-1, 0})
        return value

    def bounds(self, value: frozenset) -> Tuple[Optional[int], Optional[int]]:
        if not value:
            return (0, -1)
        lo = None if -1 in value else 0
        hi = None if 1 in value else 0
        return (lo, hi)


# ---------------------------------------------------------------------------
# Constants
# ---------------------------------------------------------------------------


class Constant:
    """A flat constant lattice element: ⊥, a single known integer, or ⊤.

    Interned like :class:`Interval`: equality is identity, hashing cached.
    """

    __slots__ = ("kind", "value", "_hash", "_cbytes", "__weakref__")

    _intern = InternTable("values.Constant")

    kind: str  # "bottom" | "const" | "top"
    value: int

    def __new__(cls, kind: str, value: int = 0) -> "Constant":
        key = (kind, value)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("Constant is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        return (Constant, (self.kind, self.value))

    def __repr__(self) -> str:
        return "Constant(kind=%r, value=%r)" % (self.kind, self.value)

    @staticmethod
    def top() -> "Constant":
        return Constant("top")

    @staticmethod
    def bottom() -> "Constant":
        return Constant("bottom")

    @staticmethod
    def const(value: int) -> "Constant":
        return Constant("const", value)

    def __str__(self) -> str:
        if self.kind == "const":
            return str(self.value)
        return "⊤" if self.kind == "top" else "⊥"


class ConstantLattice(ValueLattice):
    """Constant propagation: the flat lattice over integers (height 2)."""

    name = "constant"

    def top(self) -> Constant:
        return Constant.top()

    def bottom(self) -> Constant:
        return Constant.bottom()

    def from_const(self, value: int) -> Constant:
        return Constant.const(value)

    def is_bottom(self, value: Constant) -> bool:
        return value.kind == "bottom"

    def join(self, left: Constant, right: Constant) -> Constant:
        if left.kind == "bottom":
            return right
        if right.kind == "bottom":
            return left
        if left == right:
            return left
        return Constant.top()

    def widen(self, older: Constant, newer: Constant) -> Constant:
        return self.join(older, newer)

    def meet(self, left: Constant, right: Constant) -> Constant:
        if left.kind == "top":
            return right
        if right.kind == "top":
            return left
        if left == right:
            return left
        return Constant.bottom()

    def leq(self, left: Constant, right: Constant) -> bool:
        if left.kind == "bottom" or right.kind == "top":
            return True
        return left == right

    def contains(self, value: Constant, concrete: int) -> bool:
        if value.kind == "top":
            return True
        return value.kind == "const" and value.value == concrete

    def _lift(self, op, left: Constant, right: Constant) -> Constant:
        if left.kind == "bottom" or right.kind == "bottom":
            return Constant.bottom()
        if left.kind == "const" and right.kind == "const":
            try:
                return Constant.const(op(left.value, right.value))
            except ZeroDivisionError:
                return Constant.top()
        return Constant.top()

    def add(self, left: Constant, right: Constant) -> Constant:
        return self._lift(lambda a, b: a + b, left, right)

    def sub(self, left: Constant, right: Constant) -> Constant:
        return self._lift(lambda a, b: a - b, left, right)

    def mul(self, left: Constant, right: Constant) -> Constant:
        return self._lift(lambda a, b: a * b, left, right)

    def div(self, left: Constant, right: Constant) -> Constant:
        def integer_div(a: int, b: int) -> int:
            quotient = abs(a) // abs(b)
            return quotient if (a >= 0) == (b >= 0) else -quotient
        return self._lift(integer_div, left, right)

    def neg(self, value: Constant) -> Constant:
        if value.kind == "const":
            return Constant.const(-value.value)
        return value

    def refine_eq(self, value: Constant, other: Constant) -> Constant:
        return self.meet(value, other)

    def refine_ne(self, value: Constant, other: Constant) -> Constant:
        if value.kind == "const" and other.kind == "const" and value == other:
            return Constant.bottom()
        return value

    def bounds(self, value: Constant) -> Tuple[Optional[int], Optional[int]]:
        if value.kind == "const":
            return (value.value, value.value)
        if value.kind == "bottom":
            return (0, -1)
        return (None, None)

    def compare(self, op: str, left: Constant, right: Constant) -> Optional[bool]:
        if left.kind == "const" and right.kind == "const":
            a, b = left.value, right.value
            return {"<": a < b, "<=": a <= b, ">": a > b, ">=": a >= b,
                    "==": a == b, "!=": a != b}[op]
        return None
