"""The generic abstract interpreter interface of Section 3.

An abstract interpreter, in the paper's terms, is the 6-tuple
``⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩``:

* an abstract domain ``Σ♯`` forming a semi-lattice under ``⊑`` with join
  ``⊔`` and a bottom element,
* an initial abstract state ``φ0``,
* an abstract statement semantics ``⟦·⟧♯``,
* a widening operator ``∇`` that is an upper bound operator and enforces
  convergence of increasing chains.

:class:`AbstractDomain` encodes exactly this interface; every concrete
domain in :mod:`repro.domains` (sign, constant, interval, octagon, shape)
implements it, and both the classical batch interpreter (:mod:`repro.ai`)
and the DAIG engine (:mod:`repro.daig`) are parameterized over it.  The
framework never looks inside abstract states — they are opaque values moved
between reference cells — which is what makes the approach domain-agnostic.

Two optional extensions are used by parts of the reproduction:

* ``models`` exposes the concretization relation ``σ ⊨ φ`` so that the
  property-based soundness tests can check Definition 3.1 / Proposition 3.2,
* ``call_entry`` / ``call_return`` let the interprocedural engine map caller
  states into callee entry states and back (Section 7.1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generic, Iterable, Optional, Sequence, Tuple, TypeVar

from ..lang import ast as A
from ..concrete.state import ConcreteState

StateT = TypeVar("StateT")


class AbstractDomain(ABC, Generic[StateT]):
    """The ⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩ interface.

    Abstract states must be immutable values with structural equality: the
    DAIG memoizes on them and the convergence check of demanded unrolling
    compares consecutive loop-head iterates for equality.
    """

    #: A short human-readable name, used in benchmark output.
    name: str = "abstract"

    # -- lattice ---------------------------------------------------------------

    @abstractmethod
    def bottom(self) -> StateT:
        """The least element ⊥ (represents unreachability)."""

    @abstractmethod
    def initial(self, params: Sequence[str] = ()) -> StateT:
        """The initial abstract state φ0 for a procedure with ``params``."""

    @abstractmethod
    def join(self, left: StateT, right: StateT) -> StateT:
        """The least upper bound ⊔."""

    @abstractmethod
    def widen(self, older: StateT, newer: StateT) -> StateT:
        """The widening ∇: an upper bound of both arguments that enforces
        convergence of increasing chains."""

    @abstractmethod
    def leq(self, left: StateT, right: StateT) -> bool:
        """The partial order ⊑."""

    def equal(self, left: StateT, right: StateT) -> bool:
        """Abstract state equality; by default mutual ⊑."""
        return self.leq(left, right) and self.leq(right, left)

    def is_bottom(self, state: StateT) -> bool:
        """Whether ``state`` is (semantically) ⊥."""
        return self.equal(state, self.bottom())

    # -- semantics --------------------------------------------------------------

    @abstractmethod
    def transfer(self, stmt: A.AtomicStmt, state: StateT) -> StateT:
        """The abstract transfer function ⟦stmt⟧♯ applied to ``state``."""

    # -- concretization (optional, used by soundness tests) ---------------------

    def models(self, concrete: ConcreteState, abstract: StateT) -> bool:
        """Whether ``concrete ⊨ abstract`` (σ ∈ γ(φ)).

        Domains that do not implement a concretization may leave the default,
        which treats every state as a model (making soundness tests vacuous
        for that domain rather than wrong).
        """
        return True

    # -- interprocedural hooks (optional) ----------------------------------------

    def call_entry(
        self,
        caller_state: StateT,
        callee_params: Sequence[str],
        args: Sequence[A.Expr],
    ) -> StateT:
        """Abstract state at the callee's entry for a call with ``args``.

        The default is the coarsest sound choice: the callee's φ0 with no
        information about the arguments.
        """
        return self.initial(callee_params)

    def call_return(
        self,
        caller_state: StateT,
        callee_exit: StateT,
        target: Optional[str],
        args: Sequence[A.Expr] = (),
    ) -> StateT:
        """Caller abstract state after the call returns.

        The default havocs the call target (by re-running ``initial`` we
        would lose the caller's locals, so instead subclasses are strongly
        encouraged to override; the default simply returns the caller state
        with no binding for the target, which is sound only for domains that
        treat unbound variables as unconstrained).
        """
        return caller_state

    # -- misc --------------------------------------------------------------------

    def describe(self, state: StateT) -> str:
        """A short human-readable rendering of an abstract state."""
        return str(state)


class DomainError(Exception):
    """Raised when a domain is asked to do something it cannot express."""


def chain_is_increasing(domain: AbstractDomain, chain: Iterable[Any]) -> bool:
    """Check that ``chain`` is increasing under the domain's ⊑ (test helper)."""
    previous = None
    for element in chain:
        if previous is not None and not domain.leq(previous, element):
            return False
        previous = element
    return True


def widen_sequence(domain: AbstractDomain, chain: Sequence[Any], limit: int = 1000) -> Any:
    """Fold a chain with ∇ as in the definition of widening convergence.

    Returns the limit of ``w0 = x0, w_{i+1} = w_i ∇ x_{i+1}``; raises
    :class:`DomainError` if it fails to converge within ``limit`` steps.
    Used by property tests to check that widening enforces convergence.
    """
    if not chain:
        raise DomainError("cannot widen an empty chain")
    accumulator = chain[0]
    for index, element in enumerate(chain[1:]):
        if index > limit:
            raise DomainError("widening failed to converge")
        nxt = domain.widen(accumulator, element)
        if domain.equal(nxt, accumulator):
            return accumulator
        accumulator = nxt
    return accumulator
