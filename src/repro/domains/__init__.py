"""Abstract domains implementing the ⟨Σ♯, φ0, ⟦·⟧♯, ⊑, ⊔, ∇⟩ interface.

The framework (batch interpreter and DAIG engine alike) is parameterized by
an :class:`~repro.domains.base.AbstractDomain`.  The domains shipped here
mirror the paper's instantiations — interval, octagon, and separation-logic
shape analysis — plus two finite-height domains (sign, constants) used for
differential testing.
"""

from .base import AbstractDomain, DomainError, chain_is_increasing, widen_sequence
from .constant import ConstantDomain
from .interval import IntervalDomain
from .nonrel import ArraySummary, EnvState, ScalarValue, ValueEnvDomain
from .octagon import OctagonDomain, OctagonState
from .shape import ShapeDomain, ShapeState
from .sign import SignDomain
from .values import Constant, ConstantLattice, Interval, IntervalLattice, SignLattice

__all__ = [
    "AbstractDomain",
    "DomainError",
    "chain_is_increasing",
    "widen_sequence",
    "ConstantDomain",
    "IntervalDomain",
    "ArraySummary",
    "EnvState",
    "ScalarValue",
    "ValueEnvDomain",
    "OctagonDomain",
    "OctagonState",
    "ShapeDomain",
    "ShapeState",
    "SignDomain",
    "Constant",
    "ConstantLattice",
    "Interval",
    "IntervalLattice",
    "SignLattice",
]


def available_domains() -> dict:
    """Instantiate one of each shipped domain, keyed by name."""
    return {
        "sign": SignDomain(),
        "constant": ConstantDomain(),
        "interval": IntervalDomain(),
        "octagon": OctagonDomain(),
        "shape": ShapeDomain(),
    }
