"""The self-contained summary job a pool worker executes.

A job is one ``(procedure, context, entry state)`` DAIG evaluation.  The
payload ships everything the worker needs — the procedure's CFG (a
listener-free copy), the entry state, the context policy and domain *by
name* (both sides resolve them from the registry, so no code is pickled),
and the exit summaries of the callees computed by earlier waves.

The worker's call transfer mirrors the sequential engine's global-entry
semantics: every call returns through the shipped callee summary
unconditionally (the sequential engine likewise consults the callee's
single entry-target summary, not a per-call-state one), while the entry
state each site *would* contribute is recorded on the side.  The
coordinator certifies those recorded contributions against the entries the
summaries were actually computed at; a worker never decides correctness,
it only reports enough evidence to check it.

Interned abstract states cross the process boundary through their
``__reduce__`` hooks, so every state in the result re-interns on receipt
and pointer-equality keeps holding in the coordinator process.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

SummaryKey = Tuple[str, Any]  # (procedure, context)
SiteKey = Tuple[int, int, int]  # (src, dst, index) of the call cell

#: Module-level domain registry cache: resolved once per worker process.
_DOMAINS: Optional[Dict[str, Any]] = None

#: Per-process memo tables, one per domain, shared by every job the worker
#: runs: memoization is location-independent (Section 2.2), so results
#: carry across jobs and analysis sessions exactly as the coordinator's
#: shared table carries across procedures — this is where a *persistent*
#: pool pays beyond amortized startup.  Bounded, because a long-lived
#: worker otherwise accumulates entries no future job will produce.
_MEMOS: Dict[str, Any] = {}
_MEMO_CAPACITY = 1 << 16

#: Per-process persistent-store handles, keyed by (kind, location) spec:
#: a worker reopens the coordinator's store once and keeps the connection
#: across jobs (sqlite/blob backends are multi-process safe).
_STORES: Dict[Tuple[str, str], Any] = {}


def _domain(spec: str) -> Any:
    global _DOMAINS
    if _DOMAINS is None:
        from ..domains import available_domains
        _DOMAINS = available_domains()
    return _DOMAINS[spec]


def _memo(spec: str) -> Any:
    memo = _MEMOS.get(spec)
    if memo is None:
        from ..daig.memo import MemoTable
        # thread_safe: under a thread-kind pool, consecutive jobs run on
        # different executor threads of one process but share this table.
        memo = _MEMOS[spec] = MemoTable(capacity=_MEMO_CAPACITY,
                                        thread_safe=True)
    return memo


def _store(spec: Optional[Tuple[str, str]]) -> Any:
    if spec is None:
        return None
    handle = _STORES.get(spec)
    if handle is None:
        try:
            from ..store import store_from_spec
            handle = _STORES[spec] = store_from_spec(*spec)
        except Exception:
            _STORES[spec] = None  # cache the failure: the store is optional
            return None
    return handle


@dataclass
class JobPayload:
    """Everything one summary evaluation needs, picklable."""

    procedure: str
    cfg: Any  # a listener-free Cfg copy
    context: Any
    entry: Any
    policy_name: str
    domain_spec: str
    #: Parameter lists of every known procedure (for ``call_entry``).
    callee_params: Dict[str, Tuple[str, ...]]
    #: Exit summaries from earlier waves: (callee, context) -> (entry, exit).
    summaries: Dict[SummaryKey, Tuple[Any, Any]]
    #: Intra-DAIG worker threads (None/<=1 keeps the evaluator sequential).
    parallel_cells: Optional[int] = None
    #: The coordinator's persistent summary store, as a reopenable
    #: ``(kind, location)`` spec (None when no store is attached or the
    #: store has no cross-process identity).
    store_spec: Optional[Tuple[str, str]] = None
    #: Deep code digests of every known procedure, so a worker can compute
    #: the same content-addressed store keys the engines do.
    deep_digests: Dict[str, str] = field(default_factory=dict)


@dataclass
class JobResult:
    """What a worker reports back; all states re-intern on unpickle."""

    key: SummaryKey
    exit_state: Any = None
    #: Per-callee-key entry contributions, by call-site cell.
    contribs: Dict[SummaryKey, Dict[SiteKey, Any]] = field(default_factory=dict)
    #: Callee keys some site of which re-grew its contribution after the
    #: first recording — the sequential engine may delay-widen there, so
    #: the coordinator must not certify those callees' speculated entries.
    regrew: FrozenSet[SummaryKey] = frozenset()
    #: Shipped summaries actually consumed.
    used: FrozenSet[SummaryKey] = frozenset()
    #: A needed callee summary was not shipped (evaluation fell back to
    #: havoc semantics); the result is unusable for seeding.
    incomplete: bool = False
    #: Callee summaries served from the persistent store instead of a
    #: shipped wave result.  Store-served exits are sound for the entry
    #: they were fetched at, but their consistency with this dispatch's
    #: speculated entries is unverified, so the coordinator treats the
    #: result like an incomplete one (not seedable) — the win is that the
    #: evaluation proceeds with real summaries instead of havoc.
    used_store: FrozenSet[SummaryKey] = frozenset()
    #: The coordinator answered this key entirely from the persistent
    #: store: no worker ran, the exit is the stored summary at the
    #: speculated entry, and certification accepts it unconditionally
    #: (entry-keyed seeds at underived entries are dead weight, never
    #: soundness hazards).
    from_store: bool = False
    #: The coordinator answered this key from the engine's own summary
    #: memo — the summary for exactly this (code digest, context, entry)
    #: survived earlier edits (e.g. re-keyed by an early-cutoff certified
    #: edit), so no worker ran.  Certified like a ``from_store`` result:
    #: entry-keyed, needs no caller/consumer evidence.
    from_memo: bool = False
    duration: float = 0.0
    #: CPU seconds of the job, immune to worker-process time-slicing: on a
    #: host with fewer cores than workers, wall ``duration`` includes time
    #: the worker spent descheduled while its siblings ran, so schedule
    #: models pack ``cpu_seconds`` instead.  (Meaningful for process and
    #: serial pools; thread pools share one process clock.)
    cpu_seconds: float = 0.0
    stats: Dict[str, int] = field(default_factory=dict)
    error: Optional[str] = None


def run_summary_job(payload: JobPayload) -> JobResult:
    """Evaluate one (procedure, context, entry) exit summary."""
    from ..daig.engine import DaigEngine
    from ..intern import intern_stats
    from ..interproc.context import policy_by_name
    from ..lang import ast as A

    started = time.perf_counter()
    cpu_started = time.process_time()
    result = JobResult(key=(payload.procedure, payload.context))
    try:
        domain = _domain(payload.domain_spec)
        policy = policy_by_name(payload.policy_name)
        contribs: Dict[SummaryKey, Dict[SiteKey, Any]] = {}
        regrew: Set[SummaryKey] = set()
        used: Set[SummaryKey] = set()
        used_store: Set[SummaryKey] = set()
        state_flags = {"incomplete": False}
        store = _store(payload.store_spec)

        def store_exit(callee_key: SummaryKey, entry: Any) -> Optional[Any]:
            """A stored summary for ``callee_key`` at this site's entry,
            or None.  Best effort: the store keys summaries by the
            callee's *joined* entry target, so a hit needs this site to be
            the callee's only (or dominant) caller — exactly the wide
            fan-out shape wave scheduling dispatches."""
            if store is None:
                return None
            digest = payload.deep_digests.get(callee_key[0])
            if digest is None:
                return None
            from ..store import (StoreDecodeError, decode_summary,
                                 summary_store_key)
            blob = store.get(summary_store_key(
                payload.domain_spec, callee_key[0], callee_key[1],
                digest, entry))
            if blob is None:
                return None
            try:
                return decode_summary(blob)
            except StoreDecodeError:
                return None

        def call_transfer(stmt: A.CallStmt, state: Any,
                          site: Optional[Any] = None) -> Any:
            callee = stmt.function
            if callee not in payload.callee_params:
                # External callee: the domain's own havoc semantics, exactly
                # as in the sequential engine.
                return domain.transfer(stmt, state)
            context = policy.callee_context(
                payload.context, (payload.procedure, stmt))
            callee_key: SummaryKey = (callee, context)
            entry = domain.call_entry(
                state, payload.callee_params[callee], stmt.args)
            skey: SiteKey = ((site.loc, site.aux, site.index)
                             if site is not None else (-1, -1, -1))
            sites = contribs.setdefault(callee_key, {})
            previous = sites.get(skey)
            if previous is None:
                sites[skey] = entry
            else:
                joined = domain.join(previous, entry)
                if joined is not previous and not domain.equal(joined, previous):
                    # The site re-fed a strictly larger entry (loop
                    # feedback); the sequential engine may widen here.
                    sites[skey] = joined
                    regrew.add(callee_key)
            shipped = payload.summaries.get(callee_key)
            if shipped is None:
                # No summary for this callee was computed by earlier waves
                # (unspeculated, recursive, or knocked out): consult the
                # persistent store before giving up — a prior run may have
                # the summary at exactly this entry.  Otherwise the havoc
                # fallback keeps the evaluation running for timing
                # purposes, but the result must not be seeded.
                stored = store_exit(callee_key, entry)
                if stored is not None:
                    used_store.add(callee_key)
                    return domain.call_return(
                        state, stored, stmt.target, stmt.args)
                state_flags["incomplete"] = True
                return domain.transfer(stmt, state)
            used.add(callee_key)
            _entry, exit_state = shipped
            return domain.call_return(state, exit_state, stmt.target, stmt.args)

        call_transfer.accepts_site = True  # type: ignore[attr-defined]

        intern_before = intern_stats()
        engine = DaigEngine(
            payload.cfg,
            domain,
            memo=_memo(payload.domain_spec),
            entry_state=payload.entry,
            call_transfer=call_transfer,
            parallel_cells=payload.parallel_cells,
        )
        try:
            result.exit_state = engine.query_exit()
        finally:
            close = getattr(engine.evaluator, "close", None)
            if close is not None:
                close()
        result.contribs = contribs
        result.regrew = frozenset(regrew)
        result.used = frozenset(used)
        result.used_store = frozenset(used_store)
        result.incomplete = state_flags["incomplete"]
        stats: Dict[str, int] = dict(engine.stats.as_dict())
        intern_after = intern_stats()
        stats["intern_hits"] = sum(
            after["hits"] - intern_before[name]["hits"]
            for name, after in intern_after.items() if name in intern_before)
        stats["intern_misses"] = sum(
            after["misses"] - intern_before[name]["misses"]
            for name, after in intern_after.items() if name in intern_before)
        result.stats = stats
    except Exception:
        result.error = traceback.format_exc(limit=8)
    result.duration = time.perf_counter() - started
    result.cpu_seconds = time.process_time() - cpu_started
    return result
