"""Speculate / dispatch / certify: the parallel summary coordinator.

The sequential interprocedural engine derives each callee's entry state
*during* evaluation (the join of its call sites' contributions), which
serializes summary computation along the demand path.  The coordinator
breaks that serialization in three phases:

1. **Speculate** — walk the call graph callers-first, batch-analyzing each
   procedure with havoc at calls to *predict* the entry state every
   reachable ``(procedure, context)`` key will end up with.  Prediction is
   cheap (one classical pass per procedure with call sites) and usually
   exact — havoc only matters when a call's return value feeds a later
   call's arguments.

2. **Dispatch** — cut the SCC condensation into antichain waves
   (:meth:`~repro.interproc.callgraph.CallGraph.condensation_waves`) and
   ship each wave's speculated keys to the worker pool, leaves first, so
   every job receives the exit summaries of the callees computed by
   earlier waves.  Workers evaluate full DAIGs; jobs in one wave share no
   call path, so they run concurrently without coordination.  When the
   engine has a persistent :class:`~repro.store.SummaryStore`, each key is
   first probed there at its speculated entry — a hit short-circuits the
   worker entirely (the stored exit becomes a ``from_store`` result,
   certified unconditionally because entry-keyed seeds at underived
   entries are inert) — and workers receive the store's ``(kind,
   location)`` spec plus the deep code digests so they can consult prior
   runs' summaries where a wave summary was not shipped.

3. **Certify** — a knock-out fixpoint over the workers' evidence: a key's
   result is certified only if its job completed, every summary it
   consumed is certified, every speculated caller is certified, no site
   re-grew its contribution (the sequential engine may delay-widen there),
   its entry was not joined from *unequal* contributions of several
   sources (sequential demand order decides which intermediate exits such
   a callee's consumers capture), and the join of the certified callers'
   *reported* contributions equals the dispatched entry exactly.  Certified results are installed into the
   live engine — engines pre-built, contributions replayed, exit summaries
   seeded into the shared memo table under the same ``(procedure, context,
   version, entry)`` keys sequential evaluation derives — so subsequent
   demand hits them without ever evaluating the callee DAIGs in-process.
   Everything else is discarded: the sequential engine recomputes it on
   demand, which is why parallelism can change only latency, never
   results (``summary_digest`` equality is asserted in CI).

Recursive SCCs and everything reachable only through them are never
speculated: their summaries are entry-dependent fixpoints whose
convergence the sequential engine owns.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Set, Tuple

from ..ai.interpreter import analyze_cfg
from ..interproc.engine import InterproceduralEngine
from .pool import PersistentWorkerPool
from .worker import JobPayload, JobResult, run_summary_job

SummaryKey = Tuple[str, Any]


class ParallelCoordinator:
    """Warms one :class:`InterproceduralEngine` through a worker pool."""

    def __init__(
        self,
        engine: InterproceduralEngine,
        pool: PersistentWorkerPool,
        parallel_cells: Optional[int] = None,
    ) -> None:
        self.engine = engine
        self.pool = pool
        self.parallel_cells = parallel_cells
        self.report: Dict[str, Any] = {}

    # -- phase 1: speculation ----------------------------------------------------

    def _speculate(self) -> Dict[str, Any]:
        engine = self.engine
        cg = engine.callgraph
        domain = engine.domain
        policy = engine.policy
        cfgs = engine.cfgs
        components = cg.sccs()
        recursive: Set[str] = set()
        for component in components:
            for member in component:
                if len(component) > 1 or member in cg.edges.get(member, set()):
                    recursive.add(member)
        # Everything reachable *through* a recursive procedure receives
        # contributions the speculation cannot predict (they depend on a
        # summary fixpoint); exclude the whole downstream cone.
        excluded = set(recursive)
        frontier = list(recursive)
        while frontier:
            current = frontier.pop()
            for callee in cg.edges.get(current, set()):
                if callee not in excluded:
                    excluded.add(callee)
                    frontier.append(callee)
        callers_first: List[str] = [member
                                    for component in reversed(components)
                                    for member in sorted(component)]

        spec_entries: Dict[SummaryKey, Any] = {}
        spec_contribs: Dict[SummaryKey, Any] = {}
        spec_callers: Dict[SummaryKey, Set[SummaryKey]] = {}
        by_proc: Dict[str, Set[Any]] = {}
        roots: Dict[SummaryKey, Any] = dict(engine._root_entries)
        for (name, context), state in roots.items():
            by_proc.setdefault(name, set()).add(context)

        for proc in callers_first:
            if proc in excluded:
                continue
            for context in sorted(by_proc.get(proc, ()), key=repr):
                key: SummaryKey = (proc, context)
                entry = roots.get(key)
                contributed = spec_contribs.get(key)
                if contributed is not None:
                    entry = (contributed if entry is None
                             else domain.join(entry, contributed))
                if entry is None:
                    continue  # unreachable under this policy
                spec_entries[key] = entry
                sites = cg.call_sites.get(proc, ())
                if not sites:
                    continue
                # One classical batch pass predicts every call site's state;
                # ``domain.transfer`` on a call IS havoc, matching what the
                # sequential engine does for unknown callees.
                values = analyze_cfg(cfgs[proc], domain, entry)
                for src, stmt in sites:
                    callee = stmt.function
                    if callee not in cfgs:
                        continue
                    state = values.get(src)
                    if state is None or domain.is_bottom(state):
                        continue  # the call never executes under ``entry``
                    cctx = policy.callee_context(context, (proc, stmt))
                    if callee in excluded:
                        continue
                    callee_key: SummaryKey = (callee, cctx)
                    contribution = domain.call_entry(
                        state, cfgs[callee].params, stmt.args)
                    previous = spec_contribs.get(callee_key)
                    spec_contribs[callee_key] = (
                        contribution if previous is None
                        else domain.join(previous, contribution))
                    spec_callers.setdefault(callee_key, set()).add(key)
                    by_proc.setdefault(callee, set()).add(cctx)

        return {
            "entries": spec_entries,
            "callers": spec_callers,
            "roots": roots,
            "recursive": recursive,
            "excluded": excluded,
            "callers_first": callers_first,
        }

    # -- phase 2: wave dispatch --------------------------------------------------

    def _dispatch(self, spec: Dict[str, Any]) -> Tuple[
            Dict[SummaryKey, JobResult], List[List[SummaryKey]]]:
        engine = self.engine
        cg = engine.callgraph
        spec_entries: Dict[SummaryKey, Any] = spec["entries"]
        excluded: Set[str] = spec["excluded"]
        callee_params = {name: tuple(cfg.params)
                         for name, cfg in engine.cfgs.items()}
        results: Dict[SummaryKey, JobResult] = {}
        wave_jobs: List[List[SummaryKey]] = []
        keys_by_proc: Dict[str, List[SummaryKey]] = {}
        for key in spec_entries:
            keys_by_proc.setdefault(key[0], []).append(key)
        store = engine.store
        store_spec = None if store is None else store.spec()
        deep_digests = ({} if store_spec is None else
                        {name: engine.deep_digest(name)
                         for name in engine.cfgs})

        for wave in cg.condensation_waves():
            candidates: List[SummaryKey] = []
            for component in wave:
                if any(member in excluded for member in component):
                    continue
                for member in sorted(component):
                    candidates.extend(sorted(keys_by_proc.get(member, ()),
                                             key=lambda k: repr(k[1])))
            job_keys: List[SummaryKey] = []
            for key in candidates:
                # Early-cutoff short circuit: the engine's own memo already
                # holds the summary for exactly this (code, context, entry)
                # — e.g. re-keyed by a certified value-preserving edit — so
                # the job is avoided outright, before even the store probe.
                memo_args = (key[0], key[1], engine.deep_digest(key[0]),
                             spec_entries[key])
                found, cached = engine._summary_memo.peek(
                    "summary", memo_args)
                if found:
                    results[key] = JobResult(key=key, exit_state=cached,
                                             from_memo=True)
                    continue
                # Persistent-store short circuit: a prior run's summary at
                # exactly the speculated entry means no worker needs to run
                # for this key — the stored exit is certified like any
                # entry-keyed seed.
                if store is not None:
                    stored = engine.store_probe(key[0], key[1],
                                                spec_entries[key])
                    if stored is not None:
                        results[key] = JobResult(key=key, exit_state=stored,
                                                 from_store=True)
                        continue
                job_keys.append(key)
            if not job_keys:
                continue
            wave_jobs.append(job_keys)
            futures = []
            for key in job_keys:
                name, context = key
                callees = {ckey for site in cg.call_sites.get(name, ())
                           if site[1].function in engine.cfgs
                           for ckey in ((site[1].function,
                                         engine.policy.callee_context(
                                             context, (name, site[1]))),)}
                # Store-served exits are deliberately *not* shipped as wave
                # summaries: a consumer capturing one could not be
                # re-derived from worker contributions at certification
                # time.  Its workers fall back to their own store probe.
                summaries = {ckey: (spec_entries[ckey],
                                    results[ckey].exit_state)
                             for ckey in callees
                             if ckey in results
                             and results[ckey].error is None
                             and results[ckey].exit_state is not None
                             and not results[ckey].from_store
                             and not results[ckey].from_memo}
                payload = JobPayload(
                    procedure=name,
                    cfg=engine.cfgs[name].copy(),
                    context=context,
                    entry=spec_entries[key],
                    policy_name=engine.policy.name,
                    domain_spec=engine.domain.name,
                    callee_params=callee_params,
                    summaries=summaries,
                    parallel_cells=self.parallel_cells,
                    store_spec=store_spec,
                    deep_digests=deep_digests,
                )
                futures.append((key, self.pool.submit(run_summary_job, payload)))
            # Wave barrier: later waves consume these exits.
            for key, future in futures:
                try:
                    results[key] = future.result()
                except Exception as exc:  # a worker died mid-job
                    results[key] = JobResult(key=key, error=repr(exc))
        return results, wave_jobs

    # -- phase 3: certification + installation -----------------------------------

    def _certify(self, spec: Dict[str, Any],
                 results: Dict[SummaryKey, JobResult]) -> Set[SummaryKey]:
        engine = self.engine
        domain = engine.domain
        spec_entries: Dict[SummaryKey, Any] = spec["entries"]
        spec_callers: Dict[SummaryKey, Set[SummaryKey]] = spec["callers"]
        roots: Dict[SummaryKey, Any] = spec["roots"]

        regrew_union: Set[SummaryKey] = set()
        for result in results.values():
            regrew_union.update(result.regrew)

        certified: Set[SummaryKey] = {
            key for key, result in results.items()
            if result.from_store or result.from_memo
            or (result.error is None and not result.incomplete
                and not result.used_store
                and result.exit_state is not None
                and key not in regrew_union)}

        def joined_contribution(caller: SummaryKey,
                                key: SummaryKey) -> Optional[Any]:
            sites = results[caller].contribs.get(key)
            if not sites:
                return None
            values = [sites[skey] for skey in sorted(sites)]
            joined = values[0]
            for value in values[1:]:
                joined = domain.join(joined, value)
            return joined

        while True:
            surviving: Set[SummaryKey] = set()
            for key in certified:
                result = results[key]
                if result.from_store or result.from_memo:
                    # A stored or memo-served summary is keyed by its
                    # entry: it is consumed only if demanded evaluation
                    # derives exactly that entry, so it needs no
                    # caller/consumer evidence.  (seed_summary re-checks
                    # the live target on install.)
                    surviving.add(key)
                    continue
                if not result.used <= certified:
                    continue  # consumed an uncertified summary
                callers = spec_callers.get(key, set())
                if not callers <= certified:
                    continue  # some caller's contribution is unverified
                parts: List[Any] = []
                site_values: List[Any] = []
                root = roots.get(key)
                if root is not None:
                    parts.append(root)
                    site_values.append(root)
                for caller in sorted(callers, key=repr):
                    sites = results[caller].contribs.get(key)
                    if sites:
                        site_values.extend(sites[skey]
                                           for skey in sorted(sites))
                    contribution = joined_contribution(caller, key)
                    if contribution is not None:
                        parts.append(contribution)
                if not parts:
                    continue
                # Demand-order sensitivity: when the entry joins *unequal*
                # evidence from several sources, the sequential engine's
                # demand order decides which intermediate exit each caller
                # captures into its memo (summary-exit changes without an
                # entry change do not cascade to callers), and a wave
                # evaluation at the final joined entry cannot reproduce
                # that.  Knock the key out; the ``used``/caller conditions
                # above propagate the knock-out to every consumer.
                if len(site_values) > 1 and any(
                        value is not site_values[0]
                        and not domain.equal(value, site_values[0])
                        for value in site_values[1:]):
                    continue
                entry = parts[0]
                for part in parts[1:]:
                    entry = domain.join(entry, part)
                dispatched = spec_entries[key]
                if entry is not dispatched and not domain.equal(
                        entry, dispatched):
                    continue  # speculation missed the real entry
                live_target = engine._entry_target.get(key)
                if (live_target is not None and live_target is not dispatched
                        and not domain.equal(live_target, dispatched)):
                    continue  # the live engine already derived a different entry
                surviving.add(key)
            if surviving == certified:
                break
            certified = surviving

        # Install: pre-build certified engines (structure only) so call
        # sites index for later edits, replay worker-derived contributions
        # (a seeded caller is never evaluated in-process, so its callees
        # would otherwise miss its entry contributions), then seed exits.
        proc_rank = {proc: rank
                     for rank, proc in enumerate(spec["callers_first"])}

        def order(key: SummaryKey) -> Tuple[int, str]:
            return (proc_rank.get(key[0], len(proc_rank)), repr(key[1]))

        installed = sorted(certified, key=order)
        for key in installed:
            engine.ensure_engine(key[0], key[1], spec_entries[key])
        for key in installed:
            for callee_key, sites in sorted(results[key].contribs.items(),
                                            key=lambda item: repr(item[0])):
                if callee_key[0] not in engine.cfgs:
                    continue
                for skey in sorted(sites):
                    engine.record_call_contribution(
                        key, skey, callee_key[0], callee_key[1], sites[skey])
        for key in installed:
            target = engine._entry_target.get(key)
            if target is None:
                continue
            engine.seed_summary(key[0], key[1], target,
                                results[key].exit_state)
        return certified

    # -- driver -------------------------------------------------------------------

    def run(self) -> Dict[str, Any]:
        """Warm the engine; returns a report of what each phase did."""
        engine = self.engine

        started = time.perf_counter()
        spec = self._speculate()
        speculate_seconds = time.perf_counter() - started
        engine.parallel_phase["speculate"] += speculate_seconds

        started = time.perf_counter()
        results, wave_jobs = self._dispatch(spec)
        dispatch_seconds = time.perf_counter() - started
        wave_sizes = [len(wave) for wave in wave_jobs]
        engine.parallel_phase["dispatch"] += dispatch_seconds

        started = time.perf_counter()
        certified = self._certify(spec, results)
        certify_seconds = time.perf_counter() - started
        engine.parallel_phase["certify"] += certify_seconds

        jobs = sum(wave_sizes)
        engine.counters["interproc_parallel_jobs"] += jobs
        engine.counters["interproc_parallel_waves"] += len(wave_sizes)

        worker_stats: Dict[str, int] = {}
        durations: Dict[str, float] = {}
        cpu_durations: Dict[str, float] = {}
        errors: Dict[str, str] = {}
        incomplete = 0
        store_served = 0
        store_assisted = 0
        cutoff_avoided = 0
        for key, result in sorted(results.items(), key=lambda kv: repr(kv[0])):
            durations[repr(key)] = result.duration
            cpu_durations[repr(key)] = result.cpu_seconds
            if result.error is not None:
                errors[repr(key)] = result.error
            if result.incomplete:
                incomplete += 1
            if result.from_store:
                store_served += 1
            if result.from_memo:
                cutoff_avoided += 1
            if result.used_store:
                store_assisted += 1
            for stat, value in result.stats.items():
                worker_stats[stat] = worker_stats.get(stat, 0) + value
        engine.counters["interproc_parallel_cutoff_avoided"] += cutoff_avoided

        self.report = {
            "speculated": len(spec["entries"]),
            "excluded_procedures": sorted(spec["excluded"]),
            "jobs": jobs,
            "waves": len(wave_sizes),
            "wave_sizes": wave_sizes,
            "wave_jobs": [[repr(key) for key in wave] for wave in wave_jobs],
            "jobs_per_wave": (jobs / len(wave_sizes)) if wave_sizes else 0.0,
            "certified": len(certified),
            "knocked_out": len(results) - len(certified),
            "incomplete": incomplete,
            # Keys answered straight from the persistent store (no worker
            # ran) and worker jobs that consumed at least one stored
            # summary in place of a havoc fallback.
            "store_served": store_served,
            "store_assisted": store_assisted,
            # Keys answered from the engine's own summary memo (survived or
            # re-keyed across edits by early cutoff): no worker, no store
            # round trip.
            "cutoff_avoided": cutoff_avoided,
            "errors": errors,
            "durations": durations,
            "cpu_durations": cpu_durations,
            "worker_stats": worker_stats,
            "phase_seconds": {
                "speculate": speculate_seconds,
                "dispatch": dispatch_seconds,
                "certify": certify_seconds,
            },
            "pool": {"kind": self.pool.kind, "workers": self.pool.workers,
                     "warmed": self.pool.warmed},
        }
        return self.report
