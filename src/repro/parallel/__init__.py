"""Parallel demanded evaluation: SCC-wave scheduling across procedures.

The sequential interprocedural engine evaluates one summary at a time; the
call graph's SCC condensation, however, is full of *independent* summary
computations — procedures in the same condensation antichain share no
call path, so their exit summaries can be computed concurrently without
any coordination.  This package exploits that:

* :mod:`repro.parallel.pool` — a persistent worker pool (process-, thread-,
  or subinterpreter-backed) whose startup cost is paid once and amortized
  across analysis sessions;
* :mod:`repro.parallel.worker` — the self-contained summary job a worker
  runs: one (procedure, context, entry state) DAIG evaluation against
  shipped callee summaries;
* :mod:`repro.parallel.coordinator` — speculates entry states down the
  call graph, dispatches condensation waves to the pool, and *certifies*
  each speculated summary against the sequential semantics before seeding
  it into the live engine.  Uncertified work is discarded; the sequential
  engine recomputes it on demand, so parallelism never changes results —
  only how fast the common case converges.
"""

from .coordinator import ParallelCoordinator
from .pool import PersistentWorkerPool
from .worker import JobPayload, JobResult, run_summary_job

__all__ = [
    "JobPayload",
    "JobResult",
    "ParallelCoordinator",
    "PersistentWorkerPool",
    "run_summary_job",
]
