"""A persistent worker pool for summary jobs.

Process pools are expensive to start (a fresh interpreter plus the
analysis imports per worker); a pool that lives for one analysis and dies
is dominated by that startup cost — the prototype measured a 2.6x
query-phase speedup wiped out to 0.04x wall-clock by cold pool creation.
:class:`PersistentWorkerPool` therefore separates pool *lifetime* from
analysis lifetime: create it once, :meth:`warmup` it (forcing the imports
in every worker while nothing is waiting on them), and reuse it across
edits, benchmarks, and analysis sessions.

Backends (``kind``):

* ``"process"`` — :class:`~concurrent.futures.ProcessPoolExecutor`; true
  parallelism, requires picklable jobs.  The default.
* ``"thread"`` — :class:`~concurrent.futures.ThreadPoolExecutor`; cheap
  and deterministic to start, shares the interpreter (GIL-bound), used by
  the tests and wherever job payloads are not worth pickling.
* ``"serial"`` — runs jobs inline on submit; the degenerate pool used to
  isolate coordinator logic from scheduling.
* ``"interpreter"`` — :class:`~concurrent.futures.InterpreterPoolExecutor`
  (Python 3.13+, per-interpreter GIL).  Gated behind the
  ``REPRO_PARALLEL_EXECUTOR=interpreter`` environment flag because the
  backend is young; selecting it on an older interpreter raises.
"""

from __future__ import annotations

import os
from typing import Any, Callable, List, Optional

#: Environment flag that unlocks (and selects) the subinterpreter backend.
EXECUTOR_ENV = "REPRO_PARALLEL_EXECUTOR"

_KINDS = ("process", "thread", "serial", "interpreter")


class _ImmediateFuture:
    """The already-resolved future the serial backend returns."""

    __slots__ = ("_value", "_error")

    def __init__(self, value: Any = None, error: Optional[BaseException] = None):
        self._value = value
        self._error = error

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._error is not None:
            raise self._error
        return self._value


def _warmup_task(_index: int) -> int:
    """Force the analysis imports inside a worker; returns its pid.

    The short sleep keeps this worker busy long enough for the remaining
    warmup tasks to spread to its siblings (the executor hands queued
    items to whichever worker is free, so back-to-back instant tasks can
    all land on the first worker while the others boot cold)."""
    import time
    import repro.parallel.worker  # noqa: F401  (the import is the point)
    time.sleep(0.05)
    return os.getpid()


def default_kind() -> str:
    """The pool kind selected by the environment (``process`` by default)."""
    kind = os.environ.get(EXECUTOR_ENV, "").strip().lower()
    return kind if kind in _KINDS else "process"


class PersistentWorkerPool:
    """A reusable executor with explicit warmup.

    The underlying executor is created lazily on first submit (or warmup),
    so constructing a pool is free; ``close()`` tears it down, and the pool
    can be used as a context manager.
    """

    def __init__(self, workers: int = 2, kind: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError("worker pool needs at least one worker")
        if kind is None:
            kind = default_kind()
        if kind not in _KINDS:
            raise ValueError("unknown pool kind %r (expected one of %s)"
                             % (kind, ", ".join(_KINDS)))
        if kind == "interpreter":
            if os.environ.get(EXECUTOR_ENV, "").strip().lower() != "interpreter":
                raise ValueError(
                    "the subinterpreter backend is experimental; set %s="
                    "interpreter to enable it" % (EXECUTOR_ENV,))
            import concurrent.futures
            if not hasattr(concurrent.futures, "InterpreterPoolExecutor"):
                raise ValueError(
                    "InterpreterPoolExecutor needs Python 3.13+ "
                    "(running %d.%d)" % __import__("sys").version_info[:2])
        self.workers = workers
        self.kind = kind
        self._executor: Optional[Any] = None
        self.warmed = False

    # -- lifecycle ---------------------------------------------------------------

    def _ensure_executor(self) -> Optional[Any]:
        if self.kind == "serial":
            return None
        if self._executor is None:
            if self.kind == "process":
                from concurrent.futures import ProcessPoolExecutor
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
            elif self.kind == "thread":
                from concurrent.futures import ThreadPoolExecutor
                self._executor = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="summary-job")
            else:  # interpreter (validated in __init__)
                from concurrent.futures import InterpreterPoolExecutor
                self._executor = InterpreterPoolExecutor(
                    max_workers=self.workers)
        return self._executor

    def warmup(self) -> List[int]:
        """Start every worker and force the analysis imports in each.

        Pays the whole cold-start cost here — outside any measured or
        latency-sensitive region — so the first real wave dispatches onto
        already-initialized workers.  Returns the pid observed by each
        warmup task (informational; usually one per process worker, though
        a busy host may serve several tasks from one worker while the rest
        finish booting).
        """
        executor = self._ensure_executor()
        if executor is None:
            self.warmed = True
            return [os.getpid()]
        # One task per worker slot: the pool spawns workers on demand, so
        # submitting fewer would leave some cold.
        futures = [executor.submit(_warmup_task, index)
                   for index in range(self.workers)]
        pids = [future.result() for future in futures]
        self.warmed = True
        return pids

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self.warmed = False

    def __enter__(self) -> "PersistentWorkerPool":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission --------------------------------------------------------------

    def submit(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Submit a job; returns a future (resolved immediately when serial)."""
        executor = self._ensure_executor()
        if executor is None:
            try:
                return _ImmediateFuture(fn(*args))
            except BaseException as exc:  # mirror Future.result semantics
                return _ImmediateFuture(error=exc)
        return executor.submit(fn, *args)
