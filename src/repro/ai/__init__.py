"""Classical batch abstract interpretation (the paper's baseline)."""

from .interpreter import (
    MAX_WIDENING_ITERATIONS,
    BatchAnalyzer,
    FixpointDivergenceError,
    analyze_cfg,
)

__all__ = [
    "MAX_WIDENING_ITERATIONS",
    "BatchAnalyzer",
    "FixpointDivergenceError",
    "analyze_cfg",
]
