"""Classical (batch) abstract interpretation of a CFG.

This is the baseline the paper compares against (configuration (1) of
Section 7.3) and, more importantly, the *from-scratch consistency oracle*:
Theorem 6.1 states that a DAIG query for the abstract state at a location
returns exactly the global fixed-point invariant ``⟦ℓ⟧♯*`` of the underlying
abstract interpreter.  The property-based tests compare the DAIG engine's
answers against the invariants computed here.

The iteration strategy mirrors the structure the DAIG reifies (and the
structured chaotic-iteration strategy of Bourdoncle): locations are
processed in reverse postorder over forward edges; each loop head runs a
local fixed-point iteration ``x_{k} = x_{k-1} ∇ F_body(x_{k-1})`` until two
consecutive iterates are equal (the paper's footnote 4 strategy of widening
at every iteration), re-analyzing the loop body — including nested loops —
from each iterate.
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, Sequence, TypeVar

from ..domains.base import AbstractDomain
from ..lang.cfg import Cfg, Loc

StateT = TypeVar("StateT")

#: Safety bound on widening iterations; a correct widening converges long
#: before this, so hitting the bound indicates a broken domain.
MAX_WIDENING_ITERATIONS = 1000


class FixpointDivergenceError(Exception):
    """Raised when a loop's widening sequence fails to stabilize."""


class BatchAnalyzer(Generic[StateT]):
    """Whole-CFG abstract interpretation producing an invariant map."""

    def __init__(
        self,
        cfg: Cfg,
        domain: AbstractDomain[StateT],
        entry_state: Optional[StateT] = None,
    ) -> None:
        self.cfg = cfg
        self.domain = domain
        self.entry_state = (
            entry_state if entry_state is not None else domain.initial(cfg.params))
        #: Number of abstract transfer-function applications performed; the
        #: benchmarks report this as a machine-independent cost measure.
        self.transfer_count = 0

    # -- public API ---------------------------------------------------------------

    def analyze(self) -> Dict[Loc, StateT]:
        """Compute the invariant map ``⟦·⟧♯*`` for every reachable location."""
        self.cfg.check_reducible()
        values: Dict[Loc, StateT] = {self.cfg.entry: self.entry_state}
        for loc in self.cfg.reverse_postorder():
            if loc == self.cfg.entry:
                continue
            self._compute_location(loc, values)
        return values

    def invariant_at(self, loc: Loc) -> StateT:
        """The fixed-point abstract state at a single location."""
        return self.analyze()[loc]

    # -- internals ------------------------------------------------------------------

    def _transfer(self, stmt, state: StateT) -> StateT:
        self.transfer_count += 1
        return self.domain.transfer(stmt, state)

    def _incoming_value(self, loc: Loc, values: Dict[Loc, StateT]) -> StateT:
        """Join of transfers over the indexed incoming forward edges."""
        contributions: List[StateT] = []
        for _index, edge in self.cfg.fwd_edges_to(loc):
            if edge.src not in values:
                # The predecessor is unreachable (or not yet computed, which
                # only happens for unreachable code); treat it as ⊥.
                continue
            contributions.append(self._transfer(edge.stmt, values[edge.src]))
        if not contributions:
            return self.domain.bottom()
        result = contributions[0]
        for contribution in contributions[1:]:
            result = self.domain.join(result, contribution)
        return result

    def _compute_location(self, loc: Loc, values: Dict[Loc, StateT]) -> None:
        incoming = self._incoming_value(loc, values)
        if loc in self.cfg.loop_heads():
            values[loc] = self._loop_fixpoint(loc, incoming, values)
        else:
            values[loc] = incoming

    def _loop_fixpoint(
        self, head: Loc, initial: StateT, values: Dict[Loc, StateT]
    ) -> StateT:
        """Iterate ``x ∇ F_body(x)`` to convergence for the loop at ``head``."""
        loop_locations = self.cfg.natural_loop(head)
        order = [loc for loc in self.cfg.reverse_postorder()
                 if loc in loop_locations and loc != head]
        back_edges = self.cfg.back_edges_to(head)
        current = initial
        for _iteration in range(MAX_WIDENING_ITERATIONS):
            body_values: Dict[Loc, StateT] = dict(values)
            body_values[head] = current
            for loc in order:
                self._compute_location(loc, body_values)
            pre_widen: Optional[StateT] = None
            for edge in back_edges:
                if edge.src not in body_values:
                    continue
                transferred = self._transfer(edge.stmt, body_values[edge.src])
                pre_widen = (transferred if pre_widen is None
                             else self.domain.join(pre_widen, transferred))
            if pre_widen is None:
                return current
            nxt = self.domain.widen(current, pre_widen)
            if self.domain.equal(nxt, current):
                return nxt
            current = nxt
        raise FixpointDivergenceError(
            "widening did not converge at loop head %d of %s"
            % (head, self.cfg.name))


def analyze_cfg(
    cfg: Cfg,
    domain: AbstractDomain[StateT],
    entry_state: Optional[StateT] = None,
) -> Dict[Loc, StateT]:
    """Convenience wrapper: batch-analyze ``cfg`` and return the invariant map."""
    return BatchAnalyzer(cfg, domain, entry_state).analyze()
