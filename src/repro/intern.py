"""Hash-consing (interning) infrastructure for abstract states and names.

Every immutable value class on the analysis hot path — DAIG names, value
lattice elements, environment states, octagon states — is *interned*: its
constructor returns the one canonical object per structural value, held in a
per-type weak-value table.  The payoff is the classic hash-consing triple:

* **equality is identity** — structurally equal values are the same object,
  so ``==`` is a pointer comparison and lattice ``equal`` checks are O(1),
* **hashing is O(1) amortized** — each object hashes its fields once at
  construction and caches the result in a slot,
* **memoization keys are cheap** — the DAIG memo table and the octagon /
  environment join paths compare and hash states without walking them.

Tables hold values through :class:`weakref.WeakValueDictionary`, so interned
objects are garbage-collected as soon as the analysis drops them: tearing
down an engine releases its states, and nothing leaks across engine
lifetimes (property-tested in ``tests/test_intern.py``).

Each table counts hits (an equal value was already interned) and misses
(a fresh value was inserted); ``intern_stats()`` aggregates the counters for
the benchmark artifacts (``BENCH_domain.json``) and the CI assertions.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any, Dict, Hashable, List, Optional

__all__ = ["InternTable", "all_tables", "intern_stats", "reset_intern_stats"]

#: Global registry of every live intern table, in registration order.
_REGISTRY: "List[InternTable]" = []


class InternTable:
    """One per-type hash-consing table: structural key → canonical object.

    The table maps a *key* (a hashable tuple of the type's fields) to the
    canonical instance for that key.  Values are held weakly, so the table
    never keeps an object alive by itself.
    """

    __slots__ = ("name", "hits", "misses", "encode_hits", "encode_misses",
                 "_table", "_lock", "__weakref__")

    def __init__(self, name: str) -> None:
        self.name = name
        self.hits = 0
        self.misses = 0
        #: Canonical-encoding cache traffic (see repro.store.canonical):
        #: interned objects memoize their ``canonical_bytes`` in a slot, so
        #: repeated digests/store keys over the same states are O(1).
        self.encode_hits = 0
        self.encode_misses = 0
        self._table: "weakref.WeakValueDictionary[Hashable, Any]" = (
            weakref.WeakValueDictionary())
        #: Serializes insertions so that concurrent construction of the same
        #: value (the parallel intra-DAIG worklist, re-interning results
        #: received from workers) yields a single canonical object.  The
        #: ``get`` fast path stays lock-free: a miss there only costs an
        #: extra trip through ``insert``, which re-checks under the lock.
        self._lock = threading.Lock()
        _REGISTRY.append(self)

    def get(self, key: Hashable) -> Optional[Any]:
        """The canonical object for ``key``, or ``None`` (counts a hit/miss)."""
        found = self._table.get(key)
        if found is not None:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def insert(self, key: Hashable, value: Any) -> Any:
        """Record ``value`` as canonical for ``key``, or return the winner.

        Atomic get-or-insert: if another thread interned an equal value
        between the caller's ``get`` miss and this call, the already-interned
        canonical object is returned and ``value`` is discarded — so equality
        remains identity even under concurrent construction.
        """
        with self._lock:
            existing = self._table.get(key)
            if existing is not None:
                return existing
            self._table[key] = value
            return value

    def __len__(self) -> int:
        return len(self._table)

    def clear(self) -> None:
        """Drop every entry (always sound: the next use re-interns)."""
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._table),
                "hits": self.hits,
                "misses": self.misses,
                "encode_hits": self.encode_hits,
                "encode_misses": self.encode_misses}


def all_tables() -> List[InternTable]:
    """Every registered intern table (one per interned type)."""
    return list(_REGISTRY)


def intern_stats() -> Dict[str, Dict[str, int]]:
    """Per-table ``{entries, hits, misses}`` counters, keyed by table name."""
    return {table.name: table.stats() for table in _REGISTRY}


def reset_intern_stats() -> None:
    """Zero all hit/miss counters (entries are left alone)."""
    for table in _REGISTRY:
        table.hits = 0
        table.misses = 0
        table.encode_hits = 0
        table.encode_misses = 0
