"""Language frontend: AST, parser, control-flow graphs, and subject programs."""

from . import ast
from .ast import Procedure, Program
from .cfg import Cfg, CfgBuilder, CfgEdge, IrreducibleCfgError, build_cfg, build_program_cfgs
from .parser import ParseError, parse_expression, parse_procedure, parse_program
from . import programs

__all__ = [
    "ast",
    "Procedure",
    "Program",
    "Cfg",
    "CfgBuilder",
    "CfgEdge",
    "IrreducibleCfgError",
    "build_cfg",
    "build_program_cfgs",
    "ParseError",
    "parse_expression",
    "parse_procedure",
    "parse_program",
    "programs",
]
