"""Abstract syntax for the imperative language analyzed by the framework.

The paper evaluates demanded abstract interpretation on a JavaScript subset
with assignment, arrays, conditional branching, ``while`` loops, field
reads/writes on heap records (for the shape analysis of linked lists), and
non-recursive function calls of the form ``x = f(y)``.  This module defines
that language as a small, explicit AST:

* *Expressions* (:class:`Expr`) are side-effect free: variables, literals,
  unary and binary operators, array reads, array length, and field reads.
* *Structured statements* (:class:`Stmt`) are what programs are written in:
  assignments, array/field writes, allocation, ``if``/``while``, calls,
  ``return``, ``print`` and ``skip``.
* *Atomic statements* (:class:`AtomicStmt`) label control-flow-graph edges;
  they are the statements interpreted by abstract transfer functions.  The
  translation from structured statements to atomic edge labels happens in
  :mod:`repro.lang.cfg`.

All nodes are frozen dataclasses with structural equality and hashing, which
is what the DAIG layer relies on when naming statement reference cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Sequence, Tuple

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for side-effect-free expressions."""

    def variables(self) -> frozenset[str]:
        """Return the set of variable names read by this expression."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Return immediate sub-expressions (for generic traversals)."""
        return ()

    def walk(self) -> Iterator["Expr"]:
        """Yield this expression and all sub-expressions, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(frozen=True)
class Var(Expr):
    """A variable reference, e.g. ``x``."""

    name: str

    def variables(self) -> frozenset[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class IntLit(Expr):
    """An integer literal, e.g. ``42``."""

    value: int

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    """A boolean literal: ``true`` or ``false``."""

    value: bool

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class NullLit(Expr):
    """The ``null`` literal (used heavily by the shape analysis)."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "null"


@dataclass(frozen=True)
class StrLit(Expr):
    """A string literal; only used as an opaque value (e.g. ``print``)."""

    value: str

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return '"%s"' % self.value


#: Arithmetic operators understood by the numeric domains.
ARITH_OPS = ("+", "-", "*", "/", "%")
#: Comparison operators; these appear in ``assume`` statements after
#: control-flow lowering.
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")
#: Short-circuit logical operators.
LOGICAL_OPS = ("&&", "||")


@dataclass(frozen=True)
class BinOp(Expr):
    """A binary operation ``left op right``."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in ARITH_OPS + COMPARISON_OPS + LOGICAL_OPS:
            raise ValueError("unknown binary operator: %r" % (self.op,))

    def variables(self) -> frozenset[str]:
        return self.left.variables() | self.right.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return "(%s %s %s)" % (self.left, self.op, self.right)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """A unary operation: ``-e`` or ``!e``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("-", "!"):
            raise ValueError("unknown unary operator: %r" % (self.op,))

    def variables(self) -> frozenset[str]:
        return self.operand.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.operand,)

    def __str__(self) -> str:
        return "%s%s" % (self.op, self.operand)


@dataclass(frozen=True)
class ArrayLit(Expr):
    """An array literal ``[e1, ..., en]``."""

    elements: Tuple[Expr, ...]

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for element in self.elements:
            out |= element.variables()
        return out

    def children(self) -> Tuple[Expr, ...]:
        return self.elements

    def __str__(self) -> str:
        return "[%s]" % ", ".join(str(e) for e in self.elements)


@dataclass(frozen=True)
class ArrayRead(Expr):
    """An array read ``a[i]``; the access the interval client verifies."""

    array: Expr
    index: Expr

    def variables(self) -> frozenset[str]:
        return self.array.variables() | self.index.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.array, self.index)

    def __str__(self) -> str:
        return "%s[%s]" % (self.array, self.index)


@dataclass(frozen=True)
class ArrayLen(Expr):
    """The length of an array, ``a.length``."""

    array: Expr

    def variables(self) -> frozenset[str]:
        return self.array.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.array,)

    def __str__(self) -> str:
        return "%s.length" % (self.array,)


@dataclass(frozen=True)
class FieldRead(Expr):
    """A heap field read ``x.f`` (e.g. ``r.next`` in the list programs)."""

    base: Expr
    fieldname: str

    def variables(self) -> frozenset[str]:
        return self.base.variables()

    def children(self) -> Tuple[Expr, ...]:
        return (self.base,)

    def __str__(self) -> str:
        return "%s.%s" % (self.base, self.fieldname)


@dataclass(frozen=True)
class AllocRecord(Expr):
    """Allocation of a fresh heap record, ``new()``; fields start null."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "new()"


def negate(expr: Expr) -> Expr:
    """Return the logical negation of a boolean expression.

    Comparisons are flipped directly (``<`` becomes ``>=`` and so on) so that
    ``assume`` statements remain in a shape the abstract domains can refine
    on; anything else is wrapped in a ``!``.
    """
    flipped = {"==": "!=", "!=": "==", "<": ">=", "<=": ">", ">": "<=", ">=": "<"}
    if isinstance(expr, BinOp) and expr.op in flipped:
        return BinOp(flipped[expr.op], expr.left, expr.right)
    if isinstance(expr, UnaryOp) and expr.op == "!":
        return expr.operand
    if isinstance(expr, BoolLit):
        return BoolLit(not expr.value)
    return UnaryOp("!", expr)


# ---------------------------------------------------------------------------
# Structured statements (the surface language)
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for structured statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    """``x = e;`` — also covers ``var x = e;``."""

    target: str
    value: Expr

    def __str__(self) -> str:
        return "%s = %s;" % (self.target, self.value)


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """``a[i] = e;``"""

    array: str
    index: Expr
    value: Expr

    def __str__(self) -> str:
        return "%s[%s] = %s;" % (self.array, self.index, self.value)


@dataclass(frozen=True)
class FieldAssign(Stmt):
    """``x.f = e;`` — heap mutation used by the list programs."""

    base: str
    fieldname: str
    value: Expr

    def __str__(self) -> str:
        return "%s.%s = %s;" % (self.base, self.fieldname, self.value)


@dataclass(frozen=True)
class If(Stmt):
    """``if (cond) { then } else { orelse }``."""

    cond: Expr
    then_body: Tuple[Stmt, ...]
    else_body: Tuple[Stmt, ...] = ()

    def __str__(self) -> str:
        return "if (%s) {...}" % (self.cond,)


@dataclass(frozen=True)
class While(Stmt):
    """``while (cond) { body }``."""

    cond: Expr
    body: Tuple[Stmt, ...]

    def __str__(self) -> str:
        return "while (%s) {...}" % (self.cond,)


@dataclass(frozen=True)
class Call(Stmt):
    """A (possibly void) call ``x = f(e1, ..., en);``.

    The paper restricts attention to non-recursive calls with static calling
    semantics; the interprocedural engine enforces the non-recursion check.
    """

    target: Optional[str]
    function: str
    args: Tuple[Expr, ...]

    def __str__(self) -> str:
        call = "%s(%s)" % (self.function, ", ".join(str(a) for a in self.args))
        if self.target is None:
            return call + ";"
        return "%s = %s;" % (self.target, call)


@dataclass(frozen=True)
class Return(Stmt):
    """``return e;`` or ``return;``."""

    value: Optional[Expr] = None

    def __str__(self) -> str:
        if self.value is None:
            return "return;"
        return "return %s;" % (self.value,)


@dataclass(frozen=True)
class Print(Stmt):
    """``print(e);`` — observationally inert, used by the edit workloads."""

    value: Expr

    def __str__(self) -> str:
        return "print(%s);" % (self.value,)


@dataclass(frozen=True)
class Skip(Stmt):
    """A no-op statement."""

    def __str__(self) -> str:
        return "skip;"


# ---------------------------------------------------------------------------
# Atomic statements (CFG edge labels)
# ---------------------------------------------------------------------------


class AtomicStmt:
    """Base class for atomic statements labelling control-flow edges.

    Atomic statements are the ``Stmt`` syntactic category of the paper's
    Fig. 5: they are what abstract transfer functions interpret and what the
    DAIG stores in statement-typed reference cells.
    """

    def variables(self) -> frozenset[str]:
        """All variable names read or written by this statement."""
        raise NotImplementedError

    def defs(self) -> frozenset[str]:
        """Variable names written by this statement."""
        return frozenset()

    def uses(self) -> frozenset[str]:
        """Variable names read by this statement."""
        return frozenset()


@dataclass(frozen=True)
class AssignStmt(AtomicStmt):
    """``x = e``."""

    target: str
    value: Expr

    def defs(self) -> frozenset[str]:
        return frozenset({self.target})

    def uses(self) -> frozenset[str]:
        return self.value.variables()

    def variables(self) -> frozenset[str]:
        return self.defs() | self.uses()

    def __str__(self) -> str:
        return "%s = %s" % (self.target, self.value)


@dataclass(frozen=True)
class AssumeStmt(AtomicStmt):
    """``assume e`` — the residue of branch conditions after lowering."""

    cond: Expr

    def uses(self) -> frozenset[str]:
        return self.cond.variables()

    def variables(self) -> frozenset[str]:
        return self.uses()

    def __str__(self) -> str:
        return "assume %s" % (self.cond,)


@dataclass(frozen=True)
class ArrayWriteStmt(AtomicStmt):
    """``a[i] = e``."""

    array: str
    index: Expr
    value: Expr

    def defs(self) -> frozenset[str]:
        return frozenset({self.array})

    def uses(self) -> frozenset[str]:
        return frozenset({self.array}) | self.index.variables() | self.value.variables()

    def variables(self) -> frozenset[str]:
        return self.defs() | self.uses()

    def __str__(self) -> str:
        return "%s[%s] = %s" % (self.array, self.index, self.value)


@dataclass(frozen=True)
class FieldWriteStmt(AtomicStmt):
    """``x.f = e``."""

    base: str
    fieldname: str
    value: Expr

    def uses(self) -> frozenset[str]:
        return frozenset({self.base}) | self.value.variables()

    def variables(self) -> frozenset[str]:
        return self.uses()

    def __str__(self) -> str:
        return "%s.%s = %s" % (self.base, self.fieldname, self.value)


@dataclass(frozen=True)
class CallStmt(AtomicStmt):
    """``x = f(e1, ..., en)``; interpreted by the interprocedural engine."""

    target: Optional[str]
    function: str
    args: Tuple[Expr, ...]

    def defs(self) -> frozenset[str]:
        if self.target is None:
            return frozenset()
        return frozenset({self.target})

    def uses(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for arg in self.args:
            out |= arg.variables()
        return out

    def variables(self) -> frozenset[str]:
        return self.defs() | self.uses()

    def __str__(self) -> str:
        call = "%s(%s)" % (self.function, ", ".join(str(a) for a in self.args))
        if self.target is None:
            return call
        return "%s = %s" % (self.target, call)


@dataclass(frozen=True)
class SkipStmt(AtomicStmt):
    """A no-op edge label."""

    def variables(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class PrintStmt(AtomicStmt):
    """``print(e)`` — has no effect on any abstract state."""

    value: Expr

    def uses(self) -> frozenset[str]:
        return self.value.variables()

    def variables(self) -> frozenset[str]:
        return self.uses()

    def __str__(self) -> str:
        return "print(%s)" % (self.value,)


#: The distinguished variable that receives a procedure's return value after
#: control-flow lowering (``return e`` becomes ``RETURN_VARIABLE = e``).
RETURN_VARIABLE = "ret"


# ---------------------------------------------------------------------------
# Procedures and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Procedure:
    """A named procedure: parameters plus a structured statement body."""

    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]

    def __str__(self) -> str:
        return "function %s(%s) { %d statements }" % (
            self.name,
            ", ".join(self.params),
            len(self.body),
        )


@dataclass(frozen=True)
class Program:
    """A whole program: a set of procedures and a designated entry point."""

    procedures: Tuple[Procedure, ...]
    entry: str = "main"

    def procedure(self, name: str) -> Procedure:
        """Look up a procedure by name, raising ``KeyError`` if absent."""
        for proc in self.procedures:
            if proc.name == name:
                return proc
        raise KeyError("no procedure named %r" % (name,))

    def names(self) -> Tuple[str, ...]:
        return tuple(proc.name for proc in self.procedures)

    def with_procedure(self, procedure: Procedure) -> "Program":
        """Return a copy of this program with ``procedure`` added/replaced."""
        replaced = False
        procs = []
        for proc in self.procedures:
            if proc.name == procedure.name:
                procs.append(procedure)
                replaced = True
            else:
                procs.append(proc)
        if not replaced:
            procs.append(procedure)
        return Program(tuple(procs), self.entry)


def block(*stmts: Stmt) -> Tuple[Stmt, ...]:
    """Convenience constructor for statement tuples in hand-written programs."""
    return tuple(stmts)
