"""Control-flow graphs: the program representation analyzed by the framework.

Following Section 3 of the paper, a program is a triple ``⟨L, E, l0⟩`` of
control locations, directed statement-labelled edges, and an initial
location.  This module provides:

* :class:`Cfg` — the graph itself, with the structural analyses the DAIG
  construction of Section 4 / Appendix A needs: dominators, the partition of
  edges into *forward* and *back* edges, natural loops, loop nesting, join
  points (forward in-degree >= 2) and the per-location indexing of incoming
  forward edges (``fwd-edges-to``).
* :class:`CfgBuilder` — lowering of structured ASTs (:mod:`repro.lang.ast`)
  into CFGs, splitting branch conditions into ``assume`` edges exactly as the
  paper does for Fig. 2.
* Structural *edit* operations (insert a statement / conditional / loop after
  a location, replace an edge's statement, delete an edge) with stable
  location identity, which is what makes fine-grained incremental reuse
  possible across program versions.

Locations are small integers; fresh locations are always allocated from a
monotonically increasing counter so that edits never recycle a location name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import ast as A

Loc = int


@dataclass(frozen=True)
class CfgEdge:
    """A directed control-flow edge ``src --[stmt]--> dst``."""

    src: Loc
    stmt: A.AtomicStmt
    dst: Loc

    def __str__(self) -> str:
        return "%d --[%s]--> %d" % (self.src, self.stmt, self.dst)


class IrreducibleCfgError(Exception):
    """Raised when a CFG is not reducible (violates the paper's assumption)."""


class Cfg:
    """A statement-labelled control-flow graph for a single procedure.

    The graph is mutable (edits arrive as the developer types) but all derived
    structural information (dominators, loops, join points, ...) is computed
    lazily and invalidated whenever the graph changes.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        entry: Loc = 0,
        exit_loc: Loc = 1,
    ) -> None:
        self.name = name
        self.params: Tuple[str, ...] = tuple(params)
        self.entry: Loc = entry
        self.exit: Loc = exit_loc
        self.locations: Set[Loc] = {entry, exit_loc}
        self.edges: List[CfgEdge] = []
        self._next_loc: Loc = max(entry, exit_loc) + 1
        self._analysis: Optional[_CfgAnalysis] = None

    # -- construction -------------------------------------------------------

    def fresh_loc(self) -> Loc:
        """Allocate a new, never-before-used location."""
        loc = self._next_loc
        self._next_loc += 1
        self.locations.add(loc)
        self._invalidate()
        return loc

    def add_edge(self, src: Loc, stmt: A.AtomicStmt, dst: Loc) -> CfgEdge:
        """Add the edge ``src --[stmt]--> dst`` (locations must exist)."""
        if src not in self.locations or dst not in self.locations:
            raise ValueError("edge endpoints must be existing locations")
        edge = CfgEdge(src, stmt, dst)
        self.edges.append(edge)
        self._invalidate()
        return edge

    def remove_edge(self, edge: CfgEdge) -> None:
        self.edges.remove(edge)
        self._invalidate()

    def copy(self) -> "Cfg":
        """Return an independent copy sharing no mutable state."""
        dup = Cfg(self.name, self.params, self.entry, self.exit)
        dup.locations = set(self.locations)
        dup.edges = list(self.edges)
        dup._next_loc = self._next_loc
        return dup

    def _invalidate(self) -> None:
        self._analysis = None

    # -- basic queries -------------------------------------------------------

    def out_edges(self, loc: Loc) -> List[CfgEdge]:
        return [e for e in self.edges if e.src == loc]

    def in_edges(self, loc: Loc) -> List[CfgEdge]:
        return [e for e in self.edges if e.dst == loc]

    def successors(self, loc: Loc) -> List[Loc]:
        return [e.dst for e in self.out_edges(loc)]

    def predecessors(self, loc: Loc) -> List[Loc]:
        return [e.src for e in self.in_edges(loc)]

    def statements(self) -> List[A.AtomicStmt]:
        return [e.stmt for e in self.edges]

    def size(self) -> int:
        """Number of statement edges — the "program size" axis of Fig. 10."""
        return len(self.edges)

    def variables(self) -> Set[str]:
        """All variable names mentioned anywhere in the procedure."""
        out: Set[str] = set(self.params)
        out.add(A.RETURN_VARIABLE)
        for edge in self.edges:
            out |= set(edge.stmt.variables())
        return out

    # -- structural analyses -------------------------------------------------

    def _analyze(self) -> "_CfgAnalysis":
        if self._analysis is None:
            self._analysis = _CfgAnalysis(self)
        return self._analysis

    def reachable_locations(self) -> Set[Loc]:
        return self._analyze().reachable

    def dominators(self) -> Dict[Loc, Set[Loc]]:
        """Map each reachable location to the set of its dominators."""
        return self._analyze().dominators

    def dominates(self, a: Loc, b: Loc) -> bool:
        return a in self._analyze().dominators.get(b, set())

    def back_edges(self) -> List[CfgEdge]:
        """Edges ``u --> v`` where ``v`` dominates ``u`` (loop back edges)."""
        return self._analyze().back_edges

    def forward_edges(self) -> List[CfgEdge]:
        return self._analyze().forward_edges

    def is_back_edge(self, edge: CfgEdge) -> bool:
        return edge in set(self._analyze().back_edges)

    def loop_heads(self) -> List[Loc]:
        """Destinations of back edges, in a deterministic order."""
        return self._analyze().loop_heads

    def natural_loop(self, head: Loc) -> Set[Loc]:
        """The natural loop (body location set, including ``head``) of a head."""
        return self._analyze().natural_loops.get(head, set())

    def containing_loop_heads(self, loc: Loc) -> Tuple[Loc, ...]:
        """Loop heads whose natural loop contains ``loc``, outermost first."""
        return self._analyze().containing.get(loc, ())

    def in_any_loop(self, loc: Loc) -> bool:
        return bool(self.containing_loop_heads(loc))

    def join_points(self) -> Set[Loc]:
        """Locations with forward in-degree >= 2 (the paper's ``L⊔``)."""
        return self._analyze().join_points

    def fwd_edges_to(self, loc: Loc) -> List[Tuple[int, CfgEdge]]:
        """Incoming *forward* edges of ``loc``, paired with 1-based indices.

        The indices are what disambiguate the pre-join reference cells
        ``i·n_ℓ`` in the DAIG encoding of control-flow joins.
        """
        return self._analyze().fwd_edges_to.get(loc, [])

    def back_edges_to(self, loc: Loc) -> List[CfgEdge]:
        return [e for e in self._analyze().back_edges if e.dst == loc]

    def reverse_postorder(self) -> List[Loc]:
        """Reverse postorder over forward edges (a topological order)."""
        return self._analyze().reverse_postorder

    def check_reducible(self) -> None:
        """Raise :class:`IrreducibleCfgError` if the graph is irreducible."""
        self._analyze().check_reducible()

    def is_reducible(self) -> bool:
        try:
            self.check_reducible()
            return True
        except IrreducibleCfgError:
            return False

    # -- edits ----------------------------------------------------------------

    def replace_edge_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace the statement labelling an existing edge (in-place edit)."""
        if edge not in self.edges:
            raise ValueError("edge not in CFG: %s" % (edge,))
        new_edge = CfgEdge(edge.src, stmt, edge.dst)
        self.edges[self.edges.index(edge)] = new_edge
        self._invalidate()
        return new_edge

    def delete_edge_statement(self, edge: CfgEdge) -> CfgEdge:
        """Delete a statement by replacing it with ``skip`` (paper, Lemma B.2)."""
        return self.replace_edge_statement(edge, A.SkipStmt())

    def _detach_continuation(self, loc: Loc) -> Loc:
        """Create a continuation location taking over ``loc``'s out-edges.

        Every statement insertion works by splicing new structure between
        ``loc`` and the returned continuation location.

        When ``loc`` is a loop head, only the edges that stay inside its
        natural loop are moved: the loop-exit edge keeps originating at the
        head, preserving the invariant — relied upon by the DAIG encoding of
        back edges (Fig. 7) — that control leaves a loop only through its
        head.  The inserted code therefore runs on every iteration, which is
        what "inserting just inside the loop" means.
        """
        moved = self.out_edges(loc)
        if loc in self.loop_heads():
            loop = self.natural_loop(loc)
            moved = [edge for edge in moved if edge.dst in loop]
        cont = self.fresh_loc()
        for edge in moved:
            self.edges[self.edges.index(edge)] = CfgEdge(cont, edge.stmt, edge.dst)
        self._invalidate()
        return cont

    def insert_statement_after(self, loc: Loc, stmt: A.AtomicStmt) -> Loc:
        """Insert a single atomic statement immediately after ``loc``.

        Returns the newly created continuation location.
        """
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        self.add_edge(loc, stmt, cont)
        return cont

    def insert_conditional_after(
        self,
        loc: Loc,
        cond: A.Expr,
        then_stmts: Sequence[A.AtomicStmt],
        else_stmts: Sequence[A.AtomicStmt] = (),
    ) -> Loc:
        """Insert ``if (cond) { then } else { else }`` after ``loc``."""
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        self._build_branch(loc, A.AssumeStmt(cond), then_stmts, cont)
        self._build_branch(loc, A.AssumeStmt(A.negate(cond)), else_stmts, cont)
        return cont

    def insert_loop_after(
        self,
        loc: Loc,
        cond: A.Expr,
        body_stmts: Sequence[A.AtomicStmt],
    ) -> Loc:
        """Insert ``while (cond) { body }`` after ``loc``.

        A fresh loop head is always created so that no location ever becomes
        the head of two distinct loops (keeping one back edge per head, as the
        paper assumes for reducible CFGs).
        """
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        head = self.fresh_loc()
        self.add_edge(loc, A.SkipStmt(), head)
        self.add_edge(head, A.AssumeStmt(A.negate(cond)), cont)
        # Loop body: head --assume(cond)--> ... --last--> head (back edge).
        body = list(body_stmts) if body_stmts else [A.SkipStmt()]
        current = head
        current_stmt: A.AtomicStmt = A.AssumeStmt(cond)
        for stmt in body:
            nxt = self.fresh_loc()
            self.add_edge(current, current_stmt, nxt)
            current, current_stmt = nxt, stmt
        self.add_edge(current, current_stmt, head)
        return cont

    def _build_branch(
        self,
        src: Loc,
        first: A.AtomicStmt,
        stmts: Sequence[A.AtomicStmt],
        join: Loc,
    ) -> None:
        current = src
        current_stmt = first
        for stmt in stmts:
            nxt = self.fresh_loc()
            self.add_edge(current, current_stmt, nxt)
            current, current_stmt = nxt, stmt
        self.add_edge(current, current_stmt, join)

    def _require_insertion_point(self, loc: Loc) -> None:
        if loc not in self.locations:
            raise ValueError("unknown location %r" % (loc,))
        if loc == self.exit:
            raise ValueError("cannot insert code after the exit location")

    def insertion_points(self) -> List[Loc]:
        """Locations where the edit workload may insert code."""
        reachable = self.reachable_locations()
        return sorted(loc for loc in reachable if loc != self.exit)

    # -- misc -----------------------------------------------------------------

    def pretty(self) -> str:
        """A readable multi-line rendering of the graph."""
        lines = ["cfg %s(%s)  entry=%d exit=%d" % (
            self.name, ", ".join(self.params), self.entry, self.exit)]
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst, str(e.stmt))):
            lines.append("  %s" % (edge,))
        return "\n".join(lines)

    def __str__(self) -> str:
        return "Cfg(%s, %d locations, %d edges)" % (
            self.name, len(self.locations), len(self.edges))


class _CfgAnalysis:
    """Derived structural facts about a CFG, recomputed after each mutation."""

    def __init__(self, cfg: Cfg) -> None:
        self.cfg = cfg
        self.reachable = self._compute_reachable()
        self.reverse_postorder = self._compute_reverse_postorder()
        self.dominators = self._compute_dominators()
        self.back_edges, self.forward_edges = self._partition_edges()
        self.loop_heads = sorted({e.dst for e in self.back_edges})
        self.natural_loops = {
            head: self._compute_natural_loop(head) for head in self.loop_heads
        }
        self.containing = self._compute_containing()
        self.fwd_edges_to = self._compute_fwd_edges_to()
        self.join_points = {
            loc for loc, edges in self.fwd_edges_to.items() if len(edges) >= 2
        }

    def _compute_reachable(self) -> Set[Loc]:
        seen: Set[Loc] = set()
        stack = [self.cfg.entry]
        while stack:
            loc = stack.pop()
            if loc in seen:
                continue
            seen.add(loc)
            for edge in self.cfg.out_edges(loc):
                if edge.dst not in seen:
                    stack.append(edge.dst)
        return seen

    def _compute_reverse_postorder(self) -> List[Loc]:
        visited: Set[Loc] = set()
        order: List[Loc] = []

        def visit(loc: Loc) -> None:
            stack: List[Tuple[Loc, List[Loc]]] = [(loc, self._ordered_successors(loc))]
            visited.add(loc)
            while stack:
                node, succs = stack[-1]
                advanced = False
                while succs:
                    nxt = succs.pop(0)
                    if nxt not in visited:
                        visited.add(nxt)
                        stack.append((nxt, self._ordered_successors(nxt)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()

        visit(self.cfg.entry)
        order.reverse()
        return [loc for loc in order if loc in self.reachable]

    def _ordered_successors(self, loc: Loc) -> List[Loc]:
        return sorted({e.dst for e in self.cfg.out_edges(loc)})

    def _compute_dominators(self) -> Dict[Loc, Set[Loc]]:
        reachable = self.reachable
        all_locs = set(reachable)
        dom: Dict[Loc, Set[Loc]] = {loc: set(all_locs) for loc in reachable}
        dom[self.cfg.entry] = {self.cfg.entry}
        order = self.reverse_postorder
        changed = True
        while changed:
            changed = False
            for loc in order:
                if loc == self.cfg.entry:
                    continue
                preds = [p for p in self.cfg.predecessors(loc) if p in reachable]
                if not preds:
                    new = {loc}
                else:
                    new = set(all_locs)
                    for pred in preds:
                        new &= dom[pred]
                    new.add(loc)
                if new != dom[loc]:
                    dom[loc] = new
                    changed = True
        return dom

    def _partition_edges(self) -> Tuple[List[CfgEdge], List[CfgEdge]]:
        back: List[CfgEdge] = []
        forward: List[CfgEdge] = []
        for edge in self.cfg.edges:
            if edge.src not in self.reachable:
                continue
            if edge.dst in self.dominators.get(edge.src, set()):
                back.append(edge)
            else:
                forward.append(edge)
        return back, forward

    def _compute_natural_loop(self, head: Loc) -> Set[Loc]:
        loop: Set[Loc] = {head}
        stack: List[Loc] = []
        for edge in self.back_edges:
            if edge.dst == head and edge.src not in loop:
                loop.add(edge.src)
                stack.append(edge.src)
        while stack:
            loc = stack.pop()
            for pred in self.cfg.predecessors(loc):
                if pred not in loop and pred in self.reachable:
                    loop.add(pred)
                    stack.append(pred)
        return loop

    def _compute_containing(self) -> Dict[Loc, Tuple[Loc, ...]]:
        containing: Dict[Loc, Tuple[Loc, ...]] = {}
        for loc in self.reachable:
            heads = [h for h in self.loop_heads if loc in self.natural_loops[h]]
            # Order outermost-first: a head h1 is outside h2 if h2's loop is a
            # subset of h1's loop (or h1's loop is strictly larger).
            heads.sort(key=lambda h: (-len(self.natural_loops[h]), h))
            containing[loc] = tuple(heads)
        return containing

    def _compute_fwd_edges_to(self) -> Dict[Loc, List[Tuple[int, CfgEdge]]]:
        incoming: Dict[Loc, List[CfgEdge]] = {}
        for edge in self.forward_edges:
            incoming.setdefault(edge.dst, []).append(edge)
        indexed: Dict[Loc, List[Tuple[int, CfgEdge]]] = {}
        for loc, edges in incoming.items():
            edges.sort(key=lambda e: (e.src, str(e.stmt)))
            indexed[loc] = [(i + 1, edge) for i, edge in enumerate(edges)]
        return indexed

    def check_reducible(self) -> None:
        """A CFG is reducible iff removing back edges leaves an acyclic graph."""
        forward_succ: Dict[Loc, List[Loc]] = {loc: [] for loc in self.reachable}
        for edge in self.forward_edges:
            if edge.src in self.reachable:
                forward_succ[edge.src].append(edge.dst)
        state: Dict[Loc, int] = {}

        def has_cycle(start: Loc) -> bool:
            stack: List[Tuple[Loc, List[Loc]]] = [(start, list(forward_succ[start]))]
            state[start] = 1
            while stack:
                node, succs = stack[-1]
                if succs:
                    nxt = succs.pop(0)
                    if state.get(nxt, 0) == 1:
                        return True
                    if state.get(nxt, 0) == 0:
                        state[nxt] = 1
                        stack.append((nxt, list(forward_succ[nxt])))
                else:
                    state[node] = 2
                    stack.pop()
            return False

        for loc in self.reachable:
            if state.get(loc, 0) == 0 and has_cycle(loc):
                raise IrreducibleCfgError(
                    "forward edges of %s contain a cycle" % (self.cfg.name,))
        # Additionally: every back edge destination must dominate its source,
        # which holds by construction of the forward/back partition.


# ---------------------------------------------------------------------------
# Lowering structured ASTs to CFGs
# ---------------------------------------------------------------------------


class CfgBuilder:
    """Lowers a structured :class:`~repro.lang.ast.Procedure` into a CFG."""

    def __init__(self, procedure: A.Procedure) -> None:
        self.procedure = procedure
        self.cfg = Cfg(procedure.name, procedure.params)

    def build(self) -> Cfg:
        """Build and return the CFG for the procedure."""
        end = self._lower_block(self.procedure.body, self.cfg.entry)
        if end is not None:
            # Implicit `return null;` when control falls off the end.
            self.cfg.add_edge(
                end,
                A.AssignStmt(A.RETURN_VARIABLE, A.NullLit()),
                self.cfg.exit,
            )
        self._prune_unreachable()
        return self.cfg

    # The lowering functions thread the "current location" through the block;
    # a return value of None means control cannot fall through (a `return`
    # was emitted on every path).

    def _lower_block(
        self, stmts: Sequence[A.Stmt], current: Loc
    ) -> Optional[Loc]:
        for index, stmt in enumerate(stmts):
            nxt = self._lower_stmt(stmt, current)
            if nxt is None:
                return None
            current = nxt
        return current

    def _lower_stmt(self, stmt: A.Stmt, current: Loc) -> Optional[Loc]:
        if isinstance(stmt, A.Assign):
            return self._chain(current, A.AssignStmt(stmt.target, stmt.value))
        if isinstance(stmt, A.ArrayAssign):
            return self._chain(
                current, A.ArrayWriteStmt(stmt.array, stmt.index, stmt.value))
        if isinstance(stmt, A.FieldAssign):
            return self._chain(
                current, A.FieldWriteStmt(stmt.base, stmt.fieldname, stmt.value))
        if isinstance(stmt, A.Print):
            return self._chain(current, A.PrintStmt(stmt.value))
        if isinstance(stmt, A.Skip):
            return self._chain(current, A.SkipStmt())
        if isinstance(stmt, A.Call):
            return self._chain(
                current, A.CallStmt(stmt.target, stmt.function, stmt.args))
        if isinstance(stmt, A.Return):
            value: A.Expr = stmt.value if stmt.value is not None else A.NullLit()
            self.cfg.add_edge(
                current, A.AssignStmt(A.RETURN_VARIABLE, value), self.cfg.exit)
            return None
        if isinstance(stmt, A.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, A.While):
            return self._lower_while(stmt, current)
        raise TypeError("cannot lower statement of type %s" % type(stmt).__name__)

    def _chain(self, current: Loc, stmt: A.AtomicStmt) -> Loc:
        nxt = self.cfg.fresh_loc()
        self.cfg.add_edge(current, stmt, nxt)
        return nxt

    def _lower_if(self, stmt: A.If, current: Loc) -> Optional[Loc]:
        join = self.cfg.fresh_loc()
        then_entry = self._chain(current, A.AssumeStmt(stmt.cond))
        then_end = self._lower_block(stmt.then_body, then_entry)
        if then_end is not None:
            self.cfg.add_edge(then_end, A.SkipStmt(), join)
        else_entry = self._chain(current, A.AssumeStmt(A.negate(stmt.cond)))
        else_end = self._lower_block(stmt.else_body, else_entry)
        if else_end is not None:
            self.cfg.add_edge(else_end, A.SkipStmt(), join)
        if then_end is None and else_end is None:
            return None
        return join

    def _lower_while(self, stmt: A.While, current: Loc) -> Loc:
        head = self._chain(current, A.SkipStmt())
        after = self.cfg.fresh_loc()
        self.cfg.add_edge(head, A.AssumeStmt(A.negate(stmt.cond)), after)
        body_entry = self._chain(head, A.AssumeStmt(stmt.cond))
        body_end = self._lower_block(stmt.body, body_entry)
        if body_end is not None:
            self.cfg.add_edge(body_end, A.SkipStmt(), head)
        return after

    def _prune_unreachable(self) -> None:
        reachable = self.cfg.reachable_locations()
        reachable.add(self.cfg.exit)
        self.cfg.edges = [
            e for e in self.cfg.edges
            if e.src in reachable and e.dst in reachable
        ]
        self.cfg.locations = {
            loc for loc in self.cfg.locations if loc in reachable
        }
        self.cfg.locations.add(self.cfg.entry)
        self.cfg.locations.add(self.cfg.exit)
        self.cfg._invalidate()


def build_cfg(procedure: A.Procedure) -> Cfg:
    """Lower ``procedure`` into a control-flow graph."""
    return CfgBuilder(procedure).build()


def build_program_cfgs(program: A.Program) -> Dict[str, Cfg]:
    """Lower every procedure in ``program`` into its own CFG."""
    return {proc.name: build_cfg(proc) for proc in program.procedures}
