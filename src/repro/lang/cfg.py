"""Control-flow graphs: the program representation analyzed by the framework.

Following Section 3 of the paper, a program is a triple ``⟨L, E, l0⟩`` of
control locations, directed statement-labelled edges, and an initial
location.  This module provides:

* :class:`Cfg` — the graph itself, with the structural analyses the DAIG
  construction of Section 4 / Appendix A needs: dominators, the partition of
  edges into *forward* and *back* edges, natural loops, loop nesting, join
  points (forward in-degree >= 2) and the per-location indexing of incoming
  forward edges (``fwd-edges-to``).
* :class:`CfgBuilder` — lowering of structured ASTs (:mod:`repro.lang.ast`)
  into CFGs, splitting branch conditions into ``assume`` edges exactly as the
  paper does for Fig. 2.
* Structural *edit* operations (insert a statement / conditional / loop after
  a location, replace an edge's statement, delete an edge) with stable
  location identity, which is what makes fine-grained incremental reuse
  possible across program versions.

Locations are small integers; fresh locations are always allocated from a
monotonically increasing counter so that edits never recycle a location name.

Derived structure is *incremental* (:mod:`repro.lang.structure`): instead of
a blanket invalidation, every edit reports a structural delta — statement
relabels patch the live analysis in place with zero dominator/loop work, and
edge insertions/removals refresh only the edit's forward-reachability
neighbourhood.  The graph additionally maintains adjacency and edge-position
indices so single edits are O(1) and continuation detach is O(out-degree)
instead of O(edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from . import ast as A
from .structure import CfgStructure, PendingDelta, StructureListener

Loc = int


@dataclass(frozen=True)
class CfgEdge:
    """A directed control-flow edge ``src --[stmt]--> dst``."""

    src: Loc
    stmt: A.AtomicStmt
    dst: Loc

    def __str__(self) -> str:
        return "%d --[%s]--> %d" % (self.src, self.stmt, self.dst)


class IrreducibleCfgError(Exception):
    """Raised when a CFG is not reducible (violates the paper's assumption)."""


class Cfg:
    """A statement-labelled control-flow graph for a single procedure.

    The graph is mutable (edits arrive as the developer types); all derived
    structural information (dominators, loops, join points, ...) lives in an
    incremental cache that edits update over their affected region only.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str] = (),
        entry: Loc = 0,
        exit_loc: Loc = 1,
    ) -> None:
        self.name = name
        self.params: Tuple[str, ...] = tuple(params)
        self.entry: Loc = entry
        self.exit: Loc = exit_loc
        self.locations: Set[Loc] = {entry, exit_loc}
        self.edges: List[CfgEdge] = []
        self._next_loc: Loc = max(entry, exit_loc) + 1
        self._out: Dict[Loc, List[CfgEdge]] = {entry: [], exit_loc: []}
        self._in: Dict[Loc, List[CfgEdge]] = {entry: [], exit_loc: []}
        self._edge_pos: Dict[CfgEdge, List[int]] = {}
        self._analysis: Optional[CfgStructure] = None
        self._pending: Optional[PendingDelta] = None
        self._listeners: List[StructureListener] = []
        self._structure_stats: Dict[str, int] = {
            "structure_full_builds": 0,
            "structure_refreshes": 0,
            "structure_locs_reanalyzed": 0,
            "structure_stmt_patches": 0,
        }
        self._structure_seconds: float = 0.0

    # -- construction -------------------------------------------------------

    def fresh_loc(self) -> Loc:
        """Allocate a new, never-before-used location."""
        loc = self._next_loc
        self._next_loc += 1
        self.locations.add(loc)
        self._out[loc] = []
        self._in[loc] = []
        self._record_structural({loc})
        return loc

    def add_edge(self, src: Loc, stmt: A.AtomicStmt, dst: Loc) -> CfgEdge:
        """Add the edge ``src --[stmt]--> dst`` (locations must exist)."""
        if src not in self.locations or dst not in self.locations:
            raise ValueError("edge endpoints must be existing locations")
        edge = CfgEdge(src, stmt, dst)
        self._edge_pos.setdefault(edge, []).append(len(self.edges))
        self.edges.append(edge)
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._record_structural({dst}, added=(edge,))
        return edge

    def remove_edge(self, edge: CfgEdge) -> None:
        self._remove_edge_object(edge)
        self._record_structural({edge.dst}, removed=(edge,))

    def copy(self) -> "Cfg":
        """Return an independent copy sharing no mutable state."""
        dup = Cfg(self.name, self.params, self.entry, self.exit)
        dup.locations = set(self.locations)
        dup.edges = list(self.edges)
        dup._next_loc = self._next_loc
        dup._rebuild_indices()
        return dup

    def _invalidate(self) -> None:
        """Discard all derived structure (wholesale-mutation fallback)."""
        self._analysis = None
        self._pending = None
        for listener in self._listeners:
            listener.note_full()

    def _rebuild_indices(self) -> None:
        """Recompute adjacency and position indices from ``self.edges``."""
        self._out = {loc: [] for loc in self.locations}
        self._in = {loc: [] for loc in self.locations}
        self._edge_pos = {}
        for position, edge in enumerate(self.edges):
            self._out[edge.src].append(edge)
            self._in[edge.dst].append(edge)
            self._edge_pos.setdefault(edge, []).append(position)

    def _reset_edges(self, edges: List[CfgEdge], locations: Set[Loc]) -> None:
        """Replace the edge/location sets wholesale (used by pruning)."""
        self.edges = list(edges)
        self.locations = set(locations)
        self._rebuild_indices()
        self._invalidate()

    # -- delta recording -----------------------------------------------------

    def add_structure_listener(self, listener: StructureListener) -> None:
        """Subscribe a consumer (e.g. a DAIG engine's structure snapshot)
        to the affected regions of future structural refreshes."""
        self._listeners.append(listener)

    def remove_structure_listener(self, listener: StructureListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _record_structural(
        self,
        seeds: Set[Loc],
        added: Iterable[CfgEdge] = (),
        removed: Iterable[CfgEdge] = (),
    ) -> None:
        if self._analysis is None:
            return  # next query builds from scratch (and reports `full`)
        pending = self._pending
        if pending is None:
            pending = self._pending = PendingDelta()
        pending.seeds |= seeds
        pending.added_edges.extend(added)
        pending.removed_edges.extend(removed)

    def _record_stmt_patch(self, old: CfgEdge, new: CfgEdge) -> None:
        self._structure_stats["structure_stmt_patches"] += 1
        if self._analysis is not None:
            if self._pending is not None:
                self._pending.stmt_patches.append((old, new))
            else:
                self._analysis.patch_stmt(old, new)
        for listener in self._listeners:
            listener.note_region({new.dst}, set())

    # -- low-level edge surgery (O(degree), via the position index) ----------

    def _positions_of(self, edge: CfgEdge) -> List[int]:
        positions = self._edge_pos.get(edge)
        if not positions:
            raise ValueError("edge not in CFG: %s" % (edge,))
        return positions

    def _remove_edge_object(self, edge: CfgEdge) -> None:
        positions = self._positions_of(edge)
        position = positions.pop()
        if not positions:
            del self._edge_pos[edge]
        last = self.edges.pop()
        if position < len(self.edges):
            self.edges[position] = last
            moved = self._edge_pos[last]
            moved.remove(len(self.edges))
            moved.append(position)
        self._out[edge.src].remove(edge)
        self._in[edge.dst].remove(edge)

    def _replace_edge_object(self, edge: CfgEdge, new_edge: CfgEdge) -> None:
        positions = self._positions_of(edge)
        position = positions.pop()
        if not positions:
            del self._edge_pos[edge]
        self.edges[position] = new_edge
        self._edge_pos.setdefault(new_edge, []).append(position)
        out = self._out[edge.src]
        if edge.src == new_edge.src:
            out[out.index(edge)] = new_edge
        else:
            out.remove(edge)
            self._out[new_edge.src].append(new_edge)
        incoming = self._in[edge.dst]
        if edge.dst == new_edge.dst:
            incoming[incoming.index(edge)] = new_edge
        else:
            incoming.remove(edge)
            self._in[new_edge.dst].append(new_edge)

    # -- basic queries -------------------------------------------------------

    def out_edges(self, loc: Loc) -> List[CfgEdge]:
        return list(self._out.get(loc, ()))

    def in_edges(self, loc: Loc) -> List[CfgEdge]:
        return list(self._in.get(loc, ()))

    def successors(self, loc: Loc) -> List[Loc]:
        return [e.dst for e in self._out.get(loc, ())]

    def predecessors(self, loc: Loc) -> List[Loc]:
        return [e.src for e in self._in.get(loc, ())]

    def statements(self) -> List[A.AtomicStmt]:
        return [e.stmt for e in self.edges]

    def size(self) -> int:
        """Number of statement edges — the "program size" axis of Fig. 10."""
        return len(self.edges)

    def variables(self) -> Set[str]:
        """All variable names mentioned anywhere in the procedure."""
        out: Set[str] = set(self.params)
        out.add(A.RETURN_VARIABLE)
        for edge in self.edges:
            out |= set(edge.stmt.variables())
        return out

    # -- structural analyses -------------------------------------------------

    def _analyze(self) -> CfgStructure:
        if self._analysis is None:
            self._analysis = CfgStructure(self)
            for listener in self._listeners:
                listener.note_full()
        elif self._pending is not None:
            pending, self._pending = self._pending, None
            full, sig_suspects, head_suspects = self._analysis.refresh(pending)
            for listener in self._listeners:
                if full:
                    listener.note_full()
                else:
                    listener.note_region(sig_suspects, head_suspects)
        return self._analysis

    def ensure_structure(self) -> None:
        """Force any pending structural delta to be applied now."""
        self._analyze()

    def structure_stats(self) -> Dict[str, int]:
        """Cumulative structure-phase work counters for this program."""
        return dict(self._structure_stats)

    def structure_seconds(self) -> float:
        """Cumulative wall-clock time spent maintaining derived structure."""
        return self._structure_seconds

    def reachable_locations(self) -> Set[Loc]:
        """The set of locations reachable from the entry (live view —
        callers must not mutate it)."""
        return self._analyze().reachable

    def dominators(self) -> Dict[Loc, Set[Loc]]:
        """Map each reachable location to the set of its dominators."""
        return self._analyze().dominators

    def dominates(self, a: Loc, b: Loc) -> bool:
        return a in self._analyze().dominators.get(b, set())

    def back_edges(self) -> List[CfgEdge]:
        """Edges ``u --> v`` where ``v`` dominates ``u`` (loop back edges)."""
        return self._analyze().back_edges()

    def forward_edges(self) -> List[CfgEdge]:
        return self._analyze().forward_edges()

    def is_back_edge(self, edge: CfgEdge) -> bool:
        return self._analyze().is_back_edge(edge)

    def loop_heads(self) -> List[Loc]:
        """Destinations of back edges, in a deterministic order."""
        return self._analyze().loop_heads

    def is_loop_head(self, loc: Loc) -> bool:
        """O(1) loop-head membership (the list scan is O(#loops))."""
        return loc in self._analyze().natural_loops

    def natural_loop(self, head: Loc) -> Set[Loc]:
        """The natural loop (body location set, including ``head``) of a head."""
        return self._analyze().natural_loops.get(head, set())

    def containing_loop_heads(self, loc: Loc) -> Tuple[Loc, ...]:
        """Loop heads whose natural loop contains ``loc``, outermost first."""
        return self._analyze().containing.get(loc, ())

    def in_any_loop(self, loc: Loc) -> bool:
        return bool(self.containing_loop_heads(loc))

    def join_points(self) -> Set[Loc]:
        """Locations with forward in-degree >= 2 (the paper's ``L⊔``)."""
        return self._analyze().join_points

    def fwd_edges_to(self, loc: Loc) -> List[Tuple[int, CfgEdge]]:
        """Incoming *forward* edges of ``loc``, paired with 1-based indices.

        The indices are what disambiguate the pre-join reference cells
        ``i·n_ℓ`` in the DAIG encoding of control-flow joins.
        """
        return self._analyze().fwd_edges_to.get(loc, [])

    def back_edges_to(self, loc: Loc) -> List[CfgEdge]:
        return self._analyze().back_edges_to(loc)

    def reverse_postorder(self) -> List[Loc]:
        """Reverse postorder over forward edges (a topological order)."""
        return self._analyze().reverse_postorder()

    def loop_exit_violations(self) -> List[Tuple[CfgEdge, Loc]]:
        """Forward edges leaving a natural loop from a non-head location,
        paired with the violated loop head (maintained incrementally)."""
        analysis = self._analyze()
        return sorted(
            analysis.bad_loop_exits.items(),
            key=lambda item: (item[0].src, item[0].dst, str(item[0].stmt)))

    def check_reducible(self) -> None:
        """Raise :class:`IrreducibleCfgError` if the graph is irreducible."""
        if self._analyze().has_forward_cycle:
            raise IrreducibleCfgError(
                "forward edges of %s contain a cycle" % (self.name,))

    def is_reducible(self) -> bool:
        try:
            self.check_reducible()
            return True
        except IrreducibleCfgError:
            return False

    # -- edits ----------------------------------------------------------------

    def replace_edge_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace the statement labelling an existing edge (in-place edit).

        This is a *statement-only* edit: the edge's endpoints are unchanged,
        so no dominator, loop, or reachability recomputation happens at all.
        """
        new_edge = CfgEdge(edge.src, stmt, edge.dst)
        if new_edge == edge:
            self._positions_of(edge)  # raises when the edge is unknown
            return edge
        self._replace_edge_object(edge, new_edge)
        self._record_stmt_patch(edge, new_edge)
        return new_edge

    def delete_edge_statement(self, edge: CfgEdge) -> CfgEdge:
        """Delete a statement by replacing it with ``skip`` (paper, Lemma B.2)."""
        return self.replace_edge_statement(edge, A.SkipStmt())

    def _detach_continuation(self, loc: Loc) -> Loc:
        """Create a continuation location taking over ``loc``'s out-edges.

        Every statement insertion works by splicing new structure between
        ``loc`` and the returned continuation location.

        When ``loc`` is a loop head, only the edges that stay inside its
        natural loop are moved: the loop-exit edge keeps originating at the
        head, preserving the invariant — relied upon by the DAIG encoding of
        back edges (Fig. 7) — that control leaves a loop only through its
        head.  The inserted code therefore runs on every iteration, which is
        what "inserting just inside the loop" means.
        """
        moved = self.out_edges(loc)
        if self.is_loop_head(loc):
            loop = self.natural_loop(loc)
            moved = [edge for edge in moved if edge.dst in loop]
        cont = self.fresh_loc()
        for edge in moved:
            new_edge = CfgEdge(cont, edge.stmt, edge.dst)
            self._replace_edge_object(edge, new_edge)
            self._record_structural(
                {edge.dst}, added=(new_edge,), removed=(edge,))
        return cont

    def insert_statement_after(self, loc: Loc, stmt: A.AtomicStmt) -> Loc:
        """Insert a single atomic statement immediately after ``loc``.

        Returns the newly created continuation location.
        """
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        self.add_edge(loc, stmt, cont)
        return cont

    def insert_conditional_after(
        self,
        loc: Loc,
        cond: A.Expr,
        then_stmts: Sequence[A.AtomicStmt],
        else_stmts: Sequence[A.AtomicStmt] = (),
    ) -> Loc:
        """Insert ``if (cond) { then } else { else }`` after ``loc``."""
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        self._build_branch(loc, A.AssumeStmt(cond), then_stmts, cont)
        self._build_branch(loc, A.AssumeStmt(A.negate(cond)), else_stmts, cont)
        return cont

    def insert_loop_after(
        self,
        loc: Loc,
        cond: A.Expr,
        body_stmts: Sequence[A.AtomicStmt],
    ) -> Loc:
        """Insert ``while (cond) { body }`` after ``loc``.

        A fresh loop head is always created so that no location ever becomes
        the head of two distinct loops (keeping one back edge per head, as the
        paper assumes for reducible CFGs).
        """
        self._require_insertion_point(loc)
        cont = self._detach_continuation(loc)
        head = self.fresh_loc()
        self.add_edge(loc, A.SkipStmt(), head)
        self.add_edge(head, A.AssumeStmt(A.negate(cond)), cont)
        # Loop body: head --assume(cond)--> ... --last--> head (back edge).
        body = list(body_stmts) if body_stmts else [A.SkipStmt()]
        current = head
        current_stmt: A.AtomicStmt = A.AssumeStmt(cond)
        for stmt in body:
            nxt = self.fresh_loc()
            self.add_edge(current, current_stmt, nxt)
            current, current_stmt = nxt, stmt
        self.add_edge(current, current_stmt, head)
        return cont

    def _build_branch(
        self,
        src: Loc,
        first: A.AtomicStmt,
        stmts: Sequence[A.AtomicStmt],
        join: Loc,
    ) -> None:
        current = src
        current_stmt = first
        for stmt in stmts:
            nxt = self.fresh_loc()
            self.add_edge(current, current_stmt, nxt)
            current, current_stmt = nxt, stmt
        self.add_edge(current, current_stmt, join)

    def _require_insertion_point(self, loc: Loc) -> None:
        if loc not in self.locations:
            raise ValueError("unknown location %r" % (loc,))
        if loc == self.exit:
            raise ValueError("cannot insert code after the exit location")

    def insertion_points(self) -> List[Loc]:
        """Locations where the edit workload may insert code."""
        reachable = self.reachable_locations()
        return sorted(loc for loc in reachable if loc != self.exit)

    # -- misc -----------------------------------------------------------------

    def pretty(self) -> str:
        """A readable multi-line rendering of the graph."""
        lines = ["cfg %s(%s)  entry=%d exit=%d" % (
            self.name, ", ".join(self.params), self.entry, self.exit)]
        for edge in sorted(self.edges, key=lambda e: (e.src, e.dst, str(e.stmt))):
            lines.append("  %s" % (edge,))
        return "\n".join(lines)

    def __str__(self) -> str:
        return "Cfg(%s, %d locations, %d edges)" % (
            self.name, len(self.locations), len(self.edges))


# ---------------------------------------------------------------------------
# Lowering structured ASTs to CFGs
# ---------------------------------------------------------------------------


class CfgBuilder:
    """Lowers a structured :class:`~repro.lang.ast.Procedure` into a CFG."""

    def __init__(self, procedure: A.Procedure) -> None:
        self.procedure = procedure
        self.cfg = Cfg(procedure.name, procedure.params)

    def build(self) -> Cfg:
        """Build and return the CFG for the procedure."""
        end = self._lower_block(self.procedure.body, self.cfg.entry)
        if end is not None:
            # Implicit `return null;` when control falls off the end.
            self.cfg.add_edge(
                end,
                A.AssignStmt(A.RETURN_VARIABLE, A.NullLit()),
                self.cfg.exit,
            )
        self._prune_unreachable()
        return self.cfg

    # The lowering functions thread the "current location" through the block;
    # a return value of None means control cannot fall through (a `return`
    # was emitted on every path).

    def _lower_block(
        self, stmts: Sequence[A.Stmt], current: Loc
    ) -> Optional[Loc]:
        for index, stmt in enumerate(stmts):
            nxt = self._lower_stmt(stmt, current)
            if nxt is None:
                return None
            current = nxt
        return current

    def _lower_stmt(self, stmt: A.Stmt, current: Loc) -> Optional[Loc]:
        if isinstance(stmt, A.Assign):
            return self._chain(current, A.AssignStmt(stmt.target, stmt.value))
        if isinstance(stmt, A.ArrayAssign):
            return self._chain(
                current, A.ArrayWriteStmt(stmt.array, stmt.index, stmt.value))
        if isinstance(stmt, A.FieldAssign):
            return self._chain(
                current, A.FieldWriteStmt(stmt.base, stmt.fieldname, stmt.value))
        if isinstance(stmt, A.Print):
            return self._chain(current, A.PrintStmt(stmt.value))
        if isinstance(stmt, A.Skip):
            return self._chain(current, A.SkipStmt())
        if isinstance(stmt, A.Call):
            return self._chain(
                current, A.CallStmt(stmt.target, stmt.function, stmt.args))
        if isinstance(stmt, A.Return):
            value: A.Expr = stmt.value if stmt.value is not None else A.NullLit()
            self.cfg.add_edge(
                current, A.AssignStmt(A.RETURN_VARIABLE, value), self.cfg.exit)
            return None
        if isinstance(stmt, A.If):
            return self._lower_if(stmt, current)
        if isinstance(stmt, A.While):
            return self._lower_while(stmt, current)
        raise TypeError("cannot lower statement of type %s" % type(stmt).__name__)

    def _chain(self, current: Loc, stmt: A.AtomicStmt) -> Loc:
        nxt = self.cfg.fresh_loc()
        self.cfg.add_edge(current, stmt, nxt)
        return nxt

    def _lower_if(self, stmt: A.If, current: Loc) -> Optional[Loc]:
        join = self.cfg.fresh_loc()
        then_entry = self._chain(current, A.AssumeStmt(stmt.cond))
        then_end = self._lower_block(stmt.then_body, then_entry)
        if then_end is not None:
            self.cfg.add_edge(then_end, A.SkipStmt(), join)
        else_entry = self._chain(current, A.AssumeStmt(A.negate(stmt.cond)))
        else_end = self._lower_block(stmt.else_body, else_entry)
        if else_end is not None:
            self.cfg.add_edge(else_end, A.SkipStmt(), join)
        if then_end is None and else_end is None:
            return None
        return join

    def _lower_while(self, stmt: A.While, current: Loc) -> Loc:
        head = self._chain(current, A.SkipStmt())
        after = self.cfg.fresh_loc()
        self.cfg.add_edge(head, A.AssumeStmt(A.negate(stmt.cond)), after)
        body_entry = self._chain(head, A.AssumeStmt(stmt.cond))
        body_end = self._lower_block(stmt.body, body_entry)
        if body_end is not None:
            self.cfg.add_edge(body_end, A.SkipStmt(), head)
        return after

    def _prune_unreachable(self) -> None:
        reachable = set(self.cfg.reachable_locations())
        reachable.add(self.cfg.exit)
        edges = [
            e for e in self.cfg.edges
            if e.src in reachable and e.dst in reachable
        ]
        locations = {loc for loc in self.cfg.locations if loc in reachable}
        locations.add(self.cfg.entry)
        locations.add(self.cfg.exit)
        self.cfg._reset_edges(edges, locations)


def build_cfg(procedure: A.Procedure) -> Cfg:
    """Lower ``procedure`` into a control-flow graph."""
    return CfgBuilder(procedure).build()


def build_program_cfgs(program: A.Program) -> Dict[str, Cfg]:
    """Lower every procedure in ``program`` into its own CFG."""
    return {proc.name: build_cfg(proc) for proc in program.procedures}
