"""A corpus of subject programs used by the examples, tests, and benchmarks.

Three groups of programs mirror the paper's evaluation subjects:

* :data:`APPEND_SOURCE` — the linked-list ``append`` procedure of Fig. 1,
  the running example verified by the shape analysis.
* :data:`LIST_PROGRAMS` — further singly-linked-list utilities modelled on
  the Buckets.js linked-list module (``foreach``, ``indexOf``, ``length``,
  ...), used by the Section 7.2 shape-analysis experiment.
* :data:`ARRAY_PROGRAMS` — 23 array-manipulating programs modelled on the
  Buckets.js test suite (``contains``, ``equals``, ``swap``, ``indexOf``,
  ...), containing 85 array accesses in total, used by the Section 7.2
  interval-analysis experiment.  Helper procedures are deliberately shared
  between call sites with different argument ranges so that verification
  precision depends on the context-sensitivity policy, as in the paper.

All programs are written in the JavaScript-like source syntax and parsed with
:mod:`repro.lang.parser`, so they double as parser integration tests.
"""

from __future__ import annotations

from typing import Dict

from .ast import Program
from .parser import parse_program

# ---------------------------------------------------------------------------
# The paper's running example (Fig. 1)
# ---------------------------------------------------------------------------

APPEND_SOURCE = """
function append(p, q) {
  if (p == null) {
    return q;
  }
  var r = p;
  while (r.next != null) {
    r = r.next;
  }
  r.next = q;
  return p;
}
"""


def append_program() -> Program:
    """The ``append`` procedure of Fig. 1 as a one-procedure program."""
    return parse_program(APPEND_SOURCE, entry="append")


# ---------------------------------------------------------------------------
# Linked-list utilities (Section 7.2 shape-analysis subjects)
# ---------------------------------------------------------------------------

LIST_PROGRAMS: Dict[str, str] = {
    "append": APPEND_SOURCE,
    "foreach": """
function foreach(lst) {
  var cur = lst;
  while (cur != null) {
    print(cur.data);
    cur = cur.next;
  }
  return lst;
}
""",
    "indexof": """
function indexof(lst, target) {
  var cur = lst;
  var i = 0;
  var found = 0 - 1;
  while (cur != null) {
    if (cur.data == target) {
      if (found < 0) {
        found = i;
      }
    }
    i = i + 1;
    cur = cur.next;
  }
  return found;
}
""",
    "length": """
function length(lst) {
  var cur = lst;
  var n = 0;
  while (cur != null) {
    n = n + 1;
    cur = cur.next;
  }
  return n;
}
""",
    "prepend": """
function prepend(lst, value) {
  var node = new();
  node.data = value;
  node.next = lst;
  return node;
}
""",
    "last": """
function last(lst) {
  if (lst == null) {
    return null;
  }
  var cur = lst;
  while (cur.next != null) {
    cur = cur.next;
  }
  return cur;
}
""",
    "build": """
function build(n) {
  var lst = null;
  var i = 0;
  while (i < n) {
    var node = new();
    node.data = i;
    node.next = lst;
    lst = node;
    i = i + 1;
  }
  return lst;
}
""",
}


def list_program(name: str) -> Program:
    """Parse one of the linked-list subject programs by name."""
    return parse_program(LIST_PROGRAMS[name], entry=name)


# ---------------------------------------------------------------------------
# Array-manipulating programs (Section 7.2 interval-analysis subjects)
# ---------------------------------------------------------------------------
#
# Shared helpers: `get`, `getFirst`, `getLast`, and `inRangeRead` are called
# from many programs with different argument ranges.  Under a context-
# insensitive policy the argument intervals of all call sites are joined,
# which defeats most bounds proofs; 1- and 2-call-site sensitivity restore
# them, reproducing the precision staircase reported in the paper.

_ARRAY_HELPERS = """
function get(a, i) {
  var v = a[i];
  return v;
}

function getFirst(a) {
  var v = a[0];
  return v;
}

function getLast(a) {
  var n = a.length;
  var v = a[n - 1];
  return v;
}

function inRangeRead(a, i) {
  var v = 0;
  if (i >= 0) {
    if (i < a.length) {
      v = a[i];
    }
  }
  return v;
}

function pick(a, i) {
  var v = get(a, i);
  return v;
}
"""

ARRAY_PROGRAMS: Dict[str, str] = {
    # 1 -------------------------------------------------------------- contains
    "contains": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4, 5];
  var target = 3;
  var i = 0;
  var found = 0;
  while (i < a.length) {
    var v = a[i];
    if (v == target) {
      found = 1;
    }
    i = i + 1;
  }
  return found;
}
""",
    # 2 ---------------------------------------------------------------- equals
    "equals": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4];
  var b = [1, 2, 3, 4];
  var i = 0;
  var same = 1;
  while (i < a.length) {
    var x = a[i];
    var y = b[i];
    if (x != y) {
      same = 0;
    }
    i = i + 1;
  }
  return same;
}
""",
    # 3 ------------------------------------------------------------------ swap
    "swap": _ARRAY_HELPERS + """
function main() {
  var a = [10, 20, 30, 40, 50, 60];
  var i = 1;
  var j = 4;
  var tmp = a[i];
  a[i] = a[j];
  a[j] = tmp;
  return a[i];
}
""",
    # 4 --------------------------------------------------------------- indexof
    "indexof": _ARRAY_HELPERS + """
function main() {
  var a = [5, 6, 7, 8];
  var target = 7;
  var i = 0;
  var found = 0 - 1;
  while (i < a.length) {
    var v = a[i];
    if (v == target) {
      if (found < 0) {
        found = i;
      }
    }
    i = i + 1;
  }
  return found;
}
""",
    # 5 ----------------------------------------------------------- lastindexof
    "lastindexof": _ARRAY_HELPERS + """
function main() {
  var a = [5, 6, 7, 6, 5];
  var target = 6;
  var i = a.length - 1;
  var found = 0 - 1;
  while (i >= 0) {
    var v = a[i];
    if (v == target) {
      if (found < 0) {
        found = i;
      }
    }
    i = i - 1;
  }
  return found;
}
""",
    # 6 ------------------------------------------------------------------- sum
    "sum": _ARRAY_HELPERS + """
function main() {
  var a = [1, 1, 2, 3, 5, 8];
  var i = 0;
  var total = 0;
  while (i < a.length) {
    total = total + a[i];
    i = i + 1;
  }
  return total;
}
""",
    # 7 ------------------------------------------------------------------- max
    "max": _ARRAY_HELPERS + """
function main() {
  var a = [4, 9, 2, 7];
  var best = a[0];
  var i = 1;
  while (i < a.length) {
    var v = a[i];
    if (v > best) {
      best = v;
    }
    i = i + 1;
  }
  return best;
}
""",
    # 8 ------------------------------------------------------------------- min
    "min": _ARRAY_HELPERS + """
function main() {
  var a = [4, 9, 2, 7];
  var best = a[0];
  var i = 1;
  while (i < a.length) {
    var v = a[i];
    if (v < best) {
      best = v;
    }
    i = i + 1;
  }
  return best;
}
""",
    # 9 --------------------------------------------------------------- reverse
    "reverse": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4, 5, 6, 7, 8];
  var i = 0;
  var j = a.length - 1;
  while (i < j) {
    var tmp = a[i];
    a[i] = a[j];
    a[j] = tmp;
    i = i + 1;
    j = j - 1;
  }
  return a[0];
}
""",
    # 10 ----------------------------------------------------------------- fill
    "fill": _ARRAY_HELPERS + """
function main() {
  var a = [0, 0, 0, 0, 0, 0, 0];
  var i = 0;
  while (i < a.length) {
    a[i] = 42;
    i = i + 1;
  }
  return a[0];
}
""",
    # 11 ----------------------------------------------------------------- copy
    "copy": _ARRAY_HELPERS + """
function main() {
  var a = [9, 8, 7, 6];
  var b = [0, 0, 0, 0];
  var i = 0;
  while (i < a.length) {
    b[i] = a[i];
    i = i + 1;
  }
  return b[0];
}
""",
    # 12 ---------------------------------------------------------------- count
    "count": _ARRAY_HELPERS + """
function main() {
  var a = [1, 0, 1, 1, 0, 1];
  var i = 0;
  var n = 0;
  while (i < a.length) {
    if (a[i] == 1) {
      n = n + 1;
    }
    i = i + 1;
  }
  return n;
}
""",
    # 13 ---------------------------------------------------------- first_last
    "first_last": _ARRAY_HELPERS + """
function main() {
  var a = [3, 1, 4, 1, 5];
  var first = getFirst(a);
  var last = getLast(a);
  return first + last;
}
""",
    # 14 ---------------------------------------------------------- get_helper
    "get_helper": _ARRAY_HELPERS + """
function main() {
  var a = [2, 4, 6, 8];
  var x = get(a, 0);
  var y = get(a, 3);
  return x + y;
}
""",
    # 15 ------------------------------------------------------------ get_mixed
    "get_mixed": _ARRAY_HELPERS + """
function main() {
  var a = [2, 4, 6, 8];
  var b = [1, 2];
  var x = get(a, 3);
  var y = get(b, 1);
  return x + y;
}
""",
    # 16 ----------------------------------------------------------- safe_reads
    "safe_reads": _ARRAY_HELPERS + """
function main() {
  var a = [7, 7, 7];
  var i = 0;
  var total = 0;
  while (i < 3) {
    var v = inRangeRead(a, i);
    total = total + v;
    i = i + 1;
  }
  var w = inRangeRead(a, 10);
  total = total + w;
  return total;
}
""",
    # 17 ----------------------------------------------------------- sliding_sum
    "sliding_sum": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4, 5, 6];
  var i = 1;
  var total = 0;
  while (i < a.length - 1) {
    total = total + a[i - 1] + a[i] + a[i + 1];
    i = i + 1;
  }
  return total;
}
""",
    # 18 ------------------------------------------------------------ dot_product
    "dot_product": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3];
  var b = [4, 5, 6];
  var i = 0;
  var total = 0;
  while (i < a.length) {
    total = total + a[i] * b[i];
    i = i + 1;
  }
  return total;
}
""",
    # 19 --------------------------------------------------------------- shift
    "shift": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4, 5];
  var i = 0;
  while (i < a.length - 1) {
    a[i] = a[i + 1];
    i = i + 1;
  }
  return a[0];
}
""",
    # 20 -------------------------------------------------------------- histogram
    "histogram": _ARRAY_HELPERS + """
function main() {
  var data = [0, 2, 1, 2, 0, 1];
  var bins = [0, 0, 0];
  var i = 0;
  while (i < data.length) {
    var v = data[i];
    if (v >= 0) {
      if (v < bins.length) {
        bins[v] = bins[v] + 1;
      }
    }
    i = i + 1;
  }
  return bins[0];
}
""",
    # 21 -------------------------------------------------------------- peek_ends
    # `pick` routes its accesses through a two-deep call chain, so verifying
    # them requires 2-call-site sensitivity (1-call-site merges the two
    # `pick` call sites at the inner `get`).
    "peek_ends": _ARRAY_HELPERS + """
function main() {
  var small = [1, 2];
  var big = [1, 2, 3, 4, 5, 6, 7];
  var x = getFirst(small);
  var y = getLast(big);
  var w = pick(small, 1);
  var z = pick(big, 5);
  return x + y + w + z;
}
""",
    # 22 ------------------------------------------------------------ interleave
    "interleave": _ARRAY_HELPERS + """
function main() {
  var a = [1, 2, 3, 4];
  var b = [0, 0, 0, 0, 0, 0, 0, 0];
  var i = 0;
  while (i < a.length) {
    b[2 * i] = a[i];
    i = i + 1;
  }
  return b[0];
}
""",
    # 23 ---------------------------------------------------------- bounded_walk
    "bounded_walk": _ARRAY_HELPERS + """
function main() {
  var a = [5, 4, 3, 2, 1];
  var i = 0;
  var steps = 0;
  while (steps < 10) {
    var v = inRangeRead(a, i);
    i = i + v;
    if (i >= a.length) {
      i = 0;
    }
    steps = steps + 1;
  }
  return i;
}
""",
}


def array_program(name: str) -> Program:
    """Parse one of the array-manipulating subject programs by name."""
    return parse_program(ARRAY_PROGRAMS[name], entry="main")


def all_array_programs() -> Dict[str, Program]:
    """Parse the full array suite (used by the Section 7.2 benchmark)."""
    return {name: array_program(name) for name in sorted(ARRAY_PROGRAMS)}


def all_list_programs() -> Dict[str, Program]:
    """Parse the full linked-list suite."""
    return {name: list_program(name) for name in sorted(LIST_PROGRAMS)}


def wide_call_graph_source(width: int, inner_loops: int = 3,
                           bound: int = 40) -> str:
    """Source of the wide-call-graph parallel-evaluation subject program.

    ``main`` calls ``width`` independent loop-bearing workers, one call
    site each, with literal arguments — the shape the SCC-wave scheduler
    is best at: every worker lands in the same condensation wave, their
    summary jobs share no call path, and literal arguments make entry
    speculation exact, so all ``width`` jobs dispatch concurrently and
    certify.  Each worker carries ``inner_loops`` *nested* loop pairs
    with branching bodies (bounds staggered per worker): the inner fixed
    point re-converges once per outer iterate, so demanded evaluation
    cost grows much faster than DAIG size — exactly the regime where
    shipping evaluation to workers pays, because the coordinator's
    serial per-procedure cost (structure + DAIG construction) stays
    proportional to size.  Shared by ``benchmarks/bench_parallel.py``
    and the parallel tests.
    """
    parts = []
    for i in range(width):
        lines = ["function work%d(n) {" % i, "  var acc = n;"]
        for j in range(inner_loops):
            limit = bound + 7 * i + 3 * j
            lines.append("  var j%d = 0;" % j)
            lines.append("  while (j%d < %d) {" % (j, limit))
            lines.append("    var k%d = 0;" % j)
            lines.append("    while (k%d < %d) {" % (j, limit // 2 + 1))
            lines.append("      var m%d = 0;" % j)
            lines.append("      while (m%d < %d) {" % (j, limit // 3 + 1))
            lines.append("        var t%d = acc + m%d;" % (j, j))
            lines.append("        if (t%d > %d) { acc = acc - 1; }"
                         " else { acc = acc + 2; }" % (j, limit // 2))
            lines.append("        m%d = m%d + 1;" % (j, j))
            lines.append("      }")
            lines.append("      k%d = k%d + 1;" % (j, j))
            lines.append("    }")
            lines.append("    j%d = j%d + 1;" % (j, j))
            lines.append("  }")
        lines.append("  return acc;")
        lines.append("}")
        parts.append("\n".join(lines))
    calls = ["  var s = 0;"]
    for i in range(width):
        calls.append("  var r%d = work%d(%d);" % (i, i, i))
        calls.append("  s = s + r%d;" % i)
    parts.append("function main() {\n%s\n  return s;\n}" % "\n".join(calls))
    return "\n".join(parts)


def bystander_source(bystanders: int) -> str:
    """Source of the cross-procedure edit-locality subject program.

    ``main`` calls one ``leaf`` (the edit target) plus ``bystanders``
    unrelated helpers: only the single ``leaf`` call site depends on leaf
    edits, so the dependent-call-site work of a leaf edit must stay
    constant as ``bystanders`` grows.  Shared by the interprocedural
    locality benchmark and its unit tests so both assert on the same
    program shape.
    """
    parts = ["function leaf(x) { var r = x + 1; return r; }"]
    for i in range(bystanders):
        parts.append("function by%d(x) { var b = x * 2; return b; }" % i)
    calls = ["  var l = leaf(1);"]
    for i in range(bystanders):
        calls.append("  var c%d = by%d(%d);" % (i, i, i))
    parts.append("function main() {\n%s\n  return l;\n}" % "\n".join(calls))
    return "\n".join(parts)
