"""The incremental CFG structure cache: O(affected-region) edit latency.

Before this layer existed, every CFG mutation called a blanket
``_invalidate()`` and the next structural query recomputed *everything*
(reachability, dominators, the forward/back edge partition, natural loops,
loop nesting, join points) from scratch — an O(program) pass per edit that
dominated edit latency once the DAIG side became incremental.

This module replaces that with a *live* analysis object
(:class:`CfgStructure`) that is updated in place from **structural deltas**
reported by the CFG's edit operations:

* **Statement-only edits** (relabelling an existing edge in place) perform
  *zero* dominator/loop work: the only derived structure that can change is
  the ``fwd-edges-to`` index of the edge's destination (the pre-join indices
  sort on statement text), which is re-sorted in O(in-degree).
* **Structural edits** (edge added / removed / retargeted, fresh location)
  accumulate into a :class:`PendingDelta`; the next structural query
  refreshes the analysis over the edit's *affected region* only — the
  forward-reachability closure ``R`` of the changed edges' destinations.
  Dominator sets are recomputed only for ``R`` (locations outside ``R``
  cannot gain or lose entry-paths through the edit, so their dominators are
  provably unchanged); natural loops are recomputed only for heads whose
  body intersects ``R`` or whose back-edge set changed; the loop-exit
  validity map and the forward-cycle (reducibility) check are likewise
  confined to the region.
* **Fallbacks that defeat locality** — wholesale edge-list replacement
  (``Cfg._invalidate``), a graph already known to be irreducible, or a
  region covering most of the program — take a from-scratch rebuild, and
  the counters say so.

Listeners (the DAIG engine's live :class:`~repro.daig.splice.StructureSnapshot`)
subscribe to refresh *regions*: every refresh reports the set of locations
whose encoding signature may have changed and the loop heads whose loop
signature may have changed, so downstream caches can be updated in place
over the same affected region instead of re-walking the whole CFG.

Correctness rests on one closure argument, used throughout: every changed
edge has its destination in the delta's seed set, and ``R`` is the
forward closure of the seeds (over the union of old and new edges — removed
edges contribute their destination as a seed directly).  Any path that uses
a changed edge continues from that edge's destination, so only locations
reachable from a seed can see a changed set of entry-paths; and since ``R``
is successor-closed, no edge leaves ``R``.  Everything outside ``R`` keeps
its reachability, dominators, and (absent loop-body changes) loop nesting.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .cfg import Cfg, CfgEdge

Loc = int
EdgePair = Tuple[Loc, Loc]


@dataclass
class PendingDelta:
    """Structural changes recorded since the analysis last refreshed.

    ``seeds`` holds the destinations of every added/removed/retargeted edge
    plus every freshly allocated location — the roots of the affected
    region.  ``added_edges`` and ``removed_edges`` let the refresh classify
    (and loop-exit-check) edges whose *source* lies outside the region and
    drop stale entries keyed by removed edge objects.  ``stmt_patches``
    carries statement relabels that arrived while a structural refresh was
    already pending (they are re-applied after the regional rebuild).
    ``full`` requests a from-scratch rebuild.
    """

    seeds: Set[Loc] = field(default_factory=set)
    added_edges: List["CfgEdge"] = field(default_factory=list)
    removed_edges: List["CfgEdge"] = field(default_factory=list)
    stmt_patches: List[Tuple["CfgEdge", "CfgEdge"]] = field(default_factory=list)
    full: bool = False


class StructureListener:
    """A mailbox accumulating refresh regions between consumer syncs.

    The DAIG engine registers one of these on its CFG; each analysis
    refresh (or statement patch) deposits the affected region, and the
    engine drains the union when it synchronizes its structure snapshot.
    """

    def __init__(self) -> None:
        self.full = False
        self.sig_suspects: Set[Loc] = set()
        self.head_suspects: Set[Loc] = set()

    def note_full(self) -> None:
        self.full = True
        self.sig_suspects.clear()
        self.head_suspects.clear()

    def note_region(self, sig_suspects: Set[Loc], head_suspects: Set[Loc]) -> None:
        if self.full:
            return
        self.sig_suspects |= sig_suspects
        self.head_suspects |= head_suspects

    def drain(self) -> Tuple[bool, Set[Loc], Set[Loc]]:
        out = (self.full, self.sig_suspects, self.head_suspects)
        self.full = False
        self.sig_suspects = set()
        self.head_suspects = set()
        return out


#: Fraction of the location set beyond which a region refresh falls back to
#: a from-scratch rebuild (the constant-factor win of incrementality is gone
#: once nearly everything is dirty anyway).
_REBUILD_FRACTION = 0.75


class CfgStructure:
    """Live derived structural facts about a CFG, updated from deltas.

    Exposes the same facts as the old from-scratch ``_CfgAnalysis``
    (``reachable``, ``dominators``, loop structure, ``fwd_edges_to``,
    ``join_points``) plus O(1) reducibility and loop-exit validity, flat
    forward/back edge lists (derived lazily from the per-edge
    classification), and work counters for the benchmark layer.
    """

    def __init__(self, cfg: "Cfg") -> None:
        self.cfg = cfg
        # Work counters and time live on the CFG so they survive fallback
        # rebuilds and report cumulatively per program, not per cache.
        self.stats = cfg._structure_stats
        self.reachable: Set[Loc] = set()
        self.dominators: Dict[Loc, Set[Loc]] = {}
        self.back_pairs: Set[EdgePair] = set()
        self.natural_loops: Dict[Loc, Set[Loc]] = {}
        self.loop_heads: List[Loc] = []
        self.heads_by_loc: Dict[Loc, Set[Loc]] = {}
        self.containing: Dict[Loc, Tuple[Loc, ...]] = {}
        self.fwd_edges_to: Dict[Loc, List[Tuple[int, "CfgEdge"]]] = {}
        self.join_points: Set[Loc] = set()
        self.bad_loop_exits: Dict["CfgEdge", Loc] = {}
        self.has_forward_cycle = False
        self._rpo: Optional[List[Loc]] = None
        self._flat_back: Optional[List["CfgEdge"]] = None
        self._flat_forward: Optional[List["CfgEdge"]] = None
        started = time.perf_counter()
        self._rebuild()
        cfg._structure_seconds += time.perf_counter() - started

    # -- queries the CFG delegates to ----------------------------------------

    def is_back_edge(self, edge: "CfgEdge") -> bool:
        return (edge.src, edge.dst) in self.back_pairs

    def back_edges_to(self, loc: Loc) -> List["CfgEdge"]:
        return [e for e in self.cfg._in.get(loc, ())
                if (e.src, e.dst) in self.back_pairs and e.src in self.reachable]

    def back_edges(self) -> List["CfgEdge"]:
        if self._flat_back is None:
            self._partition_flat()
        return self._flat_back

    def forward_edges(self) -> List["CfgEdge"]:
        if self._flat_forward is None:
            self._partition_flat()
        return self._flat_forward

    def _partition_flat(self) -> None:
        back: List["CfgEdge"] = []
        forward: List["CfgEdge"] = []
        for edge in self.cfg.edges:
            if edge.src not in self.reachable:
                continue
            if (edge.src, edge.dst) in self.back_pairs:
                back.append(edge)
            else:
                forward.append(edge)
        self._flat_back, self._flat_forward = back, forward

    def reverse_postorder(self) -> List[Loc]:
        """Reverse postorder over forward edges (recomputed lazily).

        Maintaining a global order incrementally would reintroduce an
        O(program) term per edit; instead the order is derived on demand
        (batch consumers that need it pay O(program) for an O(program)
        result anyway) and the regional dominator fixpoint uses its own
        local order over the affected region.
        """
        if self._rpo is None:
            self._rpo = self._compute_rpo()
        return self._rpo

    # -- full rebuild ---------------------------------------------------------

    def _rebuild(self) -> None:
        cfg = self.cfg
        self.stats["structure_full_builds"] += 1
        self.reachable = self._bfs_reachable([cfg.entry])
        self._rpo = self._compute_rpo()
        self.dominators = self._full_dominators(self._rpo)
        self.back_pairs = {
            (e.src, e.dst) for e in cfg.edges
            if e.src in self.reachable
            and e.dst in self.dominators.get(e.src, ())
        }
        self._flat_back = self._flat_forward = None
        heads = sorted({dst for (_src, dst) in self.back_pairs})
        self.natural_loops = {h: self._natural_loop(h) for h in heads}
        self.loop_heads = heads
        self.heads_by_loc = {}
        for head, body in self.natural_loops.items():
            for loc in body:
                self.heads_by_loc.setdefault(loc, set()).add(head)
        self.containing = {
            loc: self._containing_of(loc) for loc in self.reachable
        }
        self.fwd_edges_to = {}
        for loc in self.reachable:
            self._refresh_fwd_edges_to(loc)
        self.join_points = {
            loc for loc, edges in self.fwd_edges_to.items() if len(edges) >= 2
        }
        self.bad_loop_exits = {}
        for loc in self.reachable:
            self._refresh_bad_exits(loc)
        self.has_forward_cycle = self._forward_cycle_in(self.reachable)

    # -- incremental refresh --------------------------------------------------

    def refresh(self, pending: PendingDelta) -> Tuple[bool, Set[Loc], Set[Loc]]:
        """Apply a pending delta; returns ``(full, sig_suspects, head_suspects)``.

        ``sig_suspects`` over-approximates the locations whose DAIG encoding
        signature may have changed; ``head_suspects`` does the same for loop
        signatures.  When ``full`` is True the whole analysis was rebuilt
        and the suspect sets are empty (consumers must resynchronize from
        scratch).
        """
        started = time.perf_counter()
        try:
            if pending.full or self.has_forward_cycle:
                self._rebuild()
                return True, set(), set()
            if not pending.seeds:
                suspects: Set[Loc] = set()
                for old, new in pending.stmt_patches:
                    self.patch_stmt(old, new)
                    suspects.add(new.dst)
                return False, suspects, set()
            region = self._closure(pending.seeds)
            if len(region) >= _REBUILD_FRACTION * max(1, len(self.cfg.locations)):
                self._rebuild()
                return True, set(), set()
            sig, heads = self._refresh_region(region, pending)
            for _old, new in pending.stmt_patches:
                # The region rebuild already re-derived everything for its
                # own locations; outside it, re-sort the destination's
                # forward-edge index.  (The loop-exit entries of patched
                # edges are reconciled inside the region refresh.)
                if (new.dst not in region and new.dst in self.reachable
                        and (new.src, new.dst) not in self.back_pairs):
                    self._refresh_fwd_edges_to(new.dst)
                sig.add(new.dst)
            return False, sig, heads
        finally:
            self.cfg._structure_seconds += time.perf_counter() - started

    def _refresh_region(
        self, region: Set[Loc], pending: PendingDelta
    ) -> Tuple[Set[Loc], Set[Loc]]:
        cfg = self.cfg
        self.stats["structure_refreshes"] += 1
        self.stats["structure_locs_reanalyzed"] += len(region)
        self._rpo = None
        self._flat_back = self._flat_forward = None

        # 1. Reachability: locations outside the region keep theirs; inside,
        # re-flood from the region's entry frontier.
        frontier: Set[Loc] = set()
        if cfg.entry in region:
            frontier.add(cfg.entry)
        for loc in region:
            for edge in cfg._in.get(loc, ()):
                if edge.src not in region and edge.src in self.reachable:
                    frontier.add(loc)
                    break
        live = self._bfs_reachable(sorted(frontier), within=region)
        for loc in region:
            if loc in live:
                self.reachable.add(loc)
            else:
                self.reachable.discard(loc)

        # 2. Dominators for the region's reachable locations (boundary
        # dominator sets are fixed and provably unchanged).  ⊤ is
        # represented by absence; the iteration is the standard greatest
        # fixpoint restricted to the region.
        for loc in region:
            if loc not in live:
                self.dominators.pop(loc, None)
        order = self._local_rpo(frontier, live)
        newdom: Dict[Loc, Set[Loc]] = {}
        if cfg.entry in live:
            newdom[cfg.entry] = {cfg.entry}
        changed = True
        while changed:
            changed = False
            for loc in order:
                if loc == cfg.entry:
                    continue
                pred_doms: List[Set[Loc]] = []
                for edge in cfg._in.get(loc, ()):
                    pred = edge.src
                    if pred not in self.reachable:
                        continue
                    doms = newdom.get(pred) if pred in region \
                        else self.dominators.get(pred)
                    if doms is not None:
                        pred_doms.append(doms)
                if not pred_doms:
                    continue  # all predecessors still ⊤ this pass
                new = set.intersection(*pred_doms)
                new.add(loc)
                if newdom.get(loc) != new:
                    newdom[loc] = new
                    changed = True
        self.dominators.update(newdom)

        # 3. Edge classification.  Only edges with a source in the region
        # (or explicitly added/removed edges, whose sources may lie outside
        # it) can change class.
        old_back_dsts = {d for (s, d) in self.back_pairs if s in region}
        self.back_pairs = {p for p in self.back_pairs if p[0] not in region}
        for loc in region & live:
            doms = self.dominators.get(loc, set())
            for edge in cfg._out.get(loc, ()):
                if edge.dst in doms:
                    self.back_pairs.add((loc, edge.dst))
        for pair in {(e.src, e.dst) for e in pending.added_edges}:
            if pair[0] not in region:
                # Classify directly by the definition; the source's
                # dominators are unchanged and current.  (Such an edge is in
                # fact always forward: a back edge would make its source
                # reachable from its destination and pull it into the
                # region.  The classification also clears any stale pair
                # left behind by a removed edge between the same locations.)
                if pair[1] in self.dominators.get(pair[0], ()):
                    self.back_pairs.add(pair)
                else:
                    self.back_pairs.discard(pair)
        for edge in pending.removed_edges:
            pair = (edge.src, edge.dst)
            if pair[0] not in region and pair in self.back_pairs:
                if not any(e.dst == edge.dst for e in cfg._out.get(edge.src, ())):
                    self.back_pairs.discard(pair)
        new_back_dsts = {d for (s, d) in self.back_pairs if s in region}

        # 4. Forward-edge indexing and join points for the region.
        for loc in region:
            self._refresh_fwd_edges_to(loc)
            if len(self.fwd_edges_to.get(loc, ())) >= 2:
                self.join_points.add(loc)
            else:
                self.join_points.discard(loc)

        # 5. Natural loops: only heads whose back edges or body touch the
        # region can change.
        candidates: Set[Loc] = set(old_back_dsts) | set(new_back_dsts)
        for loc in region:
            candidates |= self.heads_by_loc.get(loc, set())
        touched_locs: Set[Loc] = set(region)
        for head in sorted(candidates):
            old_body = self.natural_loops.pop(head, set())
            has_back = any(
                (e.src, head) in self.back_pairs and e.src in self.reachable
                for e in cfg._in.get(head, ()))
            new_body: Set[Loc] = self._natural_loop(head) if (
                head in self.reachable and has_back) else set()
            if new_body:
                self.natural_loops[head] = new_body
            for loc in old_body - new_body:
                members = self.heads_by_loc.get(loc)
                if members is not None:
                    members.discard(head)
                    if not members:
                        del self.heads_by_loc[loc]
            for loc in new_body - old_body:
                self.heads_by_loc.setdefault(loc, set()).add(head)
            touched_locs |= old_body | new_body
        self.loop_heads = sorted(self.natural_loops)

        # 6. Loop nesting (containment) for every location of a recomputed
        # loop plus the region itself.
        for loc in touched_locs:
            if loc in self.reachable:
                self.containing[loc] = self._containing_of(loc)
            else:
                self.containing.pop(loc, None)

        # 7. Loop-exit validity.  First drop every entry keyed by an edge
        # object that left the graph (removed or relabelled) so nothing
        # stale survives or is resurrected; then re-derive the entries of
        # every location whose containment may have changed; finally,
        # recheck one-by-one the edges added or relabelled with a *source
        # outside* that neighbourhood — their source's containment is
        # unchanged, but the edge itself was never checked.  Edges that
        # left the graph within the same batch are skipped.
        for edge in pending.removed_edges:
            self.bad_loop_exits.pop(edge, None)
        for old, _new in pending.stmt_patches:
            self.bad_loop_exits.pop(old, None)
        for loc in touched_locs:
            self._refresh_bad_exits(loc)
        recheck: List["CfgEdge"] = list(pending.added_edges)
        recheck.extend(pending.removed_edges)
        for old, new in pending.stmt_patches:
            recheck.append(old)
            recheck.append(new)
        for edge in recheck:
            if edge.src not in touched_locs and edge in cfg._edge_pos:
                self._check_edge_exit(edge)

        # 8. Reducibility: a new forward cycle must lie inside the region
        # (the region is successor-closed), so only the region is checked.
        if self._forward_cycle_in(live):
            self.has_forward_cycle = True

        # Suspects for downstream (snapshot) caches: every location whose
        # containment or incoming-edge structure may have changed, plus
        # their successors (whose encoding reads the sources' loop info).
        sig_suspects = set(touched_locs)
        for loc in touched_locs:
            for edge in cfg._out.get(loc, ()):
                sig_suspects.add(edge.dst)
        head_suspects = set(candidates)
        for loc in touched_locs:
            head_suspects |= self.heads_by_loc.get(loc, set())
        return sig_suspects, head_suspects

    # -- statement-only patches ----------------------------------------------

    def patch_stmt(self, old: "CfgEdge", new: "CfgEdge") -> None:
        """Relabel an edge in place: zero dominator/loop recomputation.

        Only the destination's forward-edge index (which sorts on statement
        text) and edge-keyed auxiliary entries are touched.
        """
        self._flat_back = self._flat_forward = None
        if (new.src, new.dst) not in self.back_pairs and new.dst in self.reachable:
            self._refresh_fwd_edges_to(new.dst)
        if old in self.bad_loop_exits:
            self.bad_loop_exits[new] = self.bad_loop_exits.pop(old)

    # -- helpers --------------------------------------------------------------

    def _bfs_reachable(
        self, roots: Sequence[Loc], within: Optional[Set[Loc]] = None
    ) -> Set[Loc]:
        seen: Set[Loc] = set()
        stack = [loc for loc in roots if within is None or loc in within]
        while stack:
            loc = stack.pop()
            if loc in seen:
                continue
            seen.add(loc)
            for edge in self.cfg._out.get(loc, ()):
                dst = edge.dst
                if dst not in seen and (within is None or dst in within):
                    stack.append(dst)
        return seen

    def _closure(self, seeds: Set[Loc]) -> Set[Loc]:
        """Forward closure of the seeds over the current edges.

        Removed edges need no ghost traversal: each removed edge's
        destination is itself a seed, so everything reachable through it in
        the pre-edit graph is reachable from the seed set directly.
        """
        return self._bfs_reachable(sorted(seeds))

    def _ordered_successors(self, loc: Loc) -> List[Loc]:
        return sorted({e.dst for e in self.cfg._out.get(loc, ())})

    def _compute_rpo(self) -> List[Loc]:
        visited: Set[Loc] = set()
        order: List[Loc] = []
        start = self.cfg.entry
        stack: List[Tuple[Loc, List[Loc]]] = [(start, self._ordered_successors(start))]
        visited.add(start)
        while stack:
            node, succs = stack[-1]
            advanced = False
            while succs:
                nxt = succs.pop(0)
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, self._ordered_successors(nxt)))
                    advanced = True
                    break
            if not advanced:
                order.append(node)
                stack.pop()
        order.reverse()
        return [loc for loc in order if loc in self.reachable]

    def _local_rpo(self, frontier: Set[Loc], live: Set[Loc]) -> List[Loc]:
        """A deterministic topological-ish order over the region's live set."""
        visited: Set[Loc] = set()
        order: List[Loc] = []
        for root in sorted(frontier):
            if root in visited or root not in live:
                continue
            stack: List[Tuple[Loc, List[Loc]]] = [
                (root, self._ordered_successors(root))]
            visited.add(root)
            while stack:
                node, succs = stack[-1]
                advanced = False
                while succs:
                    nxt = succs.pop(0)
                    if nxt not in visited and nxt in live:
                        visited.add(nxt)
                        stack.append((nxt, self._ordered_successors(nxt)))
                        advanced = True
                        break
                if not advanced:
                    order.append(node)
                    stack.pop()
        order.reverse()
        return order

    def _full_dominators(self, order: List[Loc]) -> Dict[Loc, Set[Loc]]:
        cfg = self.cfg
        reachable = self.reachable
        all_locs = set(reachable)
        dom: Dict[Loc, Set[Loc]] = {loc: set(all_locs) for loc in reachable}
        dom[cfg.entry] = {cfg.entry}
        changed = True
        while changed:
            changed = False
            for loc in order:
                if loc == cfg.entry:
                    continue
                preds = [e.src for e in cfg._in.get(loc, ())
                         if e.src in reachable]
                if not preds:
                    new = {loc}
                else:
                    new = set(all_locs)
                    for pred in preds:
                        new &= dom[pred]
                    new.add(loc)
                if new != dom[loc]:
                    dom[loc] = new
                    changed = True
        return dom

    def _natural_loop(self, head: Loc) -> Set[Loc]:
        cfg = self.cfg
        loop: Set[Loc] = {head}
        stack: List[Loc] = []
        for edge in cfg._in.get(head, ()):
            if ((edge.src, head) in self.back_pairs
                    and edge.src in self.reachable and edge.src not in loop):
                loop.add(edge.src)
                stack.append(edge.src)
        while stack:
            loc = stack.pop()
            for edge in cfg._in.get(loc, ()):
                pred = edge.src
                if pred not in loop and pred in self.reachable:
                    loop.add(pred)
                    stack.append(pred)
        return loop

    def _containing_of(self, loc: Loc) -> Tuple[Loc, ...]:
        heads = sorted(
            self.heads_by_loc.get(loc, ()),
            key=lambda h: (-len(self.natural_loops[h]), h))
        return tuple(heads)

    def _refresh_fwd_edges_to(self, loc: Loc) -> None:
        incoming = [
            e for e in self.cfg._in.get(loc, ())
            if e.src in self.reachable and (e.src, e.dst) not in self.back_pairs
        ]
        if not incoming or loc not in self.reachable:
            self.fwd_edges_to.pop(loc, None)
            return
        incoming.sort(key=lambda e: (e.src, str(e.stmt)))
        self.fwd_edges_to[loc] = [(i + 1, e) for i, e in enumerate(incoming)]

    def _check_edge_exit(self, edge: "CfgEdge") -> None:
        """Recheck the loop-exit rule for a single edge."""
        self.bad_loop_exits.pop(edge, None)
        if edge.src not in self.reachable:
            return
        if (edge.src, edge.dst) in self.back_pairs:
            return
        for head in self.containing.get(edge.src, ()):
            if edge.dst not in self.natural_loops[head] and edge.src != head:
                self.bad_loop_exits[edge] = head
                return

    def _refresh_bad_exits(self, loc: Loc) -> None:
        """Recheck the loop-exit rule for ``loc``'s outgoing forward edges."""
        out = self.cfg._out.get(loc, ())
        for edge in out:
            self.bad_loop_exits.pop(edge, None)
        if loc not in self.reachable:
            return
        heads = self.containing.get(loc, ())
        if not heads:
            return
        for edge in out:
            if (edge.src, edge.dst) in self.back_pairs:
                continue
            for head in heads:
                if edge.dst not in self.natural_loops[head] and edge.src != head:
                    self.bad_loop_exits[edge] = head
                    break

    def _forward_cycle_in(self, nodes: Set[Loc]) -> bool:
        """DFS cycle check over forward edges restricted to ``nodes``."""
        succ: Dict[Loc, List[Loc]] = {}
        for loc in nodes:
            succ[loc] = [
                e.dst for e in self.cfg._out.get(loc, ())
                if e.dst in nodes and (e.src, e.dst) not in self.back_pairs
            ]
        state: Dict[Loc, int] = {}
        for start in nodes:
            if state.get(start, 0) != 0:
                continue
            stack: List[Tuple[Loc, List[Loc]]] = [(start, list(succ[start]))]
            state[start] = 1
            while stack:
                node, succs = stack[-1]
                if succs:
                    nxt = succs.pop(0)
                    if state.get(nxt, 0) == 1:
                        return True
                    if state.get(nxt, 0) == 0:
                        state[nxt] = 1
                        stack.append((nxt, list(succ[nxt])))
                else:
                    state[node] = 2
                    stack.pop()
        return False
