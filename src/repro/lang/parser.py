"""A small recursive-descent parser for the JavaScript-like subset.

The paper's experiments analyze programs written in a JavaScript subset with
assignment, arrays, conditional branching, ``while`` loops and non-recursive
first-order calls.  This parser accepts that subset in a conventional
curly-brace syntax, e.g.::

    function append(p, q) {
      if (p == null) { return q; }
      var r = p;
      while (r.next != null) { r = r.next; }
      r.next = q;
      return p;
    }

and produces the :mod:`repro.lang.ast` structures consumed by the CFG
builder.  It exists so that example programs and tests can be written as
readable source text rather than as raw AST constructors.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from . import ast as A


class ParseError(Exception):
    """Raised on any syntax error, with a line/column position."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__("%s (line %d, column %d)" % (message, line, column))
        self.line = line
        self.column = column


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


_KEYWORDS = {
    "function", "var", "if", "else", "while", "return",
    "null", "true", "false", "new", "print", "skip",
}

_TOKEN_SPEC = [
    ("WHITESPACE", r"[ \t\r\n]+"),
    ("COMMENT", r"//[^\n]*|/\*.*?\*/"),
    ("NUMBER", r"\d+"),
    ("STRING", r'"[^"\n]*"'),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("OP", r"==|!=|<=|>=|&&|\|\||[-+*/%<>=!;:,.(){}\[\]]"),
]

_TOKEN_RE = re.compile(
    "|".join("(?P<%s>%s)" % (name, pattern) for name, pattern in _TOKEN_SPEC),
    re.DOTALL,
)


def tokenize(source: str) -> List[Token]:
    """Split source text into tokens, dropping whitespace and comments."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                "unexpected character %r" % source[position],
                line, position - line_start + 1)
        kind = match.lastgroup or ""
        text = match.group()
        column = position - line_start + 1
        if kind == "IDENT" and text in _KEYWORDS:
            kind = text.upper()
        if kind not in ("WHITESPACE", "COMMENT"):
            tokens.append(Token(kind, text, line, column))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("EOF", "", line, position - line_start + 1))
    return tokens


class Parser:
    """Recursive-descent parser producing :mod:`repro.lang.ast` nodes."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing -------------------------------------------------------

    def _peek(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.tokens[self.index]
        if token.kind != "EOF":
            self.index += 1
        return token

    def _check(self, kind: str, text: Optional[str] = None) -> bool:
        token = self._peek()
        if token.kind != kind:
            return False
        return text is None or token.text == text

    def _match(self, kind: str, text: Optional[str] = None) -> Optional[Token]:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self._peek()
        if not self._check(kind, text):
            wanted = text if text is not None else kind
            raise ParseError(
                "expected %r but found %r" % (wanted, token.text or token.kind),
                token.line, token.column)
        return self._advance()

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message, token.line, token.column)

    # -- entry points ---------------------------------------------------------

    def parse_program(self, entry: str = "main") -> A.Program:
        procedures: List[A.Procedure] = []
        while not self._check("EOF"):
            procedures.append(self.parse_procedure())
        if not procedures:
            raise self._error("empty program")
        if not any(p.name == entry for p in procedures):
            entry = procedures[0].name
        return A.Program(tuple(procedures), entry)

    def parse_procedure(self) -> A.Procedure:
        self._expect("FUNCTION")
        name = self._expect("IDENT").text
        self._expect("OP", "(")
        params: List[str] = []
        if not self._check("OP", ")"):
            params.append(self._expect("IDENT").text)
            while self._match("OP", ","):
                params.append(self._expect("IDENT").text)
        self._expect("OP", ")")
        body = self.parse_block()
        return A.Procedure(name, tuple(params), body)

    def parse_block(self) -> Tuple[A.Stmt, ...]:
        self._expect("OP", "{")
        stmts: List[A.Stmt] = []
        while not self._check("OP", "}"):
            stmts.append(self.parse_statement())
        self._expect("OP", "}")
        return tuple(stmts)

    # -- statements -----------------------------------------------------------

    def parse_statement(self) -> A.Stmt:
        if self._check("VAR"):
            return self._parse_var_decl()
        if self._check("IF"):
            return self._parse_if()
        if self._check("WHILE"):
            return self._parse_while()
        if self._check("RETURN"):
            return self._parse_return()
        if self._check("PRINT"):
            return self._parse_print()
        if self._check("SKIP"):
            self._advance()
            self._expect("OP", ";")
            return A.Skip()
        return self._parse_assignment_or_call()

    def _parse_var_decl(self) -> A.Stmt:
        self._expect("VAR")
        name = self._expect("IDENT").text
        # Optional `: Type` annotation (ignored, kept for paper-style sources).
        if self._match("OP", ":"):
            self._expect("IDENT")
        self._expect("OP", "=")
        return self._finish_assignment(name)

    def _parse_if(self) -> A.Stmt:
        self._expect("IF")
        self._expect("OP", "(")
        cond = self.parse_expression()
        self._expect("OP", ")")
        then_body = self.parse_block()
        else_body: Tuple[A.Stmt, ...] = ()
        if self._match("ELSE"):
            if self._check("IF"):
                else_body = (self._parse_if(),)
            else:
                else_body = self.parse_block()
        return A.If(cond, then_body, else_body)

    def _parse_while(self) -> A.Stmt:
        self._expect("WHILE")
        self._expect("OP", "(")
        cond = self.parse_expression()
        self._expect("OP", ")")
        body = self.parse_block()
        return A.While(cond, body)

    def _parse_return(self) -> A.Stmt:
        self._expect("RETURN")
        if self._match("OP", ";"):
            return A.Return(None)
        value = self.parse_expression()
        self._expect("OP", ";")
        return A.Return(value)

    def _parse_print(self) -> A.Stmt:
        self._expect("PRINT")
        self._expect("OP", "(")
        value = self.parse_expression()
        self._expect("OP", ")")
        self._expect("OP", ";")
        return A.Print(value)

    def _parse_assignment_or_call(self) -> A.Stmt:
        name = self._expect("IDENT").text
        if self._match("OP", "."):
            fieldname = self._expect("IDENT").text
            self._expect("OP", "=")
            value = self.parse_expression()
            self._expect("OP", ";")
            return A.FieldAssign(name, fieldname, value)
        if self._match("OP", "["):
            index = self.parse_expression()
            self._expect("OP", "]")
            self._expect("OP", "=")
            value = self.parse_expression()
            self._expect("OP", ";")
            return A.ArrayAssign(name, index, value)
        if self._match("OP", "("):
            args = self._parse_call_args()
            self._expect("OP", ";")
            return A.Call(None, name, args)
        self._expect("OP", "=")
        return self._finish_assignment(name)

    def _finish_assignment(self, target: str) -> A.Stmt:
        # A call may only appear as the entire right-hand side, matching the
        # `x = f(y)` form the paper's interprocedural analysis supports.
        if self._check("IDENT") and self.tokens[self.index + 1].text == "(":
            function = self._advance().text
            self._expect("OP", "(")
            args = self._parse_call_args()
            self._expect("OP", ";")
            return A.Call(target, function, args)
        value = self.parse_expression()
        self._expect("OP", ";")
        return A.Assign(target, value)

    def _parse_call_args(self) -> Tuple[A.Expr, ...]:
        args: List[A.Expr] = []
        if not self._check("OP", ")"):
            args.append(self.parse_expression())
            while self._match("OP", ","):
                args.append(self.parse_expression())
        self._expect("OP", ")")
        return tuple(args)

    # -- expressions ----------------------------------------------------------

    def parse_expression(self) -> A.Expr:
        return self._parse_or()

    def _parse_or(self) -> A.Expr:
        left = self._parse_and()
        while self._check("OP", "||"):
            self._advance()
            left = A.BinOp("||", left, self._parse_and())
        return left

    def _parse_and(self) -> A.Expr:
        left = self._parse_comparison()
        while self._check("OP", "&&"):
            self._advance()
            left = A.BinOp("&&", left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> A.Expr:
        left = self._parse_additive()
        while self._peek().kind == "OP" and self._peek().text in A.COMPARISON_OPS:
            op = self._advance().text
            left = A.BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> A.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind == "OP" and self._peek().text in ("+", "-"):
            op = self._advance().text
            left = A.BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> A.Expr:
        left = self._parse_unary()
        while self._peek().kind == "OP" and self._peek().text in ("*", "/", "%"):
            op = self._advance().text
            left = A.BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> A.Expr:
        if self._check("OP", "-"):
            self._advance()
            return A.UnaryOp("-", self._parse_unary())
        if self._check("OP", "!"):
            self._advance()
            return A.UnaryOp("!", self._parse_unary())
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            if self._match("OP", "."):
                fieldname = self._expect("IDENT").text
                if fieldname == "length":
                    expr = A.ArrayLen(expr)
                else:
                    expr = A.FieldRead(expr, fieldname)
            elif self._match("OP", "["):
                index = self.parse_expression()
                self._expect("OP", "]")
                expr = A.ArrayRead(expr, index)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        if self._check("NUMBER"):
            return A.IntLit(int(self._advance().text))
        if self._check("STRING"):
            return A.StrLit(self._advance().text[1:-1])
        if self._match("NULL"):
            return A.NullLit()
        if self._match("TRUE"):
            return A.BoolLit(True)
        if self._match("FALSE"):
            return A.BoolLit(False)
        if self._match("NEW"):
            # `new()` and `new Name()` both allocate an anonymous record.
            if self._check("IDENT"):
                self._advance()
            self._expect("OP", "(")
            self._expect("OP", ")")
            return A.AllocRecord()
        if self._check("IDENT"):
            return A.Var(self._advance().text)
        if self._match("OP", "("):
            expr = self.parse_expression()
            self._expect("OP", ")")
            return expr
        if self._check("OP", "["):
            self._advance()
            elements: List[A.Expr] = []
            if not self._check("OP", "]"):
                elements.append(self.parse_expression())
                while self._match("OP", ","):
                    elements.append(self.parse_expression())
            self._expect("OP", "]")
            return A.ArrayLit(tuple(elements))
        raise self._error("expected an expression")


def parse_program(source: str, entry: str = "main") -> A.Program:
    """Parse source text into a :class:`~repro.lang.ast.Program`."""
    return Parser(source).parse_program(entry)


def parse_procedure(source: str) -> A.Procedure:
    """Parse a single ``function`` definition."""
    return Parser(source).parse_procedure()


def parse_expression(source: str) -> A.Expr:
    """Parse a single expression (useful in tests and the workload generator)."""
    parser = Parser(source)
    expr = parser.parse_expression()
    if not parser._check("EOF"):
        raise parser._error("trailing input after expression")
    return expr
