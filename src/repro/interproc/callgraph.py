"""Static call graphs for the non-recursive, statically-dispatched language.

The paper's implementation "supports context-sensitive analysis of
non-recursive programs with static calling semantics (i.e., no virtual
dispatch or higher-order functions)"; call targets are therefore syntactic.
This module builds the call graph from the CFGs, checks the non-recursion
restriction, and computes the set of procedures reachable from the entry
point (used by the verification clients to know which code is analyzed).
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..lang import ast as A
from ..lang.cfg import Cfg


class RecursionError_(Exception):
    """Raised when the program contains (mutually) recursive calls."""


class CallGraph:
    """Caller → callee edges derived syntactically from call statements."""

    def __init__(self, cfgs: Dict[str, Cfg]) -> None:
        self.cfgs = cfgs
        self.edges: Dict[str, Set[str]] = {}
        self.call_sites: Dict[str, List[Tuple[int, A.CallStmt]]] = {}
        for name, cfg in cfgs.items():
            self._scan_procedure(name, cfg)

    def _scan_procedure(self, name: str, cfg: Cfg) -> None:
        """(Re-)derive one procedure's call edges and call sites."""
        self.edges[name] = set()
        self.call_sites[name] = []
        for edge in cfg.edges:
            if isinstance(edge.stmt, A.CallStmt):
                self.call_sites[name].append((edge.src, edge.stmt))
                if edge.stmt.function in self.cfgs:
                    self.edges[name].add(edge.stmt.function)

    def update_procedure(self, name: str, cfg: Cfg) -> None:
        """Recompute one procedure's call edges after an edit.

        Rebuilding the whole call graph is O(total program); a structural
        edit touches one procedure, so only its edge set and call sites are
        re-derived (O(procedure size)).
        """
        self.cfgs[name] = cfg
        self._scan_procedure(name, cfg)

    def callees(self, name: str) -> Set[str]:
        return set(self.edges.get(name, set()))

    def callers(self, name: str) -> Set[str]:
        return {caller for caller, callees in self.edges.items() if name in callees}

    def reachable_from(self, entry: str) -> Set[str]:
        """Procedures transitively reachable from ``entry`` (including it)."""
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            current = frontier.pop()
            if current in seen or current not in self.cfgs:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, set()))
        return seen

    def check_nonrecursive(self) -> None:
        """Raise :class:`RecursionError_` if the call graph has a cycle."""
        state: Dict[str, int] = {}

        def visit(node: str, stack: List[str]) -> None:
            state[node] = 1
            for callee in sorted(self.edges.get(node, set())):
                if state.get(callee, 0) == 1:
                    raise RecursionError_(
                        "recursive call cycle: %s -> %s"
                        % (" -> ".join(stack + [node]), callee))
                if state.get(callee, 0) == 0:
                    visit(callee, stack + [node])
            state[node] = 2

        for name in sorted(self.cfgs):
            if state.get(name, 0) == 0:
                visit(name, [])

    def topological_order(self) -> List[str]:
        """Callees-before-callers order (useful for bottom-up summaries)."""
        self.check_nonrecursive()
        order: List[str] = []
        visited: Set[str] = set()

        def visit(node: str) -> None:
            if node in visited:
                return
            visited.add(node)
            for callee in sorted(self.edges.get(node, set())):
                visit(callee)
            order.append(node)

        for name in sorted(self.cfgs):
            visit(name)
        return order
