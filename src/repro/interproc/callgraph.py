"""Static call graphs for the statically-dispatched language.

Call targets are syntactic (no virtual dispatch or higher-order functions,
as in the paper's prototype).  This module builds the call graph from the
CFGs and maintains it *incrementally*: :meth:`CallGraph.update_procedure`
re-derives one procedure's edges after an edit, patching both the forward
edge set and the reverse-edge index, so :meth:`callers` is a dictionary
lookup instead of an O(all-procedures) scan.

The paper's implementation restricts itself to non-recursive programs;
the engine now analyzes (mutually) recursive programs through a summary
fixpoint over call-graph SCCs, so :meth:`check_nonrecursive` is an *opt-in*
validation rather than a construction-time requirement.  SCC membership
(:meth:`recursive_procedures`, :meth:`scc_of`) is computed lazily and
invalidated by edits.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang import ast as A
from ..lang.cfg import Cfg


class RecursionError_(Exception):
    """Raised by the opt-in validation when the call graph has a cycle."""


class CallGraph:
    """Caller → callee edges derived syntactically from call statements."""

    def __init__(self, cfgs: Dict[str, Cfg]) -> None:
        self.cfgs = cfgs
        self.edges: Dict[str, Set[str]] = {}
        #: Reverse-edge index: callee → callers.  Kept in sync by
        #: :meth:`update_procedure` so ``callers()`` never scans the program.
        self.rev_edges: Dict[str, Set[str]] = {name: set() for name in cfgs}
        self.call_sites: Dict[str, List[Tuple[int, A.CallStmt]]] = {}
        self._sccs: Optional[List[FrozenSet[str]]] = None
        self._scc_index: Dict[str, FrozenSet[str]] = {}
        for name, cfg in cfgs.items():
            self._scan_procedure(name, cfg)

    def _scan_procedure(self, name: str, cfg: Cfg) -> None:
        """(Re-)derive one procedure's call edges and call sites."""
        for callee in self.edges.get(name, ()):
            self.rev_edges.get(callee, set()).discard(name)
        self.edges[name] = set()
        self.call_sites[name] = []
        for edge in cfg.edges:
            if isinstance(edge.stmt, A.CallStmt):
                self.call_sites[name].append((edge.src, edge.stmt))
                if edge.stmt.function in self.cfgs:
                    self.edges[name].add(edge.stmt.function)
                    self.rev_edges.setdefault(edge.stmt.function, set()).add(name)

    def update_procedure(self, name: str, cfg: Cfg) -> None:
        """Recompute one procedure's call edges after an edit.

        Rebuilding the whole call graph is O(total program); a structural
        edit touches one procedure, so only its edge set, call sites, and
        reverse-index entries are re-derived (O(procedure size)).  SCC
        membership is invalidated only when the procedure's *call edge set*
        actually changed — statement edits that leave the calls alone (the
        common case) keep the cached condensation, so they never pay a
        Tarjan pass.
        """
        self.cfgs[name] = cfg
        self.rev_edges.setdefault(name, set())
        before = self.edges.get(name, set())
        self._scan_procedure(name, cfg)
        if self.edges[name] != before:
            self._sccs = None  # membership may have changed; recompute lazily

    def callees(self, name: str) -> Set[str]:
        return set(self.edges.get(name, set()))

    def callers(self, name: str) -> Set[str]:
        """Procedures with a call site targeting ``name`` (O(1) via the
        reverse-edge index, not a scan over every procedure)."""
        return set(self.rev_edges.get(name, set()))

    def transitive_callers(self, name: str) -> Set[str]:
        """Procedures from which ``name`` is reachable (excluding ``name``
        itself unless it participates in a cycle).  O(dependent subgraph)."""
        seen: Set[str] = set()
        frontier = list(self.rev_edges.get(name, set()))
        while frontier:
            current = frontier.pop()
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self.rev_edges.get(current, set()))
        return seen

    def reachable_from(self, entry: str) -> Set[str]:
        """Procedures transitively reachable from ``entry`` (including it)."""
        seen: Set[str] = set()
        frontier = [entry]
        while frontier:
            current = frontier.pop()
            if current in seen or current not in self.cfgs:
                continue
            seen.add(current)
            frontier.extend(self.edges.get(current, set()))
        return seen

    # -- strongly connected components -------------------------------------------

    def sccs(self) -> List[FrozenSet[str]]:
        """Strongly connected components, callees-before-callers.

        Iterative Tarjan; the condensation order returned has every
        component after all components it calls into, which is the
        evaluation order bottom-up summary computations want.
        """
        if self._sccs is not None:
            return self._sccs
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        components: List[FrozenSet[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(self.edges.get(root, set()))))]
            index[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, children = work[-1]
                advanced = False
                for child in children:
                    if child not in index:
                        index[child] = lowlink[child] = counter[0]
                        counter[0] += 1
                        stack.append(child)
                        on_stack.add(child)
                        work.append(
                            (child, iter(sorted(self.edges.get(child, set())))))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
                if lowlink[node] == index[node]:
                    component: Set[str] = set()
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.add(member)
                        if member == node:
                            break
                    components.append(frozenset(component))

        for name in sorted(self.cfgs):
            if name not in index:
                strongconnect(name)
        self._sccs = components
        self._scc_index = {member: component
                           for component in components for member in component}
        return components

    def scc_of(self, name: str) -> FrozenSet[str]:
        """The strongly connected component containing ``name``."""
        self.sccs()
        return self._scc_index.get(name, frozenset({name}))

    def is_recursive(self, name: str) -> bool:
        """Whether ``name`` participates in a call cycle (including a
        direct self-call)."""
        component = self.scc_of(name)
        return len(component) > 1 or name in self.edges.get(name, set())

    def recursive_procedures(self) -> Set[str]:
        """All procedures participating in some call cycle."""
        return {name for name in self.cfgs if self.is_recursive(name)}

    def check_nonrecursive(self) -> None:
        """Opt-in validation: raise :class:`RecursionError_` on any cycle.

        The engine analyzes recursive programs via the SCC summary fixpoint;
        clients that want the paper's original restriction (e.g. to
        guarantee no widening on summaries) call this explicitly or pass
        ``require_nonrecursive=True`` to the engine.
        """
        for component in self.sccs():
            members = sorted(component)
            if len(component) > 1:
                raise RecursionError_(
                    "recursive call cycle: %s" % (" -> ".join(members),))
            name = members[0]
            if name in self.edges.get(name, set()):
                raise RecursionError_("recursive call cycle: %s -> %s"
                                      % (name, name))

    def condensation_waves(self) -> List[List[FrozenSet[str]]]:
        """Antichains of the SCC condensation, callees-first.

        Wave ``i`` holds every component whose longest call chain down to a
        leaf component has length ``i``: all components in one wave are
        pairwise independent, so their summary computations can run
        concurrently once every earlier wave has finished.  This is the
        schedule the parallel coordinator dispatches.
        """
        components = self.sccs()
        component_of = {member: component
                        for component in components for member in component}
        depth: Dict[FrozenSet[str], int] = {}
        # ``sccs()`` is callees-before-callers, so each component's callee
        # components already have a depth when it is reached.
        for component in components:
            best = 0
            for member in component:
                for callee in self.edges.get(member, set()):
                    target = component_of.get(callee)
                    if target is None or target is component:
                        continue
                    best = max(best, depth[target] + 1)
            depth[component] = best
        waves: List[List[FrozenSet[str]]] = []
        for component in components:
            level = depth[component]
            while len(waves) <= level:
                waves.append([])
            waves[level].append(component)
        for wave in waves:
            wave.sort(key=lambda component: sorted(component))
        return waves

    def topological_order(self) -> List[str]:
        """Callees-before-callers order over the SCC condensation.

        Members of one (recursive) component appear consecutively, in
        name-sorted order; for non-recursive programs this is exactly the
        classical topological order.
        """
        order: List[str] = []
        for component in self.sccs():
            order.extend(sorted(component))
        return order
