"""Context-sensitive interprocedural demanded analysis (Section 7.1)."""

from .callgraph import CallGraph, RecursionError_
from .context import (
    ENTRY_CONTEXT,
    CallStringSensitive,
    Context,
    ContextInsensitive,
    ContextPolicy,
    policy_by_name,
)
from .engine import InterproceduralEngine, ProcedureKey, SummaryDivergenceError

__all__ = [
    "CallGraph",
    "RecursionError_",
    "SummaryDivergenceError",
    "ENTRY_CONTEXT",
    "CallStringSensitive",
    "Context",
    "ContextInsensitive",
    "ContextPolicy",
    "policy_by_name",
    "InterproceduralEngine",
    "ProcedureKey",
]
