"""Context-sensitive interprocedural demanded analysis (Section 7.1)."""

from .callgraph import CallGraph, RecursionError_
from .context import (
    ENTRY_CONTEXT,
    CallStringSensitive,
    Context,
    ContextInsensitive,
    ContextPolicy,
    policy_by_name,
)
from .engine import InterproceduralEngine, ProcedureKey

__all__ = [
    "CallGraph",
    "RecursionError_",
    "ENTRY_CONTEXT",
    "CallStringSensitive",
    "Context",
    "ContextInsensitive",
    "ContextPolicy",
    "policy_by_name",
    "InterproceduralEngine",
    "ProcedureKey",
]
