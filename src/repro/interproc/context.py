"""Context-sensitivity policies for interprocedural demanded analysis.

Section 7.1 of the paper: interprocedural analysis is parameterized by an
opaque context-sensitivity policy that chooses the context in which to
analyze a callee at each call site.  The implementation ships the same three
policies the paper's prototype provides: context-insensitivity and 1-/2-
call-site (call-string) sensitivity.

A *context* is an opaque hashable value; a *call site token* identifies the
call being analyzed (caller procedure plus the call statement).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Hashable, Tuple

from ..lang import ast as A

#: A call-site token: (caller procedure name, the call statement).
CallSite = Tuple[str, A.CallStmt]
Context = Hashable

#: The context in which the program's entry procedure is analyzed.
ENTRY_CONTEXT: Tuple = ()


class ContextPolicy(ABC):
    """Chooses the analysis context of a callee for a given call."""

    name: str = "context-policy"

    @abstractmethod
    def callee_context(self, caller_context: Context, site: CallSite) -> Context:
        """The context in which to analyze the callee of ``site``."""


class ContextInsensitive(ContextPolicy):
    """Every call of a procedure is analyzed in one shared context."""

    name = "context-insensitive"

    def callee_context(self, caller_context: Context, site: CallSite) -> Context:
        return ENTRY_CONTEXT


class CallStringSensitive(ContextPolicy):
    """k-call-site (call-string) sensitivity: the context is the last ``k``
    call sites on the call stack (Sharir-Pnueli call strings, truncated)."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("call-string length must be at least 1")
        self.k = k
        self.name = "%d-call-site" % k

    def callee_context(self, caller_context: Context, site: CallSite) -> Context:
        previous: Tuple = caller_context if isinstance(caller_context, tuple) else ()
        token = (site[0], str(site[1]))
        return (previous + (token,))[-self.k:]


def policy_by_name(name: str) -> ContextPolicy:
    """Look up a policy by the names used in benchmarks and examples."""
    if name in ("insensitive", "context-insensitive", "0"):
        return ContextInsensitive()
    if name in ("1-call-site", "1cs", "1"):
        return CallStringSensitive(1)
    if name in ("2-call-site", "2cs", "2"):
        return CallStringSensitive(2)
    raise KeyError("unknown context policy %r" % (name,))
