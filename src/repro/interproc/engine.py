"""Context-sensitive interprocedural demanded abstract interpretation.

Following Section 7.1 of the paper — and extending it with a *demanded
summary* architecture so that the O(affected-region) edit invariant holds
across procedure boundaries:

* One DAIG per *(procedure, context)* pair, built on demand, but one
  **shared, immutable-by-convention CFG** (and hence one
  :class:`~repro.lang.structure.CfgStructure` cache and one structure
  analysis) per *procedure*, regardless of how many contexts analyze it.
* A **call-site dependency index** — ``callee name → {(caller engine, call
  cells)}`` — maintained from the engines' statement-cell deltas (initial
  scan at engine construction, patched per splice), so an edit to a callee
  dirties exactly the dependent call cells: no per-edit scan over any
  engine's full DAIG ref set (``interproc_callsite_scans`` stays 0).
* **Procedure summaries** keyed by ``(procedure, context, deep code
  digest, entry state)`` in the shared :class:`~repro.daig.memo.MemoTable`:
  repeated calls at a previously seen entry state reuse the memoized exit
  state without touching the callee's DAIG, and entry-state changes leave
  the callee engine untouched until a summary miss actually needs it
  (lazy entry synchronization).  The digest component is
  *content-addressed* — a per-procedure hash of the CFG composed with
  transitive-callee digests per call-graph SCC, maintained incrementally
  in O(dependent procedures) per edit — so memo keys are stable across
  processes and across engines analyzing identical code.
* An optional persistent :class:`~repro.store.SummaryStore` as a
  **write-through second tier** behind the memo table: every memoized (or
  certified-seeded) summary is also written to the store under the
  content-addressed key, and a memo miss consults the store before
  touching the callee's DAIG — a restarted engine, or a second engine on
  the same code, warm-starts from hits (``interproc_store_hits``) and
  performs near-zero transfers.  Corrupt or incompatible blobs degrade to
  a miss; :meth:`collect_garbage` expires the store entries of orphaned
  contexts so the store does not grow without bound.
* **Recursion** via a summary fixpoint over call-graph SCCs: a recursive
  call consumes the current exit-summary assumption (⊥ initially); the
  engine iterates, widening the assumption and re-dirtying exactly the
  dependent call cells, until the computed exit is covered by the
  assumption.  ``check_nonrecursive`` is an opt-in validation
  (``require_nonrecursive=True``), no longer a hard restriction.

Entry states are maintained as the join of per-call-site *contributions*;
when a call site disappears (edit) its contribution is retracted, and when
a callee's entry target or exit summary changes, the dependent call cells
are dirtied (the interprocedural analogue of E-Propagate), which makes the
demanded results order-independent: every evaluated call site ends up
consistent with the callee's final entry/exit summary.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..daig.edit import dirty_forward
from ..daig.engine import DaigEngine
from ..daig.memo import MemoTable
from ..daig.names import Name, stmt_name
from ..domains.base import AbstractDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, Loc
from ..store import (
    StoreDecodeError,
    SummaryStore,
    canonical_bytes,
    cfg_digest,
    component_digest,
    decode_summary,
    encode_summary,
    open_store,
    summary_store_key,
)
from .callgraph import CallGraph
from .context import ENTRY_CONTEXT, Context, ContextInsensitive, ContextPolicy

ProcedureKey = Tuple[str, Context]
#: Identifies a statement cell within one engine: ``(src, dst, index)``.
SiteKey = Tuple[int, int, int]
#: Identifies a call site globally: the engine it lives in plus its cell.
SiteId = Tuple[ProcedureKey, SiteKey]

#: Safety bound on SCC summary-fixpoint rounds; a convergent widening never
#: comes close, so exceeding it signals a domain bug.
MAX_SUMMARY_ROUNDS = 1000


class SummaryDivergenceError(Exception):
    """An SCC summary fixpoint failed to converge within the round bound."""


class InterproceduralEngine:
    """One DAIG per (procedure, context), with demanded summaries."""

    def __init__(
        self,
        cfgs: Dict[str, Cfg],
        domain: AbstractDomain,
        policy: Optional[ContextPolicy] = None,
        entry: str = "main",
        share_memo: bool = True,
        require_nonrecursive: bool = False,
        store: Optional[Union[SummaryStore, str]] = None,
        memo_capacity: Optional[int] = None,
        cutoff: bool = True,
    ) -> None:
        if entry not in cfgs:
            raise KeyError("no procedure named %r" % (entry,))
        self.cfgs = cfgs
        self.domain = domain
        #: Early cutoff: stop edit propagation at the first unchanged value,
        #: both inside each DAIG (cell shadows) and across procedures (an
        #: edited procedure whose exit summaries are unchanged never dirties
        #: its callers).  Disabled only for baseline measurements.
        self.cutoff = cutoff
        self.policy = policy if policy is not None else ContextInsensitive()
        self.entry = entry
        self.require_nonrecursive = require_nonrecursive
        self.callgraph = CallGraph(cfgs)
        if require_nonrecursive:
            self.callgraph.check_nonrecursive()
        #: The persistent second tier behind the memo table (optional).  A
        #: string is parsed as a ``"sqlite:<path>"``-style spec.
        self.store: Optional[SummaryStore] = (
            open_store(store) if isinstance(store, str) else store)
        self.memo: Optional[MemoTable] = (
            MemoTable(capacity=memo_capacity) if share_memo else None)
        #: Summary memoization always exists, even without a shared memo.
        self._summary_memo: MemoTable = (
            self.memo if self.memo is not None
            else MemoTable(capacity=memo_capacity))
        self.engines: Dict[ProcedureKey, DaigEngine] = {}
        #: The entry state each engine's DAIG currently holds.
        self.entry_states: Dict[ProcedureKey, Any] = {}
        #: The entry state each engine *should* hold: the join of its call
        #: sites' contributions (plus a root entry for explicitly queried
        #: procedures).  Synchronized into the DAIG lazily, on summary miss.
        self._entry_target: Dict[ProcedureKey, Any] = {}
        self._root_entries: Dict[ProcedureKey, Any] = {}
        self._contribs: Dict[ProcedureKey, Dict[SiteId, Any]] = {}
        #: How often each call site has grown its callee's entry target —
        #: the delayed-widening trigger (see :meth:`_refresh_entry_target`).
        self._entry_growths: Dict[Tuple[ProcedureKey, SiteId], int] = {}
        #: Keys whose every contribution was retracted: their target is a
        #: stale upper bound and the next recorded contribution replaces it
        #: exactly instead of joining into it.
        self._entry_stale: Set[ProcedureKey] = set()
        #: Call-site dependency index (the tentpole): per caller engine, the
        #: call cells and their callees; and the reverse map from callee
        #: name to every dependent call cell.
        self._site_callee: Dict[ProcedureKey, Dict[SiteKey, str]] = {}
        self._dependent_sites: Dict[str, Dict[ProcedureKey, Set[SiteKey]]] = {}
        self._proc_keys: Dict[str, List[ProcedureKey]] = {}
        #: Content digests: per-procedure CFG hash, and the *deep* digest
        #: covering the procedure and its transitive callees (shared per
        #: call-graph SCC) — the summary-staleness stamp, stable across
        #: processes.  Both lazily (re)computed; edits pop exactly the
        #: O(dependent procedures) stale entries where the old integer
        #: version bump used to happen.
        self._code_digest: Dict[str, str] = {}
        self._deep_digest: Dict[str, str] = {}
        #: Store keys written/consulted per (procedure, context), so
        #: :meth:`collect_garbage` can expire a retired context's
        #: persistent entries (bounded store growth).
        self._store_keys: Dict[ProcedureKey, Set[str]] = {}
        #: Memoized summary keys per procedure, so a version bump can purge
        #: the now-unreachable entries instead of leaking them in an
        #: unbounded memo table.
        self._summary_keys: Dict[str, Set[Tuple]] = {}
        self._last_exit: Dict[ProcedureKey, Any] = {}
        # SCC summary-fixpoint state.
        self._active: Set[ProcedureKey] = set()
        self._assumed: Dict[ProcedureKey, Any] = {}
        self._assumption_reads: Dict[ProcedureKey, int] = {}
        #: Keys whose engine was dirtied (cells or entry) since their last
        #: exhaustive evaluation; drained by :meth:`analyze_everything`.
        self._dirty_keys: Set[ProcedureKey] = set()
        self.counters: Dict[str, int] = {
            "interproc_callsite_scans": 0,
            "interproc_callsite_dirties": 0,
            "interproc_engines_built": 0,
            "interproc_summary_hits": 0,
            "interproc_summary_misses": 0,
            "interproc_summary_reentries": 0,
            "interproc_fixpoint_rounds": 0,
            "interproc_entry_syncs": 0,
            "interproc_entry_updates": 0,
            "interproc_entry_widenings": 0,
            # Parallel-evaluation counters: summary jobs dispatched to the
            # worker pool and scheduler waves that carried at least one job.
            # Both stay 0 in sequential mode (nothing here dispatches; the
            # coordinator in :mod:`repro.parallel` increments them).
            "interproc_parallel_jobs": 0,
            "interproc_parallel_waves": 0,
            "interproc_parallel_cutoff_avoided": 0,
            # Persistent-store tier: hits/misses of the second-tier lookup
            # (only consulted on a memo miss, so hits correspond to
            # summaries served without touching any callee DAIG), blobs
            # written through, entries expired by collect_garbage, and
            # blobs that failed to decode (corruption degrades to a miss).
            "interproc_store_hits": 0,
            "interproc_store_misses": 0,
            "interproc_store_writes": 0,
            "interproc_store_expired": 0,
            "interproc_store_errors": 0,
            # Early-cutoff counters: edits whose recomputed exit summaries
            # were unchanged (so no caller was dirtied), and unchanged
            # summaries re-keyed under the procedure's new deep digest so
            # warm starts across value-preserving refactors still hit.
            "interproc_summary_cutoffs": 0,
            "interproc_store_rekeys": 0,
        }
        #: Wall-clock seconds of the parallel coordinator's phases, written
        #: by :class:`repro.parallel.coordinator.ParallelCoordinator` and
        #: folded into :meth:`total_phase_seconds` (all 0.0 when sequential).
        self.parallel_phase: Dict[str, float] = {
            "speculate": 0.0, "dispatch": 0.0, "certify": 0.0}
        entry_key = (entry, ENTRY_CONTEXT)
        initial = domain.initial(cfgs[entry].params)
        self._root_entries[entry_key] = initial
        self._engine_for(entry, ENTRY_CONTEXT, initial)

    # -- engine management ---------------------------------------------------------

    def _engine_for(self, name: str, context: Context, entry_state: Any) -> DaigEngine:
        key = (name, context)
        if key in self.engines:
            return self.engines[key]
        # The CFG is *shared* among every context of the procedure: one
        # structure cache, one dominator/loop analysis, regardless of how
        # many contexts the policy creates.  (Mutation goes through
        # `edit_procedure`, which splices every sibling engine.)
        cfg = self.cfgs[name]
        engine = DaigEngine(
            cfg,
            self.domain,
            memo=self.memo if self.memo is not None else MemoTable(),
            entry_state=entry_state,
            call_transfer=self._make_call_transfer(key),
            cutoff=self.cutoff,
        )
        self.engines[key] = engine
        self.entry_states[key] = entry_state
        self._entry_target[key] = entry_state
        self._proc_keys.setdefault(name, []).append(key)
        self._site_callee[key] = {}
        self.counters["interproc_engines_built"] += 1
        # Index the engine's call cells once (O(procedure)), then keep the
        # index patched from statement-cell deltas reported per splice.
        engine.stmt_change_listener = self._make_stmt_listener(key)
        engine.stmt_change_listener(set(), engine.stmt_cells())
        return engine

    def _make_call_transfer(self, caller_key: ProcedureKey) -> Callable[..., Any]:
        def call_transfer(stmt: A.CallStmt, state: Any,
                          site: Optional[Name] = None) -> Any:
            return self._analyze_call(caller_key, stmt, state, site)
        call_transfer.accepts_site = True  # type: ignore[attr-defined]
        return call_transfer

    def _make_stmt_listener(self, caller_key: ProcedureKey) -> Callable[[Any, Any], None]:
        def on_stmt_cells(removed, present) -> None:
            self._update_site_index(caller_key, removed, present)
        return on_stmt_cells

    # -- content-addressed code digests ----------------------------------------------

    def code_digest(self, name: str) -> str:
        """Content hash of one procedure's CFG (statements + edges).

        Cached; invalidated only for the edited procedure itself.  Stable
        across processes and across reparses of identical source.
        """
        cached = self._code_digest.get(name)
        if cached is not None:
            return cached
        digest = cfg_digest(self.cfgs[name])
        self._code_digest[name] = digest
        return digest

    def deep_digest(self, name: str) -> str:
        """Content hash of a procedure *and* its transitive callees.

        The summary-staleness component of every memo/store key.  Computed
        per call-graph SCC — every member of a recursive component shares
        one digest composed from the members' code digests plus the deep
        digests of the components they call into — by an explicit-stack
        post-order walk over the condensation DAG.  Cached per procedure;
        an edit pops exactly ``{procedure} ∪ transitive_callers`` (see
        :meth:`_invalidate_summaries`), so recomputation after an edit is
        O(dependent procedures), not O(program).
        """
        cached = self._deep_digest.get(name)
        if cached is not None:
            return cached
        cg = self.callgraph

        def external_callees(component) -> List[str]:
            return sorted({callee for member in component
                           for callee in cg.edges.get(member, ())
                           if callee not in component})

        stack: List[Tuple[str, bool]] = [(name, False)]
        while stack:
            proc, ready = stack.pop()
            if proc in self._deep_digest:
                continue
            component = cg.scc_of(proc)
            callees = external_callees(component)
            if not ready:
                stack.append((proc, True))
                stack.extend((callee, False) for callee in callees
                             if callee not in self._deep_digest)
                continue
            digest = component_digest(
                tuple((member, self.code_digest(member))
                      for member in sorted(component)),
                tuple(self._deep_digest[callee] for callee in callees))
            for member in component:
                self._deep_digest[member] = digest
        return self._deep_digest[name]

    # -- call-site dependency index --------------------------------------------------

    def _update_site_index(self, caller_key: ProcedureKey,
                           removed, present) -> None:
        """Patch the call-site index from one engine's statement deltas."""
        sites = self._site_callee.setdefault(caller_key, {})
        for skey in removed:
            old = sites.pop(skey, None)
            if old is not None:
                self._drop_site(old, caller_key, skey)
        for skey, stmt in present.items():
            callee = (stmt.function
                      if isinstance(stmt, A.CallStmt)
                      and stmt.function in self.cfgs else None)
            old = sites.get(skey)
            if old == callee:
                continue
            if old is not None:
                self._drop_site(old, caller_key, skey)
            if callee is None:
                sites.pop(skey, None)
            else:
                sites[skey] = callee
                self._dependent_sites.setdefault(callee, {}).setdefault(
                    caller_key, set()).add(skey)

    def _drop_site(self, callee: str, caller_key: ProcedureKey,
                   skey: SiteKey) -> None:
        """A call cell vanished (or retargeted): unindex it and retract its
        entry-state contribution from every context of its old callee
        (cascading to the callee's own contributions when its entry moved)."""
        dependents = self._dependent_sites.get(callee)
        if dependents is not None:
            cells = dependents.get(caller_key)
            if cells is not None:
                cells.discard(skey)
                if not cells:
                    del dependents[caller_key]
            if not dependents:
                self._dependent_sites.pop(callee, None)
        site_id: SiteId = (caller_key, skey)
        affected: Set[ProcedureKey] = set()
        for callee_key in list(self._proc_keys.get(callee, ())):
            if self._retract_site(callee_key, site_id):
                affected.add(callee_key)
        if affected:
            self._retract_contributions_from(affected)

    # -- entry-state maintenance -------------------------------------------------------

    def _joined_contributions(self, key: ProcedureKey) -> Optional[Any]:
        """The exact join of a callee's live contributions (and root entry),
        or None when it has none."""
        parts: List[Any] = []
        root = self._root_entries.get(key)
        if root is not None:
            parts.append(root)
        parts.extend(self._contribs.get(key, {}).values())
        if not parts:
            return None
        joined = parts[0]
        for part in parts[1:]:
            joined = self.domain.join(joined, part)
        return joined

    def _set_entry_target(self, key: ProcedureKey, target: Any) -> None:
        self._entry_target[key] = target
        self.counters["interproc_entry_updates"] += 1
        self._dirty_keys.add(key)
        # The callee's results (for any consumer) are now stale.
        self._dirty_callers_of(key[0])

    def _refresh_entry_target(self, key: ProcedureKey,
                              cause: Optional[SiteId] = None) -> None:
        """Grow a callee's target entry after a contribution update.

        The growth path never shrinks the target, and uses *per-site
        delayed widening*: the first time a given call site grows the
        target the new contribution is joined exactly; from its second
        growth on, the target is widened.  A site that grows its callee's
        entry repeatedly is, by construction, part of a feedback cycle —
        recursion through the call graph, or a data cycle where the
        callee's exit flows back into its own entry through the caller —
        and widening there is what makes both the SCC summary fixpoint and
        the cross-procedure re-dirtying converge, while single-shot growth
        (the common acyclic case) keeps exact joins.
        """
        joined = self._joined_contributions(key)
        if joined is None:
            return
        if key in self._entry_stale:
            # Every previous contribution was retracted by an edit; the
            # current target is a stale upper bound, so the first fresh
            # contribution replaces it exactly.
            self._entry_stale.discard(key)
            target = self._entry_target[key]
            if joined is not target and not self.domain.equal(joined, target):
                self._set_entry_target(key, joined)
            return
        current = self._entry_target[key]
        if self.domain.leq(joined, current):
            return
        grown = self.domain.join(current, joined)
        if cause is not None:
            growth_key = (key, cause)
            growths = self._entry_growths.get(growth_key, 0)
            self._entry_growths[growth_key] = growths + 1
            if growths >= 1:
                grown = self.domain.widen(current, grown)
                self.counters["interproc_entry_widenings"] += 1
        self._set_entry_target(key, grown)

    def _recompute_entry_target(self, key: ProcedureKey) -> bool:
        """Recompute a callee's target entry exactly, allowing shrinkage.

        Called only on the retraction paths (edits, garbage collection),
        where dropping stale contributions is what restores from-scratch
        precision; evaluation-time growth goes through
        :meth:`_refresh_entry_target` and is monotone.  Returns whether the
        procedure's results may now change (the target moved, or became a
        stale upper bound awaiting replacement) — in which case the
        caller must also retract *this* key's own contributions.
        """
        joined = self._joined_contributions(key)
        if joined is None:
            # Nothing live contributes to this key anymore; keep the stale
            # target as an upper bound for direct queries, but let the next
            # recorded contribution replace it exactly.
            already_stale = key in self._entry_stale
            self._entry_stale.add(key)
            self._dirty_keys.add(key)
            return not already_stale
        self._entry_stale.discard(key)
        current = self._entry_target[key]
        if joined is current or self.domain.equal(joined, current):
            return False
        self._set_entry_target(key, joined)
        return True

    def _retract_site(self, callee_key: ProcedureKey, site_id: SiteId) -> bool:
        """Drop one site's contribution to one callee context.

        Returns True when the callee's results may have changed (so the
        retraction must cascade to the callee's own call sites)."""
        contribs = self._contribs.get(callee_key)
        if contribs is None or site_id not in contribs:
            return False
        del contribs[site_id]
        self._entry_growths.pop((callee_key, site_id), None)
        return self._recompute_entry_target(callee_key)

    def _sync_entry(self, key: ProcedureKey) -> None:
        """Write the target entry into the engine's DAIG if it drifted.

        Deliberately lazy: a summary hit never touches the callee's DAIG, so
        entry-state churn that resolves to previously seen states does not
        re-dirty whole callee analyses.
        """
        target = self._entry_target.get(key)
        if target is None:
            return
        current = self.entry_states[key]
        if current is target or self.domain.equal(current, target):
            return
        self.engines[key].set_entry_state(target)
        self.entry_states[key] = target
        self._dirty_keys.add(key)
        self.counters["interproc_entry_syncs"] += 1

    # -- the call transfer --------------------------------------------------------------

    def _analyze_call(self, caller_key: ProcedureKey, stmt: A.CallStmt,
                      state: Any, site: Optional[Name] = None) -> Any:
        callee = stmt.function
        if callee not in self.cfgs:
            # Unknown (external) callee: fall back to the domain's own
            # intraprocedural havoc semantics.
            return self.domain.transfer(stmt, state)
        caller_name, caller_context = caller_key
        context = self.policy.callee_context(caller_context, (caller_name, stmt))
        callee_cfg = self.cfgs[callee]
        entry_state = self.domain.call_entry(state, callee_cfg.params, stmt.args)
        callee_key = (callee, context)
        self._engine_for(callee, context, entry_state)
        skey: SiteKey = ((site.loc, site.aux, site.index)
                         if site is not None else (-1, -1, -1))
        site_id: SiteId = (caller_key, skey)
        contribs = self._contribs.setdefault(callee_key, {})
        previous = contribs.get(site_id)
        # A site's contribution grows monotonically *within* a program
        # version (caller loop iterates re-evaluate the same site with
        # growing states; replacing rather than joining would make entry
        # targets oscillate and defeat loop convergence).  Retraction —
        # which is what restores precision — happens only on edits.
        updated = (entry_state if previous is None
                   else self.domain.join(previous, entry_state))
        if previous is None or (previous is not updated
                                and not self.domain.equal(previous, updated)):
            contribs[site_id] = updated
            self._refresh_entry_target(callee_key, cause=site_id)
        if callee_key in self._active:
            # A recursive call while the callee's own summary is being
            # computed: consume the current assumption (⊥ on the first
            # round); the fixpoint driver re-dirties this cell if the
            # assumption later widens.
            self.counters["interproc_summary_reentries"] += 1
            self._assumption_reads[callee_key] = (
                self._assumption_reads.get(callee_key, 0) + 1)
            callee_exit = self._assumed.get(callee_key, self.domain.bottom())
        else:
            callee_exit = self._callee_exit(callee_key)
        return self.domain.call_return(state, callee_exit, stmt.target, stmt.args)

    def _callee_exit(self, key: ProcedureKey) -> Any:
        """The callee's exit summary at its current target entry state.

        Memoized in the shared table under ``(procedure, context, deep
        code digest, entry state)``; a memo miss consults the persistent
        store (second tier) before touching the callee's engine, so only a
        miss in *both* tiers evaluates the callee's DAIG.
        """
        name, context = key
        target = self._entry_target[key]
        digest = self.deep_digest(name)
        memo_args = (name, context, digest, target)
        found, cached = self._summary_memo.lookup("summary", memo_args)
        if found:
            self.counters["interproc_summary_hits"] += 1
            self._note_exit(key, cached)
            return cached
        if self.store is not None:
            stored = self._store_lookup(memo_args)
            if stored is not None:
                (exit_state,) = stored
                # Install through the same path memoization uses — the
                # callee's DAIG is never touched — but do not write the
                # blob back (it came from the store).
                self._install_summary(key, memo_args, exit_state,
                                      write_store=False)
                self._note_exit(key, exit_state)
                return exit_state
        self.counters["interproc_summary_misses"] += 1
        engine = self.engines[key]
        self._sync_entry(key)
        if self.callgraph.is_recursive(name):
            exit_state = self._fixpoint_exit(key, engine)
        else:
            exit_state = engine.query_exit()
        if not self._active:
            # Memoize only assumption-free results: while any SCC fixpoint
            # is still iterating, exits computed in its scope may depend on
            # a provisional (not yet converged) assumption and must not
            # outlive the iteration.  Once the session unwinds, re-demanded
            # exits are cheap (the engine's cells are cached) and memoize
            # then.  The entry target is re-read: evaluation (a recursive
            # fixpoint, or feedback through a caller) may have grown it, and
            # the computed exit belongs to the *final* entry, not the one
            # this call demanded.
            memo_args = (name, context, digest, self._entry_target[key])
            self._install_summary(key, memo_args, exit_state,
                                  write_store=True)
        self._note_exit(key, exit_state)
        return exit_state

    # -- the persistent summary tier ---------------------------------------------------

    def _install_summary(self, key: ProcedureKey, memo_args: Tuple,
                         exit_state: Any, write_store: bool) -> None:
        """Install one exit summary: memo table, per-procedure key index,
        and (write-through) the persistent store.  Every install — normal
        memoization, a coordinator seed, a store hit — goes through here,
        so the tiers can never disagree about what a key means."""
        self._summary_memo.store("summary", memo_args, exit_state)
        self._summary_keys.setdefault(key[0], set()).add(memo_args)
        if self.store is None:
            return
        name, context, digest, entry_state = memo_args
        store_key = summary_store_key(
            self.domain.name, name, context, digest, entry_state)
        self._store_keys.setdefault(key, set()).add(store_key)
        if write_store:
            self.store.put(store_key, encode_summary(exit_state))
            self.counters["interproc_store_writes"] += 1

    def _store_lookup(self, memo_args: Tuple) -> Optional[Tuple[Any]]:
        """Second-tier fetch; returns ``(exit_state,)`` or None on miss.

        Every failure mode — absent key, backend error, corrupt or
        version-incompatible blob — is a miss; corrupt blobs are deleted
        so they are rewritten rather than re-fetched forever.
        """
        assert self.store is not None
        name, context, digest, entry_state = memo_args
        store_key = summary_store_key(
            self.domain.name, name, context, digest, entry_state)
        blob = self.store.get(store_key)
        if blob is None:
            self.counters["interproc_store_misses"] += 1
            return None
        try:
            exit_state = decode_summary(blob)
        except StoreDecodeError:
            self.counters["interproc_store_errors"] += 1
            self.counters["interproc_store_misses"] += 1
            self.store.delete(store_key)
            return None
        self.counters["interproc_store_hits"] += 1
        return (exit_state,)

    def store_probe(self, name: str, context: Context,
                    entry_state: Any) -> Optional[Any]:
        """Probe the store for a summary at an *explicit* entry state.

        The parallel coordinator's dispatch hook: a hit means the job's
        result is already known for this exact (code, context, entry), so
        no worker needs to run — the exit is seeded like any certified
        result.  No memo installation happens here (that is
        :meth:`seed_summary`'s job, after certification).
        """
        if self.store is None:
            return None
        memo_args = (name, context, self.deep_digest(name), entry_state)
        stored = self._store_lookup(memo_args)
        return None if stored is None else stored[0]

    def store_stats(self) -> Optional[Dict[str, int]]:
        """The attached store's counter snapshot, or None without a store."""
        return None if self.store is None else self.store.stats()

    def _note_exit(self, key: ProcedureKey, exit_state: Any) -> None:
        """Record the summary consumers last saw; on change, dirty them."""
        previous = self._last_exit.get(key)
        self._last_exit[key] = exit_state
        if (previous is not None and previous is not exit_state
                and not self.domain.equal(previous, exit_state)):
            self._dirty_callers_of(key[0])

    def _fixpoint_exit(self, key: ProcedureKey, engine: DaigEngine) -> Any:
        """Summary fixpoint for a procedure in a recursive SCC.

        Iterate: evaluate the exit with recursive calls returning the
        current assumption; if the assumption was consumed and the computed
        exit is not covered by it, widen the assumption, dirty exactly the
        dependent call cells, and re-evaluate.  The returned ``F(A) ⊑ A``
        makes ``A`` a post-fixpoint, so the result soundly covers every
        concrete execution of the recursion.
        """
        self._active.add(key)
        try:
            for _round in range(MAX_SUMMARY_ROUNDS):
                self._sync_entry(key)
                entry_before = self._entry_target[key]
                reads_before = self._assumption_reads.get(key, 0)
                exit_state = engine.query_exit()
                # A round is conclusive only if the procedure's *entry*
                # stayed stable while it ran: recursive calls inside the
                # body grow the entry target (the base case may only become
                # feasible after entry widening), and an exit computed
                # against a still-moving entry — ⊥ included — must iterate,
                # not converge.
                entry_after = self._entry_target[key]
                entry_stable = (entry_after is entry_before
                                or self.domain.equal(entry_after, entry_before))
                reads = self._assumption_reads.get(key, 0) != reads_before
                assumed = self._assumed.get(key)
                if entry_stable and not reads:
                    return exit_state  # no recursive call was actually demanded
                if (entry_stable and assumed is not None
                        and self.domain.leq(exit_state, assumed)):
                    return exit_state
                if assumed is None:
                    self._assumed[key] = exit_state
                elif not self.domain.leq(exit_state, assumed):
                    self._assumed[key] = self.domain.widen(
                        assumed, self.domain.join(assumed, exit_state))
                self.counters["interproc_fixpoint_rounds"] += 1
                # Everything computed from the old assumption is stale.
                self._dirty_callers_of(key[0])
            raise SummaryDivergenceError(
                "summary fixpoint for %r did not converge within %d rounds"
                % (key, MAX_SUMMARY_ROUNDS))
        finally:
            self._active.discard(key)

    # -- parallel-coordinator hooks ----------------------------------------------------

    def ensure_engine(self, name: str, context: Context,
                      entry_state: Any) -> DaigEngine:
        """Materialize the engine for ``(name, context)`` if absent.

        The parallel coordinator uses this to pre-build the DAIGs of
        certified summary jobs (structure only — no evaluation), so that
        their call sites are indexed and later edits retract contributions
        exactly as if the engines had been built on demand.
        """
        return self._engine_for(name, context, entry_state)

    def record_call_contribution(self, caller_key: ProcedureKey, skey: SiteKey,
                                 callee: str, context: Context,
                                 entry_state: Any) -> None:
        """Record one call site's entry-state contribution to a callee.

        Mirrors exactly what evaluating the call cell would record
        (:meth:`_analyze_call` without the exit demand): the parallel
        coordinator replays certified workers' derived contributions through
        this, so callee entry targets include the contributions of
        procedures whose exits were served from seeded summaries and were
        therefore never evaluated in-process.
        """
        callee_key = (callee, context)
        self._engine_for(callee, context, entry_state)
        site_id: SiteId = (caller_key, skey)
        contribs = self._contribs.setdefault(callee_key, {})
        previous = contribs.get(site_id)
        updated = (entry_state if previous is None
                   else self.domain.join(previous, entry_state))
        if previous is None or (previous is not updated
                                and not self.domain.equal(previous, updated)):
            contribs[site_id] = updated
            self._refresh_entry_target(callee_key, cause=site_id)

    def seed_summary(self, name: str, context: Context,
                     entry_state: Any, exit_state: Any) -> None:
        """Install a precomputed exit summary for the *current* code version.

        Keyed — like every summary — by the entry state, so a seed is only
        ever consumed when demanded evaluation derives exactly this entry
        target for ``(name, context)``; a seed at an entry that is never
        derived is dead weight, not a soundness hazard.  Registered in the
        per-procedure key index so digest invalidation purges it like any
        other summary, and written through to the persistent store
        (certified results are exactly what warm starts want to find).
        """
        key = (name, context)
        if key in self._entry_target:
            target = self._entry_target[key]
            if target is not entry_state and not self.domain.equal(
                    target, entry_state):
                # The engine has already derived a different target; a seed
                # at this entry could not be consumed before going stale.
                return
        memo_args = (name, context, self.deep_digest(name), entry_state)
        self._install_summary(key, memo_args, exit_state, write_store=True)

    def summary_digest(self) -> str:
        """A digest of every live (procedure, context) exit summary.

        The certification check of the parallel evaluator *and* of the
        persistent-store warm path: after identical demand, a
        parallel-warmed (or store-warmed, or restarted) engine and a
        purely sequential cold engine must produce equal digests.  Every
        live key's exit is demanded through the normal query path (so the
        digest itself never bypasses the engine's convergence machinery),
        then hashed in sorted key order.

        States are hashed through their *canonical* encoding
        (:func:`repro.store.canonical_bytes`), not ``pickle.dumps``, so
        digests are comparable across processes and interpreter versions —
        pickle framing depends on memoization order and protocol details
        that have nothing to do with the states' content.

        The digest first drives :meth:`analyze_everything` to a fixpoint so
        that both engines hold the same (procedure, context) key set before
        hashing — engine construction is demand-order-dependent, exhaustive
        evaluation is not.
        """
        import hashlib

        self.analyze_everything()
        digest = hashlib.sha256()
        live = self.live_keys()
        keys = [key for key in self.engines if key in live]
        for key in sorted(keys, key=lambda k: (k[0], repr(k[1]))):
            name, context = key
            exit_state = self.query(name, self.cfgs[name].exit, context)
            # Contexts are opaque hashables (a custom policy may ship
            # values outside the canonical grammar); repr of the shipped
            # policies' tuples-of-strings is deterministic everywhere.
            digest.update(repr((name, repr(context))).encode("utf-8"))
            digest.update(canonical_bytes(exit_state))
        return digest.hexdigest()

    # -- queries ---------------------------------------------------------------------

    def query(self, procedure: str, loc: Loc, context: Context = ENTRY_CONTEXT) -> Any:
        """The invariant at ``loc`` of ``procedure`` in a specific context."""
        key = (procedure, context)
        if key not in self.engines:
            if context == ENTRY_CONTEXT and procedure in self.cfgs:
                # Analyzing a procedure with no known callers: start from the
                # domain's own initial state, as the paper's implementation
                # does for queries in not-yet-analyzed functions.
                state = self.domain.initial(self.cfgs[procedure].params)
                self._root_entries[key] = state
                self._engine_for(procedure, context, state)
                self._refresh_entry_target(key)
            else:
                raise KeyError("no analysis exists for %r in context %r"
                               % (procedure, context))
        self._sync_entry(key)
        return self.engines[key].query_location(loc)

    def query_entry_exit(self) -> Any:
        """The abstract state at the entry procedure's exit."""
        return self.query(self.entry, self.cfgs[self.entry].exit)

    def queried_roots(self) -> List[str]:
        """Procedures analyzed from the domain's initial state because they
        were queried directly while they had no known callers (plus the
        entry procedure).  Replaying queries against these procedures on a
        fresh engine reproduces this engine's root set — the equality
        property tests use that to issue identical demand on both sides."""
        return sorted({name for (name, _context) in self._root_entries})

    def analyze_everything(self) -> Dict[ProcedureKey, Dict[Loc, Any]]:
        """Exhaustively evaluate every constructed (procedure, context) DAIG.

        A worklist of not-yet-analyzed and re-dirtied keys: evaluating an
        engine may construct new callee engines (added to the worklist) or
        dirty previously evaluated ones (entry/summary changes re-enqueue
        them); the loop runs until everything is stable, so the returned
        results are consistent with every procedure's final summary.
        """
        # Contexts are opaque hashables (a custom policy may use unorderable
        # values), so determinism comes from sorting on (name, repr(ctx)).
        def order(key: ProcedureKey) -> Tuple[str, str]:
            return (key[0], repr(key[1]))

        results: Dict[ProcedureKey, Dict[Loc, Any]] = {}
        for _round in range(MAX_SUMMARY_ROUNDS):
            todo = [key for key in sorted(self.engines, key=order)
                    if key not in results]
            if self._dirty_keys:
                dirty = sorted((key for key in self._dirty_keys
                                if key in self.engines and key not in todo),
                               key=order)
                self._dirty_keys.clear()
                todo.extend(dirty)
            if not todo:
                return results
            for key in todo:
                self._sync_entry(key)
                results[key] = self.engines[key].query_all()
        raise SummaryDivergenceError(
            "analyze_everything did not stabilize within %d rounds"
            % (MAX_SUMMARY_ROUNDS,))

    def contexts_of(self, procedure: str, live_only: bool = False) -> List[Context]:
        """All contexts in which ``procedure`` has been analyzed.

        ``live_only=True`` restricts to contexts still reachable from the
        entry (or an explicit root query) in the *current* program — edits
        can orphan contexts whose creating call sites no longer exist.
        """
        keys = list(self._proc_keys.get(procedure, ()))
        if live_only:
            live = self.live_keys()
            keys = [key for key in keys if key in live]
        return [context for (_name, context) in keys]

    def live_keys(self) -> Set[ProcedureKey]:
        """(procedure, context) pairs reachable from the entry and the
        explicitly queried roots under the current program and policy.

        O(call sites × live contexts) — an on-demand consistency view, not
        part of the per-edit path.
        """
        live: Set[ProcedureKey] = set(self._root_entries)
        live.add((self.entry, ENTRY_CONTEXT))
        frontier = list(live)
        while frontier:
            name, context = frontier.pop()
            for _loc, stmt in self.callgraph.call_sites.get(name, ()):
                if stmt.function not in self.cfgs:
                    continue
                callee_key = (stmt.function,
                              self.policy.callee_context(context, (name, stmt)))
                if callee_key not in live:
                    live.add(callee_key)
                    frontier.append(callee_key)
        return live

    def collect_garbage(self) -> int:
        """Retire engines for contexts no longer reachable (see
        :meth:`live_keys`), retracting their entry-state contributions so
        surviving callees regain the precision of a from-scratch analysis,
        and expiring the retired contexts' persistent-store entries so the
        store's growth is bounded by the live key set, not by edit history.
        Returns the number of engines collected."""
        live = self.live_keys()
        dead = [key for key in self.engines if key not in live]
        for key in dead:
            engine = self.engines.pop(key)
            for store_key in sorted(self._store_keys.pop(key, ())):
                if self.store is not None and self.store.delete(store_key):
                    self.counters["interproc_store_expired"] += 1
            engine.stmt_change_listener = None
            self.cfgs[key[0]].remove_structure_listener(engine._listener)
            self._proc_keys[key[0]].remove(key)
            self.entry_states.pop(key, None)
            self._entry_target.pop(key, None)
            self._root_entries.pop(key, None)
            self._contribs.pop(key, None)
            self._last_exit.pop(key, None)
            self._assumed.pop(key, None)
            self._assumption_reads.pop(key, None)
            self._dirty_keys.discard(key)
            self._entry_stale.discard(key)
        if dead:
            dead_set = set(dead)
            self._entry_growths = {
                (ckey, (caller_key, skey)): count
                for (ckey, (caller_key, skey)), count
                in self._entry_growths.items()
                if ckey not in dead_set and caller_key not in dead_set}
        # Retract dead engines' contributions from surviving callees.
        for key in dead:
            sites = self._site_callee.pop(key, {})
            for skey, callee in sites.items():
                self._drop_site(callee, key, skey)
        return len(dead)

    # -- edits -----------------------------------------------------------------------

    def edit_procedure(
        self,
        procedure: str,
        edit: Callable[[DaigEngine], None],
    ) -> None:
        """Apply ``edit`` to ``procedure`` and propagate across procedures.

        The CFG is shared by every context of the procedure, so the edit
        callback runs once (against one engine, inside a
        :meth:`~repro.daig.engine.DaigEngine.batch_edits` block); the
        remaining contexts splice their DAIGs over the same reported region
        (:meth:`~repro.daig.engine.DaigEngine.resync`).  Cross-procedure
        propagation dirties exactly the dependent call cells from the
        call-site index — there is no scan over any DAIG's ref set — and
        bumps the summary version of the procedure and its transitive
        callers, so stale summaries die with their memo keys.
        """
        if procedure not in self.cfgs:
            raise KeyError("no procedure named %r" % (procedure,))
        keys = list(self._proc_keys.get(procedure, ()))
        if not keys:
            # Never-analyzed procedure: materialize its entry-context engine
            # so the edit lands somewhere.  Deliberately *not* a root entry
            # (this is not a query): the initial state is only a stale
            # placeholder, replaced exactly by the first real caller's
            # contribution, so precision matches a from-scratch analysis.
            state = self.domain.initial(self.cfgs[procedure].params)
            key = (procedure, ENTRY_CONTEXT)
            self._engine_for(procedure, ENTRY_CONTEXT, state)
            self._entry_stale.add(key)
            keys = [key]
        primary = self.engines[keys[0]]
        try:
            with primary.batch_edits():
                edit(primary)
        finally:
            for key in keys[1:]:
                self.engines[key].resync()
            self.cfgs[procedure] = primary.cfg
            self.callgraph.update_procedure(procedure, self.cfgs[procedure])
            if self.require_nonrecursive:
                self.callgraph.check_nonrecursive()
            # Drop recursion assumptions (re-derived from scratch on the
            # next fixpoint, for precision) and invalidate the content
            # digests of the procedure and its transitive callers.
            self._assumed.clear()
            # Early cutoff: snapshot the summaries the invalidation is
            # about to purge, then try to certify the edit as invisible to
            # callers (exit summaries unchanged) before propagating.  Never
            # attempted while an exception is unwinding — the edit did not
            # complete, so the conservative full dirtying is the only safe
            # course.
            captured = (self._capture_summaries(procedure)
                        if self.cutoff and sys.exc_info()[0] is None
                        and self._cutoff_applicable(procedure)
                        else None)
            self._invalidate_summaries(procedure)
            self._dirty_keys.update(keys)
            if captured is not None and self._summary_cutoff(
                    procedure, keys, captured):
                pass  # exits unchanged: no caller is dirtied at all
            else:
                touched = self._dirty_callers_of(procedure)
                # Retract the contributions of every dirtied engine's call
                # sites: the states they feed their callees may have
                # changed, and re-demanding re-records exactly the live
                # ones.
                self._retract_contributions_from(set(keys) | touched)

    def _cutoff_applicable(self, procedure: str) -> bool:
        """Whether an edit to ``procedure`` may attempt summary cutoff.

        Certification recomputes the edited procedure's exits *eagerly*,
        demanding its transitive callees.  If any of those participates in
        a call cycle, that recomputation runs summary fixpoints with the
        recursion assumptions freshly cleared — a different widening
        history than the normal demand path, which can land on a different
        (equally sound, but not identical) post-fixpoint.  The cutoff's
        contract is that enabling it changes *no* answer, so edits whose
        certification would touch recursion skip it entirely and take the
        conservative path, byte-identical to a cutoff-disabled engine.
        """
        return not any(self.callgraph.is_recursive(name)
                       for name in self.callgraph.reachable_from(procedure))

    def _capture_summaries(
            self, procedure: str) -> Dict[Tuple[str, Context, Any], Any]:
        """Snapshot the memoized exit summaries that editing ``procedure``
        is about to purge (its own and its transitive callers'), keyed by
        ``(procedure, context, entry state)`` — the digest-free identity a
        certified cutoff can re-key them under (:meth:`_summary_cutoff`)."""
        captured: Dict[Tuple[str, Context, Any], Any] = {}
        stale = {procedure} | self.callgraph.transitive_callers(procedure)
        for name in stale:
            for memo_args in self._summary_keys.get(name, ()):
                found, cached = self._summary_memo.peek("summary", memo_args)
                if found:
                    nm, context, _digest, entry_state = memo_args
                    captured[(nm, context, entry_state)] = cached
        return captured

    def _summary_cutoff(
        self,
        procedure: str,
        keys: List[ProcedureKey],
        captured: Dict[Tuple[str, Context, Any], Any],
    ) -> bool:
        """Recompute the edited procedure's exit summaries *before*
        propagating; certify the edit invisible when every live context's
        exit is unchanged.

        On success the callers are never dirtied — a value-preserving edit
        (rename, reorder, edit-then-revert) costs the edited procedure's
        own re-analysis and nothing else — and the purged summaries of
        untouched callers are re-installed under their new deep digests
        (an alias write, so warm starts across value-preserving refactors
        still hit the memo and the persistent store).  Returns False when
        any exit moved, any live context was never evaluated, or the
        recomputation itself dirtied callers; the caller then falls back
        to the full dirtying path.
        """
        prior_exits: Dict[ProcedureKey, Any] = {}
        for key in keys:
            prior = self._last_exit.get(key)
            if prior is None or key not in self._entry_target:
                return False
            prior_exits[key] = prior
        dirty_before = set(self._dirty_keys)
        # The edited engines' own call contributions may have changed;
        # retract them first so the recomputed exits see the same callee
        # entry states a from-scratch analysis would.
        self._retract_contributions_from(set(keys))
        changed = False
        for key in keys:
            # Pop the recorded exit so _note_exit does not dirty callers
            # mid-certification: we hold the prior and compare here; on
            # failure the fallback path runs the one real dirtying wave.
            self._last_exit.pop(key, None)
            new_exit = self._callee_exit(key)
            prior = prior_exits[key]
            if new_exit is not prior and not self.domain.equal(new_exit, prior):
                changed = True
        if changed:
            return False
        self.counters["interproc_summary_cutoffs"] += 1
        # Re-key the callers' still-valid summaries under their new deep
        # digests.  Only keys whose engine the certification left untouched
        # qualify: a retraction cascade that moved some callee's entry
        # target dirtied the dependent engines, and their old summaries
        # cannot be trusted under the new code.
        newly_dirty = self._dirty_keys - dirty_before
        for key, target in self._entry_target.items():
            name, context = key
            if name == procedure or key in newly_dirty:
                continue
            hit = captured.get((name, context, target))
            if hit is None:
                continue
            memo_args = (name, context, self.deep_digest(name), target)
            if memo_args in self._summary_keys.get(name, set()):
                continue
            self._install_summary(key, memo_args, hit, write_store=True)
            self.counters["interproc_store_rekeys"] += 1
        return True

    def _invalidate_summaries(self, procedure: str) -> None:
        """Invalidate summaries of ``procedure`` and its transitive callers
        (exactly the procedures whose analysis the edit can change) by
        dropping their cached content digests — O(dependent procedures);
        the digests recompute lazily on the next summary lookup, walking
        only the invalidated region of the condensation.  The memoized
        entries orphaned under the old digests are purged so long edit
        sessions do not leak dead exit states in the shared memo table.
        Persistent-store entries are deliberately *not* purged here: they
        remain valid for any engine still running the old code (that is
        the point of content addressing); bounded growth comes from
        :meth:`collect_garbage`.

        Correctness of the invalidation set: the callgraph is updated
        *before* this runs, and ``transitive_callers(p)`` is unaffected by
        changes to ``p``'s own out-edges (any path witnessing a caller of
        ``p`` has a prefix reaching ``p`` that uses no edge out of ``p``),
        so the set computed on the new graph covers the procedures whose
        deep digests mention ``p`` under either version.
        """
        self._code_digest.pop(procedure, None)
        stale = {procedure} | self.callgraph.transitive_callers(procedure)
        for name in stale:
            self._deep_digest.pop(name, None)
            for memo_args in self._summary_keys.pop(name, ()):
                self._summary_memo.discard("summary", memo_args)

    def _dirty_callers_of(self, procedure: str) -> Set[ProcedureKey]:
        """Dirty the call cells dependent on ``procedure``, transitively.

        Driven entirely by the call-site index: the work is proportional to
        the number of dependent call sites (plus their downstream cells),
        never to the size of any DAIG or of the program.  Returns the caller
        engine keys whose cells were dirtied.
        """
        touched: Set[ProcedureKey] = set()
        seen: Set[str] = set()
        # Tripwire: every engine built through `_engine_for` is indexed; an
        # engine missing from the index would silently miss dirtying, so it
        # falls back to the legacy full ref-set scan — and the scan counter
        # (asserted == 0 in tests and on the CI bench artifact) exposes it.
        unindexed = [key for key in self.engines
                     if key not in self._site_callee]
        stack = [procedure]
        while stack:
            proc = stack.pop()
            if proc in seen:
                continue
            seen.add(proc)
            for caller_key, skeys in list(
                    self._dependent_sites.get(proc, {}).items()):
                engine = self.engines.get(caller_key)
                if engine is None:
                    continue
                names = [name for name in (stmt_name(*skey) for skey in skeys)
                         if name in engine.daig.refs]
                if not names:
                    continue
                dirty_forward(engine.daig, engine.builder, names)
                self.counters["interproc_callsite_dirties"] += len(names)
                self._dirty_keys.add(caller_key)
                touched.add(caller_key)
                stack.append(caller_key[0])
            for caller_key in unindexed:
                engine = self.engines[caller_key]
                self.counters["interproc_callsite_scans"] += 1
                names = [
                    name for name in engine.daig.refs
                    if name.kind == "stmt" and engine.daig.has_value(name)
                    and isinstance(engine.daig.value(name), A.CallStmt)
                    and engine.daig.value(name).function == proc
                ]
                if not names:
                    continue
                dirty_forward(engine.daig, engine.builder, names)
                self.counters["interproc_callsite_dirties"] += len(names)
                self._dirty_keys.add(caller_key)
                touched.add(caller_key)
                stack.append(caller_key[0])
        return touched

    def _retract_contributions_from(self, keys: Set[ProcedureKey]) -> None:
        """Drop the entry-state contributions recorded by the given engines'
        call sites, cascading through entry-target changes.

        Called on the edit path for every engine whose cells the edit
        dirtied: the states those sites feed their callees may have changed,
        so their old contributions are retracted and re-recorded on demand —
        exactly the contributions a from-scratch analysis would see.  When a
        retraction moves a callee's entry target, that callee's own results
        may change too, so *its* contributions are retracted as well; the
        cascade is bounded by the transitively affected engines' call
        sites (each engine is processed at most once per edit event)."""
        pending = list(keys)
        seen: Set[ProcedureKey] = set(keys)
        while pending:
            caller_key = pending.pop()
            for skey, callee in list(
                    self._site_callee.get(caller_key, {}).items()):
                site_id: SiteId = (caller_key, skey)
                for callee_key in list(self._proc_keys.get(callee, ())):
                    if (self._retract_site(callee_key, site_id)
                            and callee_key not in seen):
                        seen.add(callee_key)
                        pending.append(callee_key)

    # -- statistics ----------------------------------------------------------------------

    def total_stats(self) -> Dict[str, int]:
        """Aggregate query/edit statistics over every constructed DAIG.

        Structure-phase counters are shared per *procedure* (one CFG and one
        structure cache regardless of context count), so they are folded in
        once per procedure, not once per engine."""
        totals: Dict[str, int] = {}
        for engine in self.engines.values():
            for key, value in engine.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
            for key, value in engine.edit_stats.as_dict(
                    include_structure=False).items():
                totals[key] = totals.get(key, 0) + value
        for name in {key[0] for key in self.engines}:
            for key, value in self.cfgs[name].structure_stats().items():
                totals[key] = totals.get(key, 0) + value
        totals["daigs"] = len(self.engines)
        totals.update(self.counters)
        return totals

    def total_phase_seconds(self) -> Dict[str, float]:
        """Per-phase wall-clock seconds summed over every constructed DAIG
        (the shared structure phase counted once per procedure)."""
        totals: Dict[str, float] = {}
        for engine in self.engines.values():
            for key, value in engine.phase_seconds(
                    include_structure=False).items():
                totals[key] = totals.get(key, 0.0) + value
        structure = 0.0
        for name in {key[0] for key in self.engines}:
            structure += self.cfgs[name].structure_seconds()
        totals["structure"] = totals.get("structure", 0.0) + structure
        for key, value in self.parallel_phase.items():
            totals[key] = totals.get(key, 0.0) + value
        return totals
