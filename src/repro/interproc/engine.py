"""Context-sensitive interprocedural demanded abstract interpretation.

Following Section 7.1 of the paper: a DAIG is constructed per *(procedure,
context)* pair, on demand.  Initially only the entry procedure's DAIG (in
the entry context) exists; when a query reaches the abstract state after a
call, the engine constructs (or reuses) the callee's DAIG in the context
chosen by the context-sensitivity policy, seeds its entry state from the
caller's state at the call site, demands the callee's exit state, and maps
it back into the caller through the domain's ``call_return`` hook.

Edits to a procedure are applied to every existing DAIG of that procedure
and then propagated to (transitive) callers by dirtying the cells downstream
of the affected call sites — the interprocedural analogue of the
E-Propagate rule.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..daig.edit import dirty_forward
from ..daig.engine import DaigEngine
from ..daig.memo import MemoTable
from ..domains.base import AbstractDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, Loc
from .callgraph import CallGraph
from .context import ENTRY_CONTEXT, Context, ContextInsensitive, ContextPolicy

ProcedureKey = Tuple[str, Context]


class InterproceduralEngine:
    """One DAIG per (procedure, context), built and evaluated on demand."""

    def __init__(
        self,
        cfgs: Dict[str, Cfg],
        domain: AbstractDomain,
        policy: Optional[ContextPolicy] = None,
        entry: str = "main",
        share_memo: bool = True,
    ) -> None:
        if entry not in cfgs:
            raise KeyError("no procedure named %r" % (entry,))
        self.cfgs = cfgs
        self.domain = domain
        self.policy = policy if policy is not None else ContextInsensitive()
        self.entry = entry
        self.callgraph = CallGraph(cfgs)
        self.callgraph.check_nonrecursive()
        self.memo: Optional[MemoTable] = MemoTable() if share_memo else None
        self.engines: Dict[ProcedureKey, DaigEngine] = {}
        self.entry_states: Dict[ProcedureKey, Any] = {}
        #: callee key -> caller keys whose results depend on it.
        self.dependents: Dict[ProcedureKey, Set[ProcedureKey]] = {}
        self._engine_for(entry, ENTRY_CONTEXT, domain.initial(cfgs[entry].params))

    # -- engine management ---------------------------------------------------------

    def _engine_for(self, name: str, context: Context, entry_state: Any) -> DaigEngine:
        key = (name, context)
        if key in self.engines:
            return self.engines[key]
        cfg = self.cfgs[name].copy()
        engine = DaigEngine(
            cfg,
            self.domain,
            memo=self.memo if self.memo is not None else MemoTable(),
            entry_state=entry_state,
            call_transfer=self._make_call_transfer(key),
        )
        self.engines[key] = engine
        self.entry_states[key] = entry_state
        return engine

    def _make_call_transfer(self, caller_key: ProcedureKey) -> Callable[[A.CallStmt, Any], Any]:
        def call_transfer(stmt: A.CallStmt, state: Any) -> Any:
            return self._analyze_call(caller_key, stmt, state)
        return call_transfer

    def _analyze_call(self, caller_key: ProcedureKey, stmt: A.CallStmt, state: Any) -> Any:
        callee = stmt.function
        if callee not in self.cfgs:
            # Unknown (external) callee: fall back to the domain's own
            # intraprocedural havoc semantics.
            return self.domain.transfer(stmt, state)
        caller_name, caller_context = caller_key
        context = self.policy.callee_context(caller_context, (caller_name, stmt))
        callee_cfg = self.cfgs[callee]
        entry_state = self.domain.call_entry(state, callee_cfg.params, stmt.args)
        callee_key = (callee, context)
        engine = self._engine_for(callee, context, entry_state)
        # Widen the callee's entry state to cover this call site if needed.
        current = self.entry_states[callee_key]
        if not self.domain.leq(entry_state, current):
            merged = self.domain.join(current, entry_state)
            self.entry_states[callee_key] = merged
            engine.set_entry_state(merged)
        self.dependents.setdefault(callee_key, set()).add(caller_key)
        callee_exit = engine.query_exit()
        return self.domain.call_return(state, callee_exit, stmt.target, stmt.args)

    # -- queries ---------------------------------------------------------------------

    def query(self, procedure: str, loc: Loc, context: Context = ENTRY_CONTEXT) -> Any:
        """The invariant at ``loc`` of ``procedure`` in a specific context."""
        key = (procedure, context)
        if key not in self.engines:
            if procedure == self.entry and context == ENTRY_CONTEXT:
                pass
            elif context == ENTRY_CONTEXT and procedure != self.entry:
                # Analyzing a procedure with no known callers: start from the
                # domain's own initial state, as the paper's implementation
                # does for queries in not-yet-analyzed functions.
                self._engine_for(procedure, context,
                                 self.domain.initial(self.cfgs[procedure].params))
            else:
                raise KeyError("no analysis exists for %r in context %r"
                               % (procedure, context))
        return self.engines[key].query_location(loc)

    def query_entry_exit(self) -> Any:
        """The abstract state at the entry procedure's exit."""
        return self.query(self.entry, self.cfgs[self.entry].exit)

    def analyze_everything(self) -> Dict[ProcedureKey, Dict[Loc, Any]]:
        """Exhaustively evaluate every constructed (procedure, context) DAIG.

        The entry procedure is fully analyzed first, which constructs callee
        DAIGs on demand; the loop then keeps evaluating until no new
        (procedure, context) pairs appear.
        """
        results: Dict[ProcedureKey, Dict[Loc, Any]] = {}
        pending = True
        while pending:
            pending = False
            for key in list(self.engines):
                if key not in results:
                    results[key] = self.engines[key].query_all()
                    pending = True
        return results

    def contexts_of(self, procedure: str) -> List[Context]:
        """All contexts in which ``procedure`` has been analyzed."""
        return [context for (name, context) in self.engines if name == procedure]

    # -- edits -----------------------------------------------------------------------

    def edit_procedure(
        self,
        procedure: str,
        edit: Callable[[DaigEngine], None],
    ) -> None:
        """Apply ``edit`` to every analysis of ``procedure`` and propagate.

        ``edit`` receives each (procedure, context) engine in turn, inside a
        :meth:`~repro.daig.engine.DaigEngine.batch_edits` block so that an
        edit callback performing several structural edits costs one splice
        per engine; after the edit, every transitive caller has the cells
        downstream of its call sites to ``procedure`` dirtied, so stale
        summaries are recomputed on the next query (lazily, exactly like
        intraprocedural dirtying).
        """
        touched: List[ProcedureKey] = []
        for key, engine in self.engines.items():
            if key[0] == procedure:
                with engine.batch_edits():
                    edit(engine)
                touched.append(key)
        # Also keep the master CFG in sync for future engine constructions.
        # The call graph is patched per-procedure rather than rebuilt: an
        # edit touches one procedure, so only its call edges are re-derived.
        if touched:
            self.cfgs[procedure] = self.engines[touched[0]].cfg
            self.callgraph.update_procedure(procedure, self.cfgs[procedure])
            self.callgraph.check_nonrecursive()
        self._dirty_callers_of(procedure)

    def _dirty_callers_of(self, procedure: str, seen: Optional[Set[str]] = None) -> None:
        seen = seen if seen is not None else set()
        if procedure in seen:
            return
        seen.add(procedure)
        for caller_key, engine in self.engines.items():
            caller_name = caller_key[0]
            call_cells = [
                name for name in engine.daig.refs
                if name.kind == "stmt" and engine.daig.has_value(name)
                and isinstance(engine.daig.value(name), A.CallStmt)
                and engine.daig.value(name).function == procedure
            ]
            if not call_cells:
                continue
            dirty_forward(engine.daig, engine.builder, call_cells)
            self._dirty_callers_of(caller_name, seen)

    # -- statistics ----------------------------------------------------------------------

    def total_stats(self) -> Dict[str, int]:
        """Aggregate query and edit statistics over every constructed DAIG
        (including the per-procedure structure/snapshot phase counters)."""
        totals: Dict[str, int] = {}
        for engine in self.engines.values():
            for key, value in engine.stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
            for key, value in engine.edit_stats.as_dict().items():
                totals[key] = totals.get(key, 0) + value
        totals["daigs"] = len(self.engines)
        return totals

    def total_phase_seconds(self) -> Dict[str, float]:
        """Per-phase wall-clock seconds summed over every constructed DAIG."""
        totals: Dict[str, float] = {}
        for engine in self.engines.values():
            for key, value in engine.phase_seconds().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals
