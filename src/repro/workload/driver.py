"""The workload driver: runs an edit/query stream against a configuration.

This is the harness behind the Fig. 10 experiments: it feeds the *same*
pre-generated stream of edits and queries (fixed random seeds, as in the
paper) to each analysis configuration, times every step, and collects
``(program size, latency)`` samples for the summary table, the CDF, and the
scatter series.  Each trial also records the configuration's final work
counters (transfers, splice-vs-rebuild cell counts, ...), so the benchmarks
can report *how much* analysis each configuration actually performed, not
just how long it took.

``run_trial(..., batch_size=k)`` coalesces each ``k`` consecutive edits into
one :meth:`~repro.analysis.config.AnalysisConfiguration.apply_edits` call —
for the DAIG-backed configurations, a single splice — modelling a developer
who pauses to look at analysis results only every few keystrokes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Sequence

from .generator import (MultiProcStep, MultiProcWorkload, WorkloadGenerator,
                        WorkloadStep)
from .stats import LatencySample, summarize

if TYPE_CHECKING:  # imported only for type checking to avoid an import cycle
    from ..analysis.config import (AnalysisConfiguration,
                                   InterproceduralConfiguration)


@dataclass
class WorkloadResult:
    """All samples collected from running one configuration over one trial."""

    configuration: str
    trial_seed: int
    samples: List[LatencySample] = field(default_factory=list)
    #: The configuration's cumulative work counters at the end of the trial
    #: (query stats, splice-vs-rebuild cell counts, and structure/snapshot
    #: phase counters for DAIG engines).
    work: Dict[str, int] = field(default_factory=dict)
    #: Per-phase wall-clock seconds (structure / snapshot / splice / query),
    #: so regressions can be attributed to a phase, not just a total.
    phases: Dict[str, float] = field(default_factory=dict)

    def latencies(self) -> List[float]:
        return [sample.seconds for sample in self.samples]

    def summary(self) -> Dict[str, float]:
        return summarize(self.latencies())


def run_trial(
    configuration: "AnalysisConfiguration",
    steps: Sequence[WorkloadStep],
    seed: int = 0,
    clock: Callable[[], float] = time.perf_counter,
    progress: Optional[Callable[[int, float], None]] = None,
    batch_size: int = 1,
) -> WorkloadResult:
    """Run ``steps`` against ``configuration``, timing each step.

    Every step's latency covers the work the configuration does in response
    to the edit plus answering the five queries (eager configurations do all
    their work in the edit phase; demand-driven ones in the query phase).
    With ``batch_size > 1``, consecutive edits are applied as one batch and
    the queries of the batch's last step are answered; the sample then covers
    the whole batch.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be at least 1")
    result = WorkloadResult(configuration.name, seed)
    for start in range(0, len(steps), batch_size):
        chunk = steps[start:start + batch_size]
        last = chunk[-1]
        started = clock()
        if len(chunk) == 1:
            configuration.step(last.edit, last.query_locations)
        else:
            configuration.apply_edits([step.edit for step in chunk])
            configuration.answer_queries(last.query_locations)
        elapsed = clock() - started
        result.samples.append(LatencySample(last.program_size, elapsed))
        if progress is not None:
            progress(last.index, elapsed)
    result.work = configuration.work_stats()
    _fold_memo_stats(configuration, result)
    result.phases = configuration.phase_stats()
    return result


def _fold_memo_stats(configuration: Any, result: WorkloadResult) -> None:
    """Fold the configuration's memo-table counters into ``result.work``
    under a stable ``memo_`` prefix (mirroring the ``summary_store_``
    prefix), so cutoff/reuse rates read from the same artifact as every
    other work counter."""
    engine = getattr(configuration, "engine", None)
    memo = getattr(engine, "memo", None)
    if memo is None:  # interproc engines without a shared memo still
        memo = getattr(engine, "_summary_memo", None)  # memoize summaries
    stats = memo.stats() if memo is not None else None
    if stats is not None:
        for stat, value in stats.items():
            if isinstance(value, int):
                result.work["memo_" + stat] = value


def run_interproc_trial(
    configuration: "InterproceduralConfiguration",
    steps: Sequence[MultiProcStep],
    seed: int = 0,
    clock: Callable[[], float] = time.perf_counter,
    progress: Optional[Callable[[int, float], None]] = None,
) -> WorkloadResult:
    """Run a multi-procedure edit/query stream against a configuration.

    The interprocedural analogue of :func:`run_trial`: each step's latency
    covers applying the edit to its procedure (plus whatever eager
    re-analysis the configuration performs) and answering the step's
    (procedure, location) queries.
    """
    result = WorkloadResult(configuration.name, seed)
    for step in steps:
        started = clock()
        configuration.step(step)
        elapsed = clock() - started
        result.samples.append(LatencySample(step.program_size, elapsed))
        if progress is not None:
            progress(step.index, elapsed)
    result.work = configuration.work_stats()
    # Persistent-store tier (if the configuration's engine carries one):
    # fold the backend's own counters in under a stable prefix, so
    # warm-start experiments can read hit rates and occupancy from the
    # same artifact as every other work counter.
    engine = getattr(configuration, "engine", None)
    store_stats = engine.store_stats() if engine is not None else None
    if store_stats is not None:
        for stat, value in store_stats.items():
            if isinstance(value, int):
                result.work["summary_store_" + stat] = value
    _fold_memo_stats(configuration, result)
    result.phases = configuration.phase_stats()
    return result


def generate_interproc_trials(
    edits: int,
    trials: int,
    base_seed: int = 0,
    procedures: int = 5,
    recursive: bool = False,
    queries_per_edit: int = 5,
) -> List[MultiProcWorkload]:
    """Pre-generate independent multi-procedure workloads (fixed seeds, so
    every configuration sees identical streams)."""
    workloads: List[MultiProcWorkload] = []
    for trial in range(trials):
        generator = WorkloadGenerator(seed=base_seed + trial,
                                      queries_per_edit=queries_per_edit)
        workloads.append(generator.generate_multiprocedure(
            edits, procedures=procedures, recursive=recursive))
    return workloads


def generate_trials(
    edits: int,
    trials: int,
    base_seed: int = 0,
    queries_per_edit: int = 5,
) -> List[List[WorkloadStep]]:
    """Pre-generate ``trials`` independent edit/query streams.

    Fixed seeds ensure every configuration sees identical streams, as the
    paper's methodology requires.
    """
    streams: List[List[WorkloadStep]] = []
    for trial in range(trials):
        generator = WorkloadGenerator(seed=base_seed + trial,
                                      queries_per_edit=queries_per_edit)
        streams.append(generator.generate(edits))
    return streams


def run_comparison(
    make_configurations: Callable[[], Dict[str, "AnalysisConfiguration"]],
    edits: int = 100,
    trials: int = 1,
    base_seed: int = 0,
    queries_per_edit: int = 5,
) -> Dict[str, List[WorkloadResult]]:
    """Run every configuration over every trial and return all results.

    ``make_configurations`` is called once per trial so that each trial
    starts from a fresh, empty program for every configuration.
    """
    streams = generate_trials(edits, trials, base_seed, queries_per_edit)
    results: Dict[str, List[WorkloadResult]] = {}
    for trial, steps in enumerate(streams):
        for name, configuration in make_configurations().items():
            outcome = run_trial(configuration, steps, seed=base_seed + trial)
            results.setdefault(name, []).append(outcome)
    return results


def merge_results(results: Dict[str, List[WorkloadResult]]) -> Dict[str, List[LatencySample]]:
    """Pool the samples of all trials per configuration."""
    pooled: Dict[str, List[LatencySample]] = {}
    for name, trials in results.items():
        pooled[name] = [sample for trial in trials for sample in trial.samples]
    return pooled
