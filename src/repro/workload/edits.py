"""Program edits: the unit of change in the interactive workloads.

Section 7.3 exercises the analysis configurations with random edits, each of
which inserts a statement, an if-then-else conditional, or a while loop at a
randomly sampled program location.  This module defines those edits as plain
data objects that can be applied either

* to a bare :class:`~repro.lang.cfg.Cfg` (what the from-scratch
  configurations re-analyze), or
* to a :class:`~repro.daig.engine.DaigEngine` (which splices the DAIG and
  dirties affected cells, preserving everything else for reuse).

Keeping edits first-class guarantees that all four analysis configurations
see *exactly* the same program history, as in the paper's experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..daig.engine import DaigEngine
from ..lang import ast as A
from ..lang.cfg import Cfg, Loc


@dataclass(frozen=True)
class ProgramEdit:
    """Base class: an edit applied immediately after ``location``."""

    location: Loc

    def apply_to_cfg(self, cfg: Cfg) -> None:
        raise NotImplementedError

    def apply_to_engine(self, engine: DaigEngine) -> None:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class InsertStatement(ProgramEdit):
    """Insert a single atomic statement (85% of workload edits)."""

    stmt: A.AtomicStmt = A.SkipStmt()

    def apply_to_cfg(self, cfg: Cfg) -> None:
        cfg.insert_statement_after(self.location, self.stmt)

    def apply_to_engine(self, engine: DaigEngine) -> None:
        engine.insert_statement_after(self.location, self.stmt)

    def describe(self) -> str:
        return "insert `%s` after ℓ%d" % (self.stmt, self.location)


@dataclass(frozen=True)
class InsertConditional(ProgramEdit):
    """Insert an if-then-else conditional (10% of workload edits)."""

    cond: A.Expr = A.BoolLit(True)
    then_stmts: Tuple[A.AtomicStmt, ...] = ()
    else_stmts: Tuple[A.AtomicStmt, ...] = ()

    def apply_to_cfg(self, cfg: Cfg) -> None:
        cfg.insert_conditional_after(
            self.location, self.cond, self.then_stmts, self.else_stmts)

    def apply_to_engine(self, engine: DaigEngine) -> None:
        engine.insert_conditional_after(
            self.location, self.cond, self.then_stmts, self.else_stmts)

    def describe(self) -> str:
        return "insert `if (%s)` after ℓ%d" % (self.cond, self.location)


@dataclass(frozen=True)
class InsertLoop(ProgramEdit):
    """Insert a while loop (5% of workload edits)."""

    cond: A.Expr = A.BoolLit(False)
    body_stmts: Tuple[A.AtomicStmt, ...] = ()

    def apply_to_cfg(self, cfg: Cfg) -> None:
        cfg.insert_loop_after(self.location, self.cond, self.body_stmts)

    def apply_to_engine(self, engine: DaigEngine) -> None:
        engine.insert_loop_after(self.location, self.cond, self.body_stmts)

    def describe(self) -> str:
        return "insert `while (%s)` after ℓ%d" % (self.cond, self.location)


def _find_edge(cfg: Cfg, src: Loc, dst: Loc):
    for edge in cfg.out_edges(src):
        if edge.dst == dst:
            return edge
    raise KeyError("no edge %d -> %d" % (src, dst))


@dataclass(frozen=True)
class ReplaceStatement(ProgramEdit):
    """Replace the statement on an existing edge.

    A *statement-only* edit: applied through the engine it takes the
    zero-structure-work fast path (the CFG patches its live analysis in
    place and the engine re-signs exactly one snapshot location).
    """

    dst: Loc = 0
    stmt: A.AtomicStmt = A.SkipStmt()

    def apply_to_cfg(self, cfg: Cfg) -> None:
        cfg.replace_edge_statement(_find_edge(cfg, self.location, self.dst), self.stmt)

    def apply_to_engine(self, engine: DaigEngine) -> None:
        engine.replace_statement(
            _find_edge(engine.cfg, self.location, self.dst), self.stmt)

    def describe(self) -> str:
        return "replace ℓ%d→ℓ%d with `%s`" % (self.location, self.dst, self.stmt)


def relabel_assignment(target: str, value: A.Expr):
    """An ``edit_procedure`` callback relabelling the first assignment to
    ``target`` with a new right-hand side — the statement-only edit the
    interprocedural locality experiments drive in a loop (shared between
    the benchmark and the unit tests so both measure the same edit)."""
    def edit(engine: DaigEngine) -> None:
        edge = next(e for e in engine.cfg.edges
                    if isinstance(e.stmt, A.AssignStmt)
                    and e.stmt.target == target)
        engine.replace_statement(edge, A.AssignStmt(target, value))
    return edit


@dataclass(frozen=True)
class DeleteStatement(ProgramEdit):
    """Delete the statement on an existing edge (replace with ``skip``,
    paper Lemma B.2) — the other statement-only edit kind."""

    dst: Loc = 0

    def apply_to_cfg(self, cfg: Cfg) -> None:
        cfg.delete_edge_statement(_find_edge(cfg, self.location, self.dst))

    def apply_to_engine(self, engine: DaigEngine) -> None:
        engine.delete_statement(_find_edge(engine.cfg, self.location, self.dst))

    def describe(self) -> str:
        return "delete statement on ℓ%d→ℓ%d" % (self.location, self.dst)
