"""The synthetic edit/query workload generator of Section 7.3.

The paper's scalability study drives each analysis configuration with 3,000
random edits to an initially-empty program, issuing queries at five
randomly-sampled program locations between consecutive edits.  Each edit
inserts a randomly generated statement (85%), if-then-else conditional
(10%), or while loop (5%) at a randomly-sampled location, with statements
and expressions drawn probabilistically from the grammar of the JavaScript
subset (assignment, arrays, conditionals, loops, and non-recursive calls of
the form ``x = f(y)``).

:class:`WorkloadGenerator` reproduces that process deterministically from a
seed: it maintains its own reference copy of the evolving CFG (so that edit
locations are always sampled from the *current* program) and yields
:class:`WorkloadStep` records that the driver feeds, identically, to every
analysis configuration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..lang import ast as A
from ..lang.cfg import Cfg, Loc
from .edits import (DeleteStatement, InsertConditional, InsertLoop,
                    InsertStatement, ProgramEdit, ReplaceStatement)

#: Probabilities of each edit kind, as reported in the paper.
STATEMENT_PROBABILITY = 0.85
CONDITIONAL_PROBABILITY = 0.10
LOOP_PROBABILITY = 0.05

#: Queries issued between consecutive edits in the demand-driven configurations.
QUERIES_PER_EDIT = 5


@dataclass(frozen=True)
class WorkloadStep:
    """One step of the interactive session: an edit plus follow-up queries."""

    index: int
    edit: ProgramEdit
    query_locations: Tuple[Loc, ...]
    program_size: int


@dataclass(frozen=True)
class MultiProcStep:
    """One step of a multi-procedure session: an edit to one procedure plus
    follow-up queries at (procedure, location) sites across the program."""

    index: int
    procedure: str
    edit: ProgramEdit
    query_sites: Tuple[Tuple[str, Loc], ...]
    program_size: int


@dataclass(frozen=True)
class MultiProcWorkload:
    """A pre-generated multi-procedure edit/query stream.

    ``initial_cfgs`` is the program every configuration starts from (copies
    of the seed CFGs, *before* any step's edit was applied); ``steps`` is
    the shared edit/query stream.  ``recursive`` records whether backward
    (cycle-forming) call targets were permitted during generation.
    """

    initial_cfgs: dict
    steps: Tuple[MultiProcStep, ...]
    recursive: bool

    def fresh_cfgs(self) -> dict:
        """Independent copies of the initial program (one per
        configuration, so trials never share mutable state)."""
        return {name: cfg.copy() for name, cfg in self.initial_cfgs.items()}


class WorkloadGenerator:
    """Deterministic random generator of edit/query workloads."""

    def __init__(
        self,
        seed: int = 0,
        variable_pool: int = 10,
        call_targets: Sequence[Tuple[str, int]] = (("helper", 1), ("combine", 2)),
        call_probability: float = 0.06,
        queries_per_edit: int = QUERIES_PER_EDIT,
    ) -> None:
        self.rng = random.Random(seed)
        self.variables = ["v%d" % i for i in range(variable_pool)]
        self.call_targets = tuple(call_targets)
        self.call_probability = call_probability
        self.queries_per_edit = queries_per_edit
        self.cfg = Cfg("main")
        # Seed the initially-empty program with a single skip edge so that
        # the entry has a successor and queries have somewhere to land.
        self.cfg.add_edge(self.cfg.entry, A.SkipStmt(), self.cfg.exit)

    # -- random program fragments ------------------------------------------------------

    def _variable(self) -> str:
        return self.rng.choice(self.variables)

    def _constant(self) -> A.Expr:
        return A.IntLit(self.rng.randint(-10, 20))

    def _arith_expression(self, depth: int = 0) -> A.Expr:
        roll = self.rng.random()
        if depth >= 2 or roll < 0.35:
            return self._constant()
        if roll < 0.65:
            return A.Var(self._variable())
        operator = self.rng.choice(["+", "-", "*"])
        return A.BinOp(operator, self._arith_expression(depth + 1),
                       self._arith_expression(depth + 1))

    def _condition(self) -> A.Expr:
        operator = self.rng.choice(list(A.COMPARISON_OPS))
        left = A.Var(self._variable())
        right = self._constant() if self.rng.random() < 0.6 else A.Var(self._variable())
        return A.BinOp(operator, left, right)

    def _statement(self) -> A.AtomicStmt:
        roll = self.rng.random()
        if roll < self.call_probability and self.call_targets:
            name, arity = self.rng.choice(list(self.call_targets))
            args = tuple(A.Var(self._variable()) for _ in range(arity))
            return A.CallStmt(self._variable(), name, args)
        if roll < self.call_probability + 0.06:
            length = self.rng.randint(1, 5)
            elements = tuple(self._constant() for _ in range(length))
            return A.AssignStmt(self._variable(), A.ArrayLit(elements))
        if roll < self.call_probability + 0.10:
            return A.PrintStmt(A.Var(self._variable()))
        return A.AssignStmt(self._variable(), self._arith_expression())

    def _loop_body(self) -> Tuple[A.AtomicStmt, ...]:
        counter = self._variable()
        body: List[A.AtomicStmt] = [
            self._statement() for _ in range(self.rng.randint(0, 2))]
        # Always include a counter update so that generated loops resemble
        # the bounded loops real programs contain.
        body.append(A.AssignStmt(
            counter, A.BinOp("+", A.Var(counter), A.IntLit(1))))
        return tuple(body)

    def _branch_body(self) -> Tuple[A.AtomicStmt, ...]:
        return tuple(self._statement()
                     for _ in range(self.rng.randint(1, 3)))

    # -- edits --------------------------------------------------------------------------

    def _sample_location(self) -> Loc:
        return self.rng.choice(self.cfg.insertion_points())

    def next_edit(self) -> ProgramEdit:
        """Generate one random edit against the current program."""
        location = self._sample_location()
        roll = self.rng.random()
        if roll < STATEMENT_PROBABILITY:
            return InsertStatement(location, self._statement())
        if roll < STATEMENT_PROBABILITY + CONDITIONAL_PROBABILITY:
            else_stmts = self._branch_body() if self.rng.random() < 0.5 else ()
            return InsertConditional(location, self._condition(),
                                     self._branch_body(), else_stmts)
        counter = self._variable()
        condition = A.BinOp("<", A.Var(counter), self._constant())
        return InsertLoop(location, condition, self._loop_body())

    def next_statement_only_edit(self) -> ProgramEdit:
        """A statement-only edit: relabel (or delete) an existing statement.

        These model a developer editing statement text without changing
        control flow — the workload that exercises the engine's
        zero-structure-work fast path (no dominator/loop recomputation, one
        snapshot re-sign per edit).
        """
        edge = self.rng.choice(self.cfg.edges)
        if self.rng.random() < 0.2:
            return DeleteStatement(edge.src, edge.dst)
        return ReplaceStatement(edge.src, edge.dst, self._statement())

    def generate_statement_only(self, edits: int) -> List[WorkloadStep]:
        """Generate a statement-only edit/query stream over the current
        program (grow the program first with :meth:`generate`)."""
        steps: List[WorkloadStep] = []
        for index in range(edits):
            edit = self.next_statement_only_edit()
            edit.apply_to_cfg(self.cfg)
            steps.append(WorkloadStep(
                index, edit, self._sample_queries(), self.cfg.size()))
        return steps

    def _sample_queries(self) -> Tuple[Loc, ...]:
        points = self.cfg.insertion_points() + [self.cfg.exit]
        return tuple(self.rng.choice(points) for _ in range(self.queries_per_edit))

    def generate(self, edits: int) -> List[WorkloadStep]:
        """Generate ``edits`` workload steps, mutating the reference program."""
        steps: List[WorkloadStep] = []
        for index in range(edits):
            edit = self.next_edit()
            edit.apply_to_cfg(self.cfg)
            queries = self._sample_queries()
            steps.append(WorkloadStep(index, edit, queries, self.cfg.size()))
        return steps

    # -- multi-procedure workloads -------------------------------------------------

    def generate_multiprocedure(
        self,
        edits: int,
        procedures: int = 5,
        recursive: bool = False,
        statement_only_fraction: float = 0.25,
        call_probability: float = 0.18,
        entry: str = "main",
    ) -> MultiProcWorkload:
        """Generate a multi-procedure edit/query stream.

        The program starts as ``procedures`` initially-empty procedures
        (``main`` plus helpers, each taking one parameter); every step picks
        a procedure, applies a random edit to it (structural, or — with
        ``statement_only_fraction`` probability — a statement relabel), and
        samples ``queries_per_edit`` (procedure, location) query sites
        across the whole program.  Generated calls have the form
        ``x = p(y)``; with ``recursive=False`` a procedure only calls
        strictly later procedures (the call graph stays a DAG), while
        ``recursive=True`` also permits self- and backward calls, producing
        direct and mutual recursion for the SCC summary fixpoint.
        """
        if procedures < 1:
            raise ValueError("need at least one procedure")
        names = [entry] + ["p%d" % i for i in range(1, procedures)]
        cfgs: dict = {}
        for name in names:
            cfg = Cfg(name, params=() if name == entry else ("a0",))
            cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
            cfgs[name] = cfg
        initial = {name: cfg.copy() for name, cfg in cfgs.items()}
        order = {name: position for position, name in enumerate(names)}
        saved = (self.cfg, self.call_targets, self.call_probability,
                 self.variables)
        # Let generated statements assign the return variable so callee
        # exits actually flow information back through ``call_return``.
        self.variables = self.variables + [A.RETURN_VARIABLE]
        steps = []
        try:
            for index in range(edits):
                procedure = self.rng.choice(names)
                cfg = cfgs[procedure]
                allowed = tuple(
                    (name, 1) for name in names
                    if name != entry
                    and (recursive or order[name] > order[procedure]))
                self.cfg = cfg
                self.call_targets = allowed
                self.call_probability = call_probability if allowed else 0.0
                if (cfg.size() > 1
                        and self.rng.random() < statement_only_fraction):
                    edit = self.next_statement_only_edit()
                else:
                    edit = self.next_edit()
                edit.apply_to_cfg(cfg)
                sites = []
                for _ in range(self.queries_per_edit):
                    query_proc = self.rng.choice(names)
                    query_cfg = cfgs[query_proc]
                    points = query_cfg.insertion_points() + [query_cfg.exit]
                    sites.append((query_proc, self.rng.choice(points)))
                steps.append(MultiProcStep(
                    index, procedure, edit, tuple(sites),
                    sum(c.size() for c in cfgs.values())))
        finally:
            (self.cfg, self.call_targets, self.call_probability,
             self.variables) = saved
        return MultiProcWorkload(initial, tuple(steps), recursive)

    def callee_programs(self) -> dict:
        """Source text for the predefined callee procedures of the grammar."""
        return {
            "helper": "function helper(x) { var y = x + 1; return y; }",
            "combine": "function combine(a, b) { if (a < b) { return b - a; } return a - b; }",
        }
