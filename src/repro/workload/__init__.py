"""Synthetic edit/query workloads and latency statistics (Section 7.3)."""

from .edits import (
    DeleteStatement,
    InsertConditional,
    InsertLoop,
    InsertStatement,
    ProgramEdit,
    ReplaceStatement,
)
from .generator import (
    CONDITIONAL_PROBABILITY,
    LOOP_PROBABILITY,
    QUERIES_PER_EDIT,
    STATEMENT_PROBABILITY,
    MultiProcStep,
    MultiProcWorkload,
    WorkloadGenerator,
    WorkloadStep,
)
from .driver import (
    WorkloadResult,
    generate_interproc_trials,
    generate_trials,
    merge_results,
    run_comparison,
    run_interproc_trial,
    run_trial,
)
from .stats import (
    LatencySample,
    cumulative_distribution,
    format_summary_table,
    fraction_within,
    percentile,
    scatter_series,
    summarize,
)

__all__ = [
    "DeleteStatement",
    "InsertConditional",
    "InsertLoop",
    "InsertStatement",
    "ProgramEdit",
    "ReplaceStatement",
    "CONDITIONAL_PROBABILITY",
    "LOOP_PROBABILITY",
    "QUERIES_PER_EDIT",
    "STATEMENT_PROBABILITY",
    "MultiProcStep",
    "MultiProcWorkload",
    "WorkloadGenerator",
    "WorkloadStep",
    "WorkloadResult",
    "generate_interproc_trials",
    "generate_trials",
    "merge_results",
    "run_comparison",
    "run_interproc_trial",
    "run_trial",
    "LatencySample",
    "cumulative_distribution",
    "format_summary_table",
    "fraction_within",
    "percentile",
    "scatter_series",
    "summarize",
]
