"""Latency statistics: percentiles, CDFs, and the Fig. 10 summary table.

The paper reports, for each analysis configuration, the mean and the 50th /
90th / 95th / 99th percentile analysis latency, a cumulative-distribution
plot of latencies, and scatter plots of latency against program size.  This
module computes all three from raw ``(program size, latency)`` samples and
renders them as plain-text tables/series so that the benchmark harness can
print exactly the rows the paper's Fig. 10 contains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class LatencySample:
    """One analysis run: the program size when it ran and how long it took."""

    program_size: int
    seconds: float


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction``-th percentile (nearest-rank) of a list of samples."""
    if not samples:
        raise ValueError("cannot take a percentile of no samples")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("percentile fraction must be within [0, 1]")
    ordered = sorted(samples)
    if fraction == 0.0:
        return ordered[0]
    rank = max(1, int(round(fraction * len(ordered) + 0.5)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p90 / p95 / p99, the columns of the Fig. 10 table."""
    if not samples:
        return {"mean": 0.0, "p50": 0.0, "p90": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 0.50),
        "p90": percentile(samples, 0.90),
        "p95": percentile(samples, 0.95),
        "p99": percentile(samples, 0.99),
    }


def cumulative_distribution(
    samples: Sequence[float], points: int = 50
) -> List[Tuple[float, float]]:
    """``(latency, fraction completed within latency)`` pairs for a CDF plot."""
    if not samples:
        return []
    ordered = sorted(samples)
    total = len(ordered)
    out: List[Tuple[float, float]] = []
    for index in range(points + 1):
        position = index / points
        latency = percentile(ordered, position) if position > 0 else ordered[0]
        completed = sum(1 for s in ordered if s <= latency) / total
        out.append((latency, completed))
    return out


def fraction_within(samples: Sequence[float], threshold: float) -> float:
    """The fraction of samples at or below ``threshold`` seconds."""
    if not samples:
        return 0.0
    return sum(1 for s in samples if s <= threshold) / len(samples)


def scatter_series(
    samples: Sequence[LatencySample], buckets: int = 20
) -> List[Tuple[int, float, float]]:
    """Bucketed ``(program size, mean latency, max latency)`` series.

    This is the textual stand-in for the paper's per-configuration scatter
    plots of analysis latency against program size.
    """
    if not samples:
        return []
    sizes = [s.program_size for s in samples]
    low, high = min(sizes), max(sizes)
    width = max(1, (high - low + 1) // buckets)
    grouped: Dict[int, List[float]] = {}
    for sample in samples:
        bucket = low + ((sample.program_size - low) // width) * width
        grouped.setdefault(bucket, []).append(sample.seconds)
    return [(bucket, sum(values) / len(values), max(values))
            for bucket, values in sorted(grouped.items())]


def format_summary_table(rows: Dict[str, Dict[str, float]]) -> str:
    """Render the Fig. 10 summary table for a set of configurations."""
    header = "%-12s %8s %8s %8s %8s %8s" % (
        "Analysis", "mean", "p50", "p90", "p95", "p99")
    lines = [header, "-" * len(header)]
    for name, summary in rows.items():
        lines.append("%-12s %8.3f %8.3f %8.3f %8.3f %8.3f" % (
            name, summary["mean"], summary["p50"], summary["p90"],
            summary["p95"], summary["p99"]))
    return "\n".join(lines)
