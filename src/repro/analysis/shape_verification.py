"""The shape-analysis verification client (Section 7.2).

The paper applies its DAIG-based shape analysis to verify the correctness
and memory safety of the linked-list ``append`` procedure of Fig. 1 and of
several list utilities from Buckets.js (``foreach``, ``indexOf``, ...).
This client packages that check:

* *memory safety* — no analyzed dereference may fault (no possible null
  dereference is reported anywhere on a path to the exit), and
* *list well-formedness* — for procedures returning a list, every disjunct
  of the exit state must entail ``lseg(ret, null)``.

It also reports how many demanded unrollings each loop needed; the paper
highlights that ``append``'s loop converges after a single demanded
unrolling, which the benchmark asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional

from ..daig.engine import DaigEngine
from ..domains.shape import ShapeDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, build_cfg
from ..lang.ast import Procedure, Program


@dataclass(frozen=True)
class ShapeVerdict:
    """The result of verifying one list-manipulating procedure."""

    procedure: str
    memory_safe: bool
    returns_wellformed_list: Optional[bool]
    faults: FrozenSet[str]
    demanded_unrollings: int
    disjuncts_at_exit: int

    def summary(self) -> str:
        wellformed = ("n/a" if self.returns_wellformed_list is None
                      else str(self.returns_wellformed_list))
        return ("%s: memory-safe=%s, well-formed-return=%s, "
                "unrollings=%d, exit disjuncts=%d"
                % (self.procedure, self.memory_safe, wellformed,
                   self.demanded_unrollings, self.disjuncts_at_exit))


def procedure_returns_pointer(procedure: Procedure) -> bool:
    """Heuristic: does the procedure return a list (pointer) value?

    True when every ``return`` returns ``null``, an allocation, or a variable
    that is never assigned an arithmetic value in the procedure body;
    procedures returning arithmetic results (``indexOf``, ``length``) are
    excluded from the well-formedness check, exactly as in the paper's
    experiments.
    """
    numeric_vars = set()
    statements: list = list(procedure.body)
    while statements:
        stmt = statements.pop()
        if isinstance(stmt, A.Assign) and isinstance(
                stmt.value, (A.IntLit, A.BinOp, A.UnaryOp, A.ArrayRead,
                             A.ArrayLen, A.BoolLit)):
            numeric_vars.add(stmt.target)
        elif isinstance(stmt, A.If):
            statements.extend(stmt.then_body)
            statements.extend(stmt.else_body)
        elif isinstance(stmt, A.While):
            statements.extend(stmt.body)

    returns_pointer = False

    def scan(stmts) -> bool:
        nonlocal returns_pointer
        for stmt in stmts:
            if isinstance(stmt, A.Return):
                value = stmt.value
                if isinstance(value, (A.BinOp, A.IntLit, A.UnaryOp, A.ArrayRead,
                                      A.ArrayLen, A.BoolLit)):
                    return False
                if isinstance(value, A.Var) and value.name in numeric_vars:
                    return False
                if isinstance(value, (A.Var, A.AllocRecord)):
                    returns_pointer = True
            elif isinstance(stmt, A.If):
                if not scan(stmt.then_body) or not scan(stmt.else_body):
                    return False
            elif isinstance(stmt, A.While):
                if not scan(stmt.body):
                    return False
        return True

    only_pointerish = scan(procedure.body)
    return only_pointerish and returns_pointer


class ShapeVerificationClient:
    """Runs the demanded shape analysis and checks safety/well-formedness."""

    def __init__(self, domain: Optional[ShapeDomain] = None) -> None:
        self.domain = domain if domain is not None else ShapeDomain()

    def verify_cfg(
        self, cfg: Cfg, check_wellformed: Optional[bool] = None
    ) -> ShapeVerdict:
        engine = DaigEngine(cfg.copy(), self.domain)
        exit_state = engine.query_location(cfg.exit)
        faults = exit_state.faults()
        wellformed: Optional[bool] = None
        if check_wellformed:
            wellformed = self.domain.verifies_wellformed(exit_state, A.RETURN_VARIABLE)
        return ShapeVerdict(
            procedure=cfg.name,
            memory_safe=not faults,
            returns_wellformed_list=wellformed,
            faults=faults,
            demanded_unrollings=engine.stats.unrollings,
            disjuncts_at_exit=len(exit_state.disjuncts),
        )

    def verify_procedure(self, procedure: Procedure) -> ShapeVerdict:
        cfg = build_cfg(procedure)
        return self.verify_cfg(cfg, procedure_returns_pointer(procedure))

    def verify_program(self, program: Program) -> Dict[str, ShapeVerdict]:
        """Verify every procedure of a program independently."""
        return {proc.name: self.verify_procedure(proc)
                for proc in program.procedures}
