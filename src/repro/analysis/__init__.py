"""Analysis configurations (Section 7.3) and verification clients (Section 7.2)."""

from .config import (
    ALL_CONFIGURATIONS,
    AnalysisConfiguration,
    BatchConfiguration,
    DemandConfiguration,
    IncrementalConfiguration,
    IncrementalDemandConfiguration,
    make_configuration,
)
from .array_safety import (
    AccessVerdict,
    ArrayAccess,
    ArraySafetyClient,
    SafetyReport,
    collect_array_accesses,
    verify_array_programs,
)
from .shape_verification import (
    ShapeVerdict,
    ShapeVerificationClient,
    procedure_returns_pointer,
)

__all__ = [
    "ALL_CONFIGURATIONS",
    "AnalysisConfiguration",
    "BatchConfiguration",
    "DemandConfiguration",
    "IncrementalConfiguration",
    "IncrementalDemandConfiguration",
    "make_configuration",
    "AccessVerdict",
    "ArrayAccess",
    "ArraySafetyClient",
    "SafetyReport",
    "collect_array_accesses",
    "verify_array_programs",
    "ShapeVerdict",
    "ShapeVerificationClient",
    "procedure_returns_pointer",
]
