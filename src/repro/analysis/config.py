"""The four analysis configurations compared in Section 7.3 / Fig. 10.

All four are built on top of the DAIG engine, mirroring the paper's setup
(its batch / incremental-only / demand-only configurations are likewise
implemented atop the DAIG framework):

1. **Batch** — classical whole-program abstract interpretation: every edit
   discards all previous results (DAIG and memo table) and the whole program
   is re-analyzed from scratch.
2. **Incremental** — the edit semantics dirty as few previously-computed
   cells as possible, but every dirtied cell is then eagerly recomputed.
3. **Demand-driven** — the full DAIG is discarded on each edit (no reuse
   across versions), but only the cells needed to answer the client's
   queries are computed.
4. **Incremental & demand-driven** — the full technique: edits dirty
   minimally, queries compute lazily, and the memo table is retained.

The driver (:mod:`repro.workload.driver`) feeds the same edit/query stream
to each configuration and measures the per-step latency.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..daig.engine import DaigEngine
from ..daig.memo import MemoTable
from ..domains.base import AbstractDomain
from ..interproc.context import ContextPolicy
from ..interproc.engine import InterproceduralEngine
from ..lang import ast as A
from ..lang.cfg import Cfg, Loc
from ..workload.edits import ProgramEdit


def _empty_program(name: str = "main") -> Cfg:
    """The initially-empty program the synthetic workload starts from."""
    cfg = Cfg(name)
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg


class AnalysisConfiguration(ABC):
    """A way of keeping analysis results up to date across edits and queries."""

    name: str = "configuration"
    #: Whether the configuration only computes what queries demand.
    demand_driven: bool = False
    #: Whether the configuration reuses results across program versions.
    incremental: bool = False

    def __init__(self, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None) -> None:
        self.domain = domain
        self.cfg = initial_cfg.copy() if initial_cfg is not None else _empty_program()
        self._retired_work: Dict[str, int] = {}
        self._retired_phases: Dict[str, float] = {}

    @abstractmethod
    def apply_edit(self, edit: ProgramEdit) -> None:
        """Incorporate a program edit (doing whatever re-analysis this
        configuration performs eagerly)."""

    def apply_edits(self, edits: Sequence[ProgramEdit]) -> None:
        """Incorporate several consecutive edits.

        Configurations built on the DAIG engine override this to coalesce
        the batch into a single splice (and the from-scratch configurations
        into a single rebuild); the default applies them one by one.
        """
        for edit in edits:
            self.apply_edit(edit)

    @abstractmethod
    def answer_queries(self, locations: Sequence[Loc]) -> Dict[Loc, Any]:
        """Answer abstract-state queries at the given locations."""

    def step(self, edit: ProgramEdit, query_locations: Sequence[Loc]) -> Dict[Loc, Any]:
        """One workload step: apply the edit, then answer the queries."""
        self.apply_edit(edit)
        return self.answer_queries(query_locations)

    def program_size(self) -> int:
        return self.cfg.size()

    @staticmethod
    def _fold_engine_counters(totals: Dict[str, int], engine: Optional[DaigEngine]) -> None:
        """Accumulate one engine's query and edit counters into ``totals``."""
        if engine is None:
            return
        for counters in (engine.stats.as_dict(), engine.edit_stats.as_dict()):
            for key, value in counters.items():
                totals[key] = totals.get(key, 0) + value

    @staticmethod
    def _fold_engine_phases(totals: Dict[str, float], engine: Optional[DaigEngine]) -> None:
        """Accumulate one engine's per-phase wall-clock split into ``totals``."""
        if engine is None:
            return
        for key, value in engine.phase_seconds().items():
            totals[key] = totals.get(key, 0.0) + value

    def _retire_engine_work(self) -> None:
        """Fold the current engine's counters into the running totals.

        From-scratch configurations call this before discarding an engine,
        so that :meth:`work_stats` reports the work of *every* rebuild, not
        just the last one.
        """
        engine = getattr(self, "engine", None)
        self._fold_engine_counters(self._retired_work, engine)
        self._fold_engine_phases(self._retired_phases, engine)

    def work_stats(self) -> Dict[str, int]:
        """Cumulative query/edit work counters (splice-vs-rebuild accounting).

        The sum of every retired engine's counters plus the live engine's —
        for the incremental configurations that is one long-lived engine;
        for the from-scratch configurations it covers every rebuild.
        """
        totals = dict(self._retired_work)
        self._fold_engine_counters(totals, getattr(self, "engine", None))
        return totals

    def phase_stats(self) -> Dict[str, float]:
        """Cumulative per-phase wall-clock seconds (structure update /
        snapshot update / splice / query), summed over every engine this
        configuration has owned.  Lets the benchmarks report which phase a
        latency regression lives in, not just the end-to-end number.
        """
        totals = dict(self._retired_phases)
        self._fold_engine_phases(totals, getattr(self, "engine", None))
        return totals


class BatchConfiguration(AnalysisConfiguration):
    """Configuration (1): full from-scratch re-analysis after every edit."""

    name = "batch"

    def __init__(self, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None) -> None:
        super().__init__(domain, initial_cfg)
        self._results: Dict[Loc, Any] = {}
        self.apply_edit_count = 0

    def apply_edit(self, edit: ProgramEdit) -> None:
        self.apply_edits([edit])

    def apply_edits(self, edits: Sequence[ProgramEdit]) -> None:
        # A batch developer who looks at results every k edits re-analyzes
        # once per batch, not once per keystroke.
        for edit in edits:
            edit.apply_to_cfg(self.cfg)
        self._retire_engine_work()
        self.engine = None  # free the old DAIG before building its successor
        self.engine = DaigEngine(self.cfg.copy(), self.domain, memo=MemoTable())
        self._results = self.engine.query_all()
        self.apply_edit_count += 1

    def answer_queries(self, locations: Sequence[Loc]) -> Dict[Loc, Any]:
        return {loc: self._results.get(loc, self.domain.bottom()) for loc in locations}


class IncrementalConfiguration(AnalysisConfiguration):
    """Configuration (2): minimal dirtying, but eager recomputation."""

    name = "incremental"
    incremental = True

    def __init__(self, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None) -> None:
        super().__init__(domain, initial_cfg)
        self.engine = DaigEngine(self.cfg, self.domain)
        self._results: Dict[Loc, Any] = self.engine.query_all()

    def apply_edit(self, edit: ProgramEdit) -> None:
        edit.apply_to_engine(self.engine)
        self.cfg = self.engine.cfg
        self._results = self.engine.query_all()

    def apply_edits(self, edits: Sequence[ProgramEdit]) -> None:
        with self.engine.batch_edits():
            for edit in edits:
                edit.apply_to_engine(self.engine)
        self.cfg = self.engine.cfg
        self._results = self.engine.query_all()

    def answer_queries(self, locations: Sequence[Loc]) -> Dict[Loc, Any]:
        return {loc: self._results.get(loc, self.domain.bottom()) for loc in locations}


class DemandConfiguration(AnalysisConfiguration):
    """Configuration (3): no reuse across edits, lazy query evaluation."""

    name = "demand-driven"
    demand_driven = True

    def __init__(self, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None) -> None:
        super().__init__(domain, initial_cfg)
        self.engine = DaigEngine(self.cfg.copy(), self.domain, memo=MemoTable())

    def apply_edit(self, edit: ProgramEdit) -> None:
        self.apply_edits([edit])

    def apply_edits(self, edits: Sequence[ProgramEdit]) -> None:
        for edit in edits:
            edit.apply_to_cfg(self.cfg)
        # Dirty the full DAIG: rebuild it (and the memo table) from scratch.
        self._retire_engine_work()
        self.engine = None  # free the old DAIG before building its successor
        self.engine = DaigEngine(self.cfg.copy(), self.domain, memo=MemoTable())

    def answer_queries(self, locations: Sequence[Loc]) -> Dict[Loc, Any]:
        return {loc: self.engine.query_location(loc) for loc in locations}


class IncrementalDemandConfiguration(AnalysisConfiguration):
    """Configuration (4): the full demanded abstract interpretation technique."""

    name = "incr+demand"
    demand_driven = True
    incremental = True

    def __init__(self, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None) -> None:
        super().__init__(domain, initial_cfg)
        self.engine = DaigEngine(self.cfg, self.domain)

    def apply_edit(self, edit: ProgramEdit) -> None:
        edit.apply_to_engine(self.engine)
        self.cfg = self.engine.cfg

    def apply_edits(self, edits: Sequence[ProgramEdit]) -> None:
        with self.engine.batch_edits():
            for edit in edits:
                edit.apply_to_engine(self.engine)
        self.cfg = self.engine.cfg

    def answer_queries(self, locations: Sequence[Loc]) -> Dict[Loc, Any]:
        return {loc: self.engine.query_location(loc) for loc in locations}


#: The four configurations of Fig. 10, in the paper's order.
ALL_CONFIGURATIONS = (
    BatchConfiguration,
    IncrementalConfiguration,
    DemandConfiguration,
    IncrementalDemandConfiguration,
)


# ---------------------------------------------------------------------------
# Interprocedural configurations (multi-procedure workloads)
# ---------------------------------------------------------------------------


class InterproceduralConfiguration(ABC):
    """A way of keeping *interprocedural* results current across edits.

    The same four-way design space as Fig. 10, lifted to whole programs:
    edits name a procedure, queries name (procedure, location) sites, and
    the incremental configurations answer both through one long-lived
    :class:`~repro.interproc.engine.InterproceduralEngine` whose
    cross-procedure propagation is O(dependent call sites) per edit.
    """

    name: str = "interproc-configuration"
    demand_driven: bool = False
    incremental: bool = False

    def __init__(
        self,
        cfgs: Dict[str, Cfg],
        domain: AbstractDomain,
        policy: Optional[ContextPolicy] = None,
        entry: str = "main",
        store: Optional[Any] = None,
    ) -> None:
        self.cfgs = {name: cfg.copy() for name, cfg in cfgs.items()}
        self.domain = domain
        self.policy = policy
        self.entry = entry
        #: Optional persistent summary store (a SummaryStore or a
        #: ``"sqlite:..."``/``"blob:..."``/``"memory"`` spec string), shared
        #: by every engine this configuration builds — this is what lets the
        #: from-scratch configurations warm-start across rebuilds.
        self.store = store
        self._retired_work: Dict[str, int] = {}
        self._retired_phases: Dict[str, float] = {}
        self.engine: Optional[InterproceduralEngine] = None

    def _build_engine(self) -> InterproceduralEngine:
        return InterproceduralEngine(
            {name: cfg.copy() for name, cfg in self.cfgs.items()},
            self.domain, self.policy, entry=self.entry, store=self.store)

    def _retire_engine_work(self) -> None:
        if self.engine is None:
            return
        for key, value in self.engine.total_stats().items():
            self._retired_work[key] = self._retired_work.get(key, 0) + value
        for key, value in self.engine.total_phase_seconds().items():
            self._retired_phases[key] = self._retired_phases.get(key, 0.0) + value

    @abstractmethod
    def apply_edit(self, procedure: str, edit: ProgramEdit) -> None:
        """Incorporate an edit to one procedure."""

    def answer_queries(
        self, sites: Sequence[Any]) -> Dict[Any, Any]:
        """Answer queries at ``(procedure, location)`` sites."""
        assert self.engine is not None
        return {(procedure, loc): self.engine.query(procedure, loc)
                for procedure, loc in sites}

    def step(self, step: Any) -> Dict[Any, Any]:
        """One workload step: apply the edit, then answer the queries."""
        self.apply_edit(step.procedure, step.edit)
        return self.answer_queries(step.query_sites)

    def program_size(self) -> int:
        return sum(cfg.size() for cfg in self.cfgs.values())

    def work_stats(self) -> Dict[str, int]:
        totals = dict(self._retired_work)
        if self.engine is not None:
            for key, value in self.engine.total_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def phase_stats(self) -> Dict[str, float]:
        totals = dict(self._retired_phases)
        if self.engine is not None:
            for key, value in self.engine.total_phase_seconds().items():
                totals[key] = totals.get(key, 0.0) + value
        return totals


class InterprocBatchConfiguration(InterproceduralConfiguration):
    """Whole-program from-scratch re-analysis after every edit."""

    name = "interproc-batch"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = self._build_engine()
        self.engine.analyze_everything()

    def apply_edit(self, procedure: str, edit: ProgramEdit) -> None:
        edit.apply_to_cfg(self.cfgs[procedure])
        self._retire_engine_work()
        self.engine = None  # free the old engines before rebuilding
        self.engine = self._build_engine()
        self.engine.analyze_everything()


class InterprocDemandConfiguration(InterproceduralConfiguration):
    """No reuse across edits; only queried cells are evaluated."""

    name = "interproc-demand"
    demand_driven = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = self._build_engine()

    def apply_edit(self, procedure: str, edit: ProgramEdit) -> None:
        edit.apply_to_cfg(self.cfgs[procedure])
        self._retire_engine_work()
        self.engine = None
        self.engine = self._build_engine()


class InterprocIncrementalConfiguration(InterproceduralConfiguration):
    """Incremental cross-procedure dirtying with eager recomputation."""

    name = "interproc-incremental"
    incremental = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = self._build_engine()
        self.engine.analyze_everything()

    def apply_edit(self, procedure: str, edit: ProgramEdit) -> None:
        assert self.engine is not None
        self.engine.edit_procedure(procedure, edit.apply_to_engine)
        self.cfgs[procedure] = self.engine.cfgs[procedure]
        self.engine.analyze_everything()


class InterprocIncrementalDemandConfiguration(InterproceduralConfiguration):
    """The full technique across procedures: O(dependent call sites)
    dirtying on edits, demanded summaries on queries."""

    name = "interproc-incr+demand"
    demand_driven = True
    incremental = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.engine = self._build_engine()

    def apply_edit(self, procedure: str, edit: ProgramEdit) -> None:
        assert self.engine is not None
        self.engine.edit_procedure(procedure, edit.apply_to_engine)
        self.cfgs[procedure] = self.engine.cfgs[procedure]


#: The interprocedural configurations, mirroring the Fig. 10 four-way split.
ALL_INTERPROC_CONFIGURATIONS = (
    InterprocBatchConfiguration,
    InterprocIncrementalConfiguration,
    InterprocDemandConfiguration,
    InterprocIncrementalDemandConfiguration,
)


def make_configuration(
    name: str, domain: AbstractDomain, initial_cfg: Optional[Cfg] = None
) -> AnalysisConfiguration:
    """Instantiate a configuration by its Fig. 10 name."""
    table = {cls.name: cls for cls in ALL_CONFIGURATIONS}
    aliases = {"batch": "batch", "incr": "incremental", "dd": "demand-driven",
               "incremental": "incremental", "demand": "demand-driven",
               "i&dd": "incr+demand", "incr+demand": "incr+demand"}
    key = aliases.get(name.lower())
    if key is None:
        raise KeyError("unknown configuration %r" % (name,))
    return table[key](domain, initial_cfg)
