"""The array-bounds verification client (Section 7.2, interval analysis).

The paper validates its interval-domain instantiation by verifying the
safety of the 85 array accesses in 23 array-manipulating programs from the
Buckets.JS test suite, under three context-sensitivity policies.  This
module is that client: it enumerates every array access in the analyzed
program, asks the (interprocedural, demanded) interval analysis for the
abstract state just before each access, and checks that the index provably
lies within ``[0, length)``.

An access in a procedure analyzed under several contexts counts as verified
only if it is verified in *every* context, mirroring how a batch analyzer
would report it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..domains.interval import IntervalDomain
from ..domains.nonrel import ValueEnvDomain
from ..interproc.context import ContextPolicy, policy_by_name
from ..interproc.engine import InterproceduralEngine
from ..lang import ast as A
from ..lang.cfg import Cfg, CfgEdge, Loc


@dataclass(frozen=True)
class ArrayAccess:
    """One array read or write occurring in a statement."""

    procedure: str
    location: Loc
    array: A.Expr
    index: A.Expr
    kind: str  # "read" | "write"

    def describe(self) -> str:
        return "%s:%d %s[%s] (%s)" % (
            self.procedure, self.location, self.array, self.index, self.kind)


@dataclass(frozen=True)
class AccessVerdict:
    """The outcome of checking one access."""

    access: ArrayAccess
    verified: bool


@dataclass
class SafetyReport:
    """Aggregated results for one program under one context policy."""

    program: str
    policy: str
    verdicts: List[AccessVerdict]

    @property
    def total(self) -> int:
        return len(self.verdicts)

    @property
    def verified(self) -> int:
        return sum(1 for verdict in self.verdicts if verdict.verified)

    def summary(self) -> str:
        return "%s [%s]: %d/%d accesses verified" % (
            self.program, self.policy, self.verified, self.total)


def collect_array_accesses(name: str, cfg: Cfg) -> List[ArrayAccess]:
    """Every array read/write syntactically present in a procedure."""
    accesses: List[ArrayAccess] = []
    for edge in cfg.edges:
        accesses.extend(_accesses_in_statement(name, edge))
    return accesses


def _accesses_in_statement(name: str, edge: CfgEdge) -> List[ArrayAccess]:
    out: List[ArrayAccess] = []
    stmt = edge.stmt
    expressions: List[A.Expr] = []
    if isinstance(stmt, A.AssignStmt):
        expressions.append(stmt.value)
    elif isinstance(stmt, A.AssumeStmt):
        expressions.append(stmt.cond)
    elif isinstance(stmt, A.ArrayWriteStmt):
        out.append(ArrayAccess(name, edge.src, A.Var(stmt.array), stmt.index, "write"))
        expressions.extend([stmt.index, stmt.value])
    elif isinstance(stmt, A.FieldWriteStmt):
        expressions.append(stmt.value)
    elif isinstance(stmt, A.PrintStmt):
        expressions.append(stmt.value)
    elif isinstance(stmt, A.CallStmt):
        expressions.extend(stmt.args)
    for expression in expressions:
        for sub in expression.walk():
            if isinstance(sub, A.ArrayRead):
                out.append(ArrayAccess(name, edge.src, sub.array, sub.index, "read"))
    return out


class ArraySafetyClient:
    """Verifies array-access safety with a demanded interval analysis."""

    def __init__(
        self,
        cfgs: Dict[str, Cfg],
        policy: ContextPolicy,
        domain: Optional[ValueEnvDomain] = None,
        entry: str = "main",
    ) -> None:
        self.cfgs = cfgs
        self.policy = policy
        self.domain = domain if domain is not None else IntervalDomain()
        self.entry = entry
        self.engine = InterproceduralEngine(
            {name: cfg.copy() for name, cfg in cfgs.items()},
            self.domain, policy, entry=entry)

    def check(self, program_name: str = "program") -> SafetyReport:
        """Analyze the program and check every reachable array access."""
        self.engine.analyze_everything()
        reachable = self.engine.callgraph.reachable_from(self.entry)
        verdicts: List[AccessVerdict] = []
        for procedure in sorted(reachable):
            cfg = self.cfgs[procedure]
            contexts = self.engine.contexts_of(procedure)
            if not contexts:
                continue
            for access in collect_array_accesses(procedure, cfg):
                verified = all(
                    self._verified_in(access, procedure, context)
                    for context in contexts)
                verdicts.append(AccessVerdict(access, verified))
        return SafetyReport(program_name, self.policy.name, verdicts)

    def _verified_in(self, access: ArrayAccess, procedure: str, context) -> bool:
        state = self.engine.query(procedure, access.location, context)
        if self.domain.is_bottom(state):
            return True  # unreachable in this context
        index_lo, index_hi = self.domain.numeric_bounds(access.index, state)
        length_lo, _length_hi = self.domain.array_length_bounds(access.array, state)
        if index_lo is None or index_hi is None or length_lo is None:
            return False
        return index_lo >= 0 and index_hi <= length_lo - 1


def verify_array_programs(
    programs: Dict[str, Dict[str, Cfg]],
    policy_name: str,
) -> List[SafetyReport]:
    """Run the client over a suite of programs under one context policy."""
    reports = []
    for name in sorted(programs):
        policy = policy_by_name(policy_name)
        client = ArraySafetyClient(programs[name], policy)
        reports.append(client.check(name))
    return reports
