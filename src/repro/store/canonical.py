"""Canonical byte encodings and content digests.

Persistent summaries are addressed by *content*: a summary computed in one
process must be findable by a different process — possibly running a
different CPython build — analyzing identical code.  ``pickle.dumps`` is
unsuitable as a key ingredient (memo-dependent framing, protocol drift
across interpreter versions), so this module defines a small deterministic
encoding with a fixed grammar:

* every value is emitted as a one-byte type tag plus a length-delimited
  payload, so distinct structures can never collide by concatenation;
* unordered containers (sets, dicts) are serialized in sorted order of
  their elements' *encodings*, making the bytes independent of insertion
  and hash order;
* interned abstract states encode through the same primitive constructor
  arguments their ``__reduce__`` hooks ship across processes, numpy
  arrays through ``dtype/shape/tobytes`` (the octagon domain already
  normalizes ``-0.0``), and frozen dataclasses (the shape domain's
  canonical heaps) field by field.

On top of the encoder sit the three digests the engine uses: a
per-procedure ``cfg_digest`` over the CFG's statements and edges, the
``deep``-component digest payloads composed from them, and the persistent
store key ``summary_store_key`` for ``(domain, procedure, context,
deep_digest, entry state)``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import struct
from typing import Any, List

try:  # numpy backs the octagon domain; degrade gracefully without it.
    import numpy as _np
except Exception:  # pragma: no cover - numpy is a baked-in dependency
    _np = None


def canonical_bytes(value: Any) -> bytes:
    """A deterministic, process-independent encoding of ``value``.

    Raises :class:`TypeError` for values outside the supported grammar —
    silent fallback encodings (``repr`` of an arbitrary object, say) would
    turn digest mismatches into digest collisions.
    """
    out: List[bytes] = []
    _encode(value, out)
    return b"".join(out)


def canonical_digest(value: Any) -> str:
    """sha256 hex digest of :func:`canonical_bytes`."""
    return hashlib.sha256(canonical_bytes(value)).hexdigest()


def _encode(value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(b"N")
    elif value is True:
        out.append(b"T")
    elif value is False:
        out.append(b"F")
    elif isinstance(value, int):
        body = b"%d" % value
        out.append(b"i%d:" % len(body))
        out.append(body)
    elif isinstance(value, float):
        # Exact IEEE-754 bits: distinguishes everything repr might round
        # and is identical on every platform the tests run on.
        out.append(b"f")
        out.append(struct.pack(">d", value))
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out.append(b"s%d:" % len(body))
        out.append(body)
    elif isinstance(value, (bytes, bytearray)):
        out.append(b"b%d:" % len(value))
        out.append(bytes(value))
    elif isinstance(value, (tuple, list)):
        out.append(b"(")
        for item in value:
            _encode(item, out)
        out.append(b")")
    elif isinstance(value, (frozenset, set)):
        out.append(b"{")
        out.extend(sorted(canonical_bytes(item) for item in value))
        out.append(b"}")
    elif isinstance(value, dict):
        out.append(b"<")
        for key_bytes, value_bytes in sorted(
                (canonical_bytes(k), canonical_bytes(v))
                for k, v in value.items()):
            out.append(key_bytes)
            out.append(value_bytes)
        out.append(b">")
    elif _np is not None and isinstance(value, _np.ndarray):
        out.append(b"a")
        _encode(value.dtype.str, out)
        _encode(tuple(int(dim) for dim in value.shape), out)
        body = _np.ascontiguousarray(value).tobytes()
        out.append(b"b%d:" % len(body))
        out.append(body)
    else:
        _encode_object(value, out)


def _encode_object(value: Any, out: List[bytes]) -> None:
    # Interned immutable states memoize their encoding in a ``_cbytes``
    # slot: digests and store keys over the same (hash-consed) states are
    # then O(1) instead of re-walking the structure every time.  Cache
    # traffic is counted on the type's intern table (``intern_stats()``).
    cached = getattr(value, "_cbytes", None)
    if cached is not None:
        table = getattr(type(value), "_intern", None)
        if table is not None:
            table.encode_hits += 1
        out.append(cached)
        return
    cls = type(value)
    if "_cbytes" in getattr(cls, "__slots__", ()):
        sub: List[bytes] = []
        _encode_object_fresh(value, sub)
        encoded = b"".join(sub)
        object.__setattr__(value, "_cbytes", encoded)
        table = getattr(cls, "_intern", None)
        if table is not None:
            table.encode_misses += 1
        out.append(encoded)
        return
    _encode_object_fresh(value, out)


def _encode_object_fresh(value: Any, out: List[bytes]) -> None:
    cls = type(value)
    # Objects exposing a canonical() view (the shape domain's states hash
    # through frozensets of frozen heap records) encode through it.
    canonical = getattr(value, "canonical", None)
    if callable(canonical) and not isinstance(value, type):
        out.append(b"C")
        _encode("%s.%s" % (cls.__module__, cls.__qualname__), out)
        _encode(canonical(), out)
        return
    # States whose __reduce__ ships incidental non-identity fields (e.g.
    # the octagon's monotone ``closed`` flag, which can flip on the same
    # canonical object) expose ``__canonical_args__``: exactly the fields
    # that define the value, so equal states always encode equally.
    args_fn = getattr(value, "__canonical_args__", None)
    if callable(args_fn):
        out.append(b"R")
        _encode("%s.%s" % (cls.__module__, cls.__qualname__), out)
        _encode(tuple(args_fn()), out)
        return
    # Interned states and names: __reduce__ returns (constructor, args)
    # with primitive arguments — the exact cross-process identity the
    # parallel layer already relies on.
    if getattr(cls, "__reduce__", None) is not object.__reduce__:
        constructor, args = value.__reduce__()[:2]
        out.append(b"R")
        _encode("%s.%s" % (getattr(constructor, "__module__", ""),
                           getattr(constructor, "__qualname__",
                                   getattr(constructor, "__name__", ""))),
                out)
        _encode(tuple(args), out)
        return
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(b"D")
        _encode("%s.%s" % (cls.__module__, cls.__qualname__), out)
        _encode(tuple((field.name, getattr(value, field.name))
                      for field in dataclasses.fields(value)), out)
        return
    raise TypeError("no canonical encoding for %r of type %s.%s"
                    % (value, cls.__module__, cls.__qualname__))


def cfg_digest(cfg: Any) -> str:
    """Content digest of one procedure's code.

    Hashes the canonical CFG facts — name, parameters, entry/exit
    locations, and the edge set as sorted ``(src, dst, str(statement))``
    triples — so the digest is independent of edge insertion order and of
    any in-memory artifacts (listeners, structure caches, analyses).
    Statements print deterministically, which makes this stable across
    processes and across reparses of the same source.
    """
    edges = tuple(sorted((edge.src, edge.dst, str(edge.stmt))
                         for edge in cfg.edges))
    return canonical_digest(("cfg", cfg.name, tuple(cfg.params),
                             cfg.entry, cfg.exit, edges))


def component_digest(members: Any, callee_digests: Any) -> str:
    """Digest of one call-graph SCC: its members' ``(name, cfg_digest)``
    pairs plus the deep digests of the components it calls into.  Composing
    per *component* (not per procedure) keeps mutually recursive
    procedures on one shared digest and the incremental recomputation a
    DAG post-order."""
    return canonical_digest(("deep", tuple(members), tuple(callee_digests)))


def summary_store_key(domain_name: str, procedure: str, context: Any,
                      deep_digest: str, entry_state: Any) -> str:
    """The persistent store key of one exit summary.

    Content-addressed by everything the summary depends on: the abstract
    domain, the procedure and analysis context, the deep code digest
    (procedure + transitive callees), and the entry state.  Two processes
    analyzing identical code at the same entry compute the same key.
    """
    return canonical_digest(("summary", 1, domain_name, procedure, context,
                             deep_digest, entry_state))
