"""The three :class:`~repro.store.base.SummaryStore` backends.

* :class:`InMemorySummaryStore` — a dict; per-process, mostly for tests
  and for bounding the memo table (evicted entries stay recoverable).
* :class:`SqliteSummaryStore` — one stdlib ``sqlite3`` table; the default
  persistent backend (single file, transactional, safe under concurrent
  readers).
* :class:`BlobSummaryStore` — a sharded directory of blob files with
  atomic tmp-then-rename writes; trivially rsync/NFS-shareable, the
  fleet-cache shape (cf. content-addressed build caches).

Selection helpers parse ``"memory"`` / ``"sqlite:<path>"`` /
``"blob:<dir>"`` specs, including from the ``REPRO_SUMMARY_STORE``
environment variable, and reopen a store from the picklable
``(kind, location)`` pair workers receive.
"""

from __future__ import annotations

import os
import sqlite3
import tempfile
from typing import Dict, Iterable, List, Optional, Tuple

from .base import SummaryStore

#: Environment variable naming the store every engine should open when the
#: caller passes ``store="env"`` (benchmarks, CI, ad-hoc warm starts).
STORE_ENV_VAR = "REPRO_SUMMARY_STORE"


class InMemorySummaryStore(SummaryStore):
    """A per-process dict store (no cross-process identity)."""

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._table: Dict[str, bytes] = {}

    def _get(self, key: str) -> Optional[bytes]:
        return self._table.get(key)

    def _put(self, key: str, blob: bytes) -> None:
        self._table[key] = bytes(blob)

    def _delete(self, key: str) -> bool:
        return self._table.pop(key, None) is not None

    def __len__(self) -> int:
        return len(self._table)

    def keys(self) -> List[str]:
        return sorted(self._table)

    def clear(self) -> None:
        self._table.clear()


class SqliteSummaryStore(SummaryStore):
    """One ``summaries(key TEXT PRIMARY KEY, blob BLOB)`` table.

    Autocommit mode (``isolation_level=None``) so every put is immediately
    visible to other connections — a restarted engine or a pool worker
    opens its own connection on the same path.  ``check_same_thread=False``
    because the parallel evaluator's threads may probe while the demanding
    thread writes (the base class serializes access under one lock).
    """

    kind = "sqlite"

    def __init__(self, path: str) -> None:
        super().__init__()
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._conn = sqlite3.connect(self.path, check_same_thread=False,
                                     isolation_level=None)
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS summaries ("
            "key TEXT PRIMARY KEY, blob BLOB NOT NULL)")

    def _get(self, key: str) -> Optional[bytes]:
        row = self._conn.execute(
            "SELECT blob FROM summaries WHERE key = ?", (key,)).fetchone()
        return None if row is None else bytes(row[0])

    def _put(self, key: str, blob: bytes) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO summaries (key, blob) VALUES (?, ?)",
            (key, sqlite3.Binary(bytes(blob))))

    def _delete(self, key: str) -> bool:
        cursor = self._conn.execute(
            "DELETE FROM summaries WHERE key = ?", (key,))
        return cursor.rowcount > 0

    def __len__(self) -> int:
        try:
            row = self._conn.execute("SELECT COUNT(*) FROM summaries").fetchone()
        except sqlite3.Error:
            return 0
        return int(row[0])

    def keys(self) -> List[str]:
        try:
            rows = self._conn.execute(
                "SELECT key FROM summaries ORDER BY key").fetchall()
        except sqlite3.Error:
            return []
        return [row[0] for row in rows]

    def clear(self) -> None:
        try:
            self._conn.execute("DELETE FROM summaries")
        except sqlite3.Error:
            pass

    def close(self) -> None:
        try:
            self._conn.close()
        except sqlite3.Error:
            pass

    def spec(self) -> Tuple[str, str]:
        return ("sqlite", self.path)


class BlobSummaryStore(SummaryStore):
    """A directory of blob files, sharded by the key's first two hex chars.

    Writes go through a temporary file in the same directory followed by
    ``os.replace``, so concurrent readers (other engines, pool workers)
    never observe a torn blob — at worst a stale or missing one, which is
    a miss.
    """

    kind = "blob"
    _SUFFIX = ".blob"

    def __init__(self, root: str) -> None:
        super().__init__()
        self.root = os.fspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _path(self, key: str) -> str:
        # Keys are hex digests; refuse anything that could escape the root.
        if not key or not all(ch.isalnum() or ch in "-_" for ch in key):
            raise ValueError("malformed store key %r" % (key,))
        shard = key[:2] if len(key) > 2 else "00"
        return os.path.join(self.root, shard, key + self._SUFFIX)

    def _get(self, key: str) -> Optional[bytes]:
        try:
            with open(self._path(key), "rb") as handle:
                return handle.read()
        except (OSError, ValueError):
            return None

    def _put(self, key: str, blob: bytes) -> None:
        path = self._path(key)
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(bytes(blob))
            os.replace(tmp_path, path)
        except OSError:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _delete(self, key: str) -> bool:
        try:
            os.unlink(self._path(key))
            return True
        except (OSError, ValueError):
            return False

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> List[str]:
        found: List[str] = []
        try:
            shards = sorted(os.listdir(self.root))
        except OSError:
            return found
        for shard in shards:
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            try:
                names = sorted(os.listdir(shard_dir))
            except OSError:
                continue
            found.extend(name[:-len(self._SUFFIX)] for name in names
                         if name.endswith(self._SUFFIX))
        return found

    def clear(self) -> None:
        for key in self.keys():
            self._delete(key)

    def spec(self) -> Tuple[str, str]:
        return ("blob", self.root)


def store_from_spec(kind: str, location: str = "") -> SummaryStore:
    """Open a store from the picklable ``(kind, location)`` pair."""
    if kind == "memory":
        return InMemorySummaryStore()
    if kind == "sqlite":
        return SqliteSummaryStore(location)
    if kind == "blob":
        return BlobSummaryStore(location)
    raise ValueError("unknown summary-store kind %r" % (kind,))


def open_store(spec: str) -> SummaryStore:
    """Parse a ``"memory"`` / ``"sqlite:<path>"`` / ``"blob:<dir>"`` spec."""
    kind, _sep, location = spec.partition(":")
    kind = kind.strip()
    if kind == "memory":
        return InMemorySummaryStore()
    if kind in ("sqlite", "blob"):
        if not location:
            raise ValueError("store spec %r needs a location" % (spec,))
        return store_from_spec(kind, location)
    raise ValueError("unknown summary-store spec %r" % (spec,))


def store_from_env(default: Optional[str] = None) -> Optional[SummaryStore]:
    """Open the store named by ``REPRO_SUMMARY_STORE``, if any."""
    spec = os.environ.get(STORE_ENV_VAR, default)
    if not spec:
        return None
    return open_store(spec)
