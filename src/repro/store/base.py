"""The :class:`SummaryStore` protocol and the summary wire format.

A summary store is a flat ``key -> blob`` map: keys are the
content-addressed hex digests of :func:`repro.store.canonical.summary_store_key`
and blobs are format-versioned pickles of exit states
(:func:`encode_summary` / :func:`decode_summary`).  The store layer never
interprets states — serialization happens at the engine boundary, where
interned states re-intern through their ``__reduce__`` hooks on load, so a
blob written by one process is pointer-equal to the live state another
process derives.

Robustness contract: a store is a *cache*.  Every failure mode — missing
key, truncated blob, wrong magic, stale format version, unpicklable
payload, backend I/O error — must degrade to a **miss**, never to an
exception on the analysis path; the engine recomputes and overwrites.
:func:`decode_summary` raises :class:`StoreDecodeError` for all corrupt
inputs so callers can count and skip them uniformly.
"""

from __future__ import annotations

import pickle
import threading
from abc import ABC, abstractmethod
from typing import Any, Dict, Iterable, Optional, Tuple

#: Magic prefix + format version of every stored blob.  Bump the version
#: when the state serialization changes shape; decoders treat any other
#: version as corrupt (a miss), so mixed-version fleets coexist safely.
STORE_MAGIC = b"RPSS"
STORE_FORMAT_VERSION = 1


class StoreDecodeError(Exception):
    """A stored blob could not be decoded (corrupt, truncated, or from an
    incompatible format version).  Always recoverable: treat as a miss."""


def encode_summary(exit_state: Any) -> bytes:
    """Serialize one exit state as a format-versioned blob."""
    return (STORE_MAGIC + bytes((STORE_FORMAT_VERSION,))
            + pickle.dumps(exit_state, protocol=4))


def decode_summary(blob: bytes) -> Any:
    """Deserialize a blob written by :func:`encode_summary`.

    The pickle path runs the states' ``__reduce__`` re-interning
    constructors, so the returned state is the interned instance."""
    header = len(STORE_MAGIC) + 1
    if not isinstance(blob, (bytes, bytearray)) or len(blob) <= header:
        raise StoreDecodeError("truncated summary blob")
    if bytes(blob[:len(STORE_MAGIC)]) != STORE_MAGIC:
        raise StoreDecodeError("bad summary magic")
    if blob[len(STORE_MAGIC)] != STORE_FORMAT_VERSION:
        raise StoreDecodeError(
            "unsupported summary format version %d" % blob[len(STORE_MAGIC)])
    try:
        return pickle.loads(bytes(blob[header:]))
    except Exception as exc:
        raise StoreDecodeError("undecodable summary payload: %r" % (exc,))


class SummaryStore(ABC):
    """A persistent (or in-memory) second tier behind the memo table.

    Subclasses implement the raw ``_get/_put/_delete`` byte operations;
    the base class wraps them with shared hit/put/delete counters and the
    swallow-errors contract (backend exceptions count as misses / dropped
    writes, never propagate).  All operations are guarded by one reentrant
    lock: the parallel evaluator's threads may probe the store while the
    coordinator writes.
    """

    kind: str = "abstract"

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self.gets = 0
        self.hits = 0
        self.puts = 0
        self.deletes = 0
        self.errors = 0

    # -- raw byte operations (backend-specific) --------------------------------

    @abstractmethod
    def _get(self, key: str) -> Optional[bytes]:
        """Fetch one blob, or None when absent."""

    @abstractmethod
    def _put(self, key: str, blob: bytes) -> None:
        """Store one blob (overwrite allowed: summaries are idempotent)."""

    @abstractmethod
    def _delete(self, key: str) -> bool:
        """Drop one blob; return whether it existed."""

    @abstractmethod
    def __len__(self) -> int:
        """Number of stored summaries."""

    @abstractmethod
    def keys(self) -> Iterable[str]:
        """All stored keys (diagnostics and garbage-collection tests)."""

    @abstractmethod
    def clear(self) -> None:
        """Drop every entry (always sound: the store is a cache)."""

    # -- counted, error-swallowing public surface ------------------------------

    def get(self, key: str) -> Optional[bytes]:
        with self._lock:
            self.gets += 1
            try:
                blob = self._get(key)
            except Exception:
                self.errors += 1
                return None
            if blob is not None:
                self.hits += 1
            return blob

    def put(self, key: str, blob: bytes) -> None:
        with self._lock:
            self.puts += 1
            try:
                self._put(key, blob)
            except Exception:
                self.errors += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            try:
                removed = self._delete(key)
            except Exception:
                self.errors += 1
                return False
            if removed:
                self.deletes += 1
            return removed

    def close(self) -> None:
        """Release backend resources; further operations may fail (and are
        then swallowed as misses, per the cache contract)."""

    def spec(self) -> Optional[Tuple[str, str]]:
        """A picklable ``(kind, location)`` other processes can reopen, or
        None for stores with no cross-process identity (in-memory)."""
        return None

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "kind": self.kind,  # type: ignore[dict-item]
                "entries": len(self),
                "gets": self.gets,
                "hits": self.hits,
                "puts": self.puts,
                "deletes": self.deletes,
                "errors": self.errors,
            }
