"""Persistent content-addressed summary storage (ROADMAP item 3).

Exit summaries are keyed by ``(procedure, context, deep code digest,
entry state)`` — every component content-addressed and process-independent
— and persisted through a pluggable :class:`SummaryStore` (in-memory /
sqlite / directory-of-blobs), so a restarted engine, a second engine on
the same code, or a pool worker starts from hits instead of recomputing.
"""

from .base import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    StoreDecodeError,
    SummaryStore,
    decode_summary,
    encode_summary,
)
from .backends import (
    STORE_ENV_VAR,
    BlobSummaryStore,
    InMemorySummaryStore,
    SqliteSummaryStore,
    open_store,
    store_from_env,
    store_from_spec,
)
from .canonical import (
    canonical_bytes,
    canonical_digest,
    cfg_digest,
    component_digest,
    summary_store_key,
)

__all__ = [
    "STORE_ENV_VAR",
    "STORE_FORMAT_VERSION",
    "STORE_MAGIC",
    "BlobSummaryStore",
    "InMemorySummaryStore",
    "SqliteSummaryStore",
    "StoreDecodeError",
    "SummaryStore",
    "canonical_bytes",
    "canonical_digest",
    "cfg_digest",
    "component_digest",
    "decode_summary",
    "encode_summary",
    "open_store",
    "store_from_env",
    "store_from_spec",
    "summary_store_key",
]
