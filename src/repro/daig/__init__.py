"""Demanded abstract interpretation graphs: the paper's core contribution."""

from . import names
from .build import DaigBuilder
from .edit import InvalidEditError, dirty_forward, write_cell
from .engine import DaigEngine, EditStats
from .graph import (
    Computation,
    Daig,
    FIX,
    IllFormedDaigError,
    JOIN,
    TRANSFER,
    WIDEN,
)
from .memo import MemoTable
from .names import Name, fix_name, prejoin_name, prewiden_name, state_name, stmt_name
from .query import MAX_UNROLLINGS, QueryEvaluator, QueryStats
from .splice import SpliceReport, StructureSnapshot, splice

__all__ = [
    "names",
    "DaigBuilder",
    "InvalidEditError",
    "dirty_forward",
    "write_cell",
    "DaigEngine",
    "EditStats",
    "Computation",
    "Daig",
    "FIX",
    "IllFormedDaigError",
    "JOIN",
    "TRANSFER",
    "WIDEN",
    "MemoTable",
    "Name",
    "fix_name",
    "prejoin_name",
    "prewiden_name",
    "state_name",
    "stmt_name",
    "MAX_UNROLLINGS",
    "QueryEvaluator",
    "QueryStats",
    "SpliceReport",
    "StructureSnapshot",
    "splice",
]
