"""Names: unique identifiers for DAIG reference cells (Fig. 6).

The paper's names are built from locations, function symbols, values,
integers, products, and *i-primed* variants ``n^(i)`` that distinguish the
``i``-th unrolled copy of a loop-body cell.  This module implements a small
structured-name algebra with the same roles:

* ``state(ℓ, iters)`` — the abstract-state cell at location ``ℓ``; ``iters``
  assigns an iteration count to every loop head whose natural loop contains
  ``ℓ`` (the paper's single prime index, generalized to nested loops),
* ``fix(ℓ, iters)`` — the fixed-point cell of the loop headed at ``ℓ``
  (``iters`` covers the *enclosing* loops only),
* ``stmt(src, dst, index)`` — a statement cell labelling the CFG edge
  ``src → dst`` (``index`` disambiguates multiple forward edges into a join
  point); statement cells are never iteration-indexed, matching the paper's
  observation that program syntax is not duplicated by unrolling,
* ``prejoin(ℓ, i, iters)`` — the ``i·n_ℓ`` cell holding the abstract state
  flowing into join point ``ℓ`` along its ``i``-th incoming forward edge,
* ``prewiden(ℓ, k, iters)`` — the ``ℓ^(k-1)·ℓ^(k)`` cell holding the
  image of the loop body under the abstract semantics, input to the ``k``-th
  widening.

All name equality is structural, exactly as in the paper — and, because
names are hash-consed through :mod:`repro.intern`, structural equality *is*
pointer equality: constructing the same name twice yields the same object,
so the DAIG's indices and the memo table hash each name exactly once.
"""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

from ..intern import InternTable

Iterations = Tuple[Tuple[int, int], ...]

#: Name kinds.
STATE = "state"
FIX = "fix"
STMT = "stmt"
PREJOIN = "prejoin"
PREWIDEN = "prewiden"

#: Cell types (the τ of Fig. 6).
TYPE_STMT = "Stmt"
TYPE_STATE = "Sigma"


class Name:
    """A structured DAIG name.  Fields are interpreted per ``kind``:

    ==========  =========  ===========================  =====================
    kind        loc        aux                          iters
    ==========  =========  ===========================  =====================
    state       location   (unused)                     enclosing-loop iters
    fix         loop head  (unused)                     *outer*-loop iters
    stmt        edge src   edge dst                     (unused)
    prejoin     join loc   incoming-edge index (1-...)  enclosing-loop iters
    prewiden    loop head  widening step k (1-based)    *outer*-loop iters
    ==========  =========  ===========================  =====================

    Statement names additionally carry ``index`` for join disambiguation.

    Names are interned: equal field tuples yield the *same* object, equality
    is identity, and the hash is computed once at construction.
    """

    __slots__ = ("kind", "loc", "aux", "index", "iters", "_hash", "__weakref__")

    _intern = InternTable("daig.Name")

    kind: str
    loc: int
    aux: int
    index: int
    iters: Iterations

    def __new__(cls, kind: str, loc: int, aux: int = 0, index: int = 0,
                iters: Iterations = ()) -> "Name":
        key = (kind, loc, aux, index, iters)
        table = cls._intern
        canonical = table.get(key)
        if canonical is not None:
            return canonical
        self = object.__new__(cls)
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "loc", loc)
        object.__setattr__(self, "aux", aux)
        object.__setattr__(self, "index", index)
        object.__setattr__(self, "iters", iters)
        object.__setattr__(self, "_hash", hash(key))
        return table.insert(key, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError("Name is immutable (interned)")

    def __hash__(self) -> int:
        return self._hash

    # object.__eq__ (identity) is exactly structural equality for interned
    # names; __reduce__ re-interns on unpickle so the invariant survives
    # serialization (needed for the planned parallel evaluation path).
    def __reduce__(self):
        return (Name, (self.kind, self.loc, self.aux, self.index, self.iters))

    def __repr__(self) -> str:
        return "Name(kind=%r, loc=%r, aux=%r, index=%r, iters=%r)" % (
            self.kind, self.loc, self.aux, self.index, self.iters)

    def cell_type(self) -> str:
        return TYPE_STMT if self.kind == STMT else TYPE_STATE

    def iteration_of(self, head: int) -> int:
        """The iteration count this name carries for loop head ``head``."""
        for key, value in self.iters:
            if key == head:
                return value
        if self.kind == PREWIDEN and self.loc == head:
            return self.aux
        return 0

    def anchor(self) -> int:
        """The program location this cell's region is anchored at.

        State, pre-join, fix, and pre-widening cells belong to the encoding
        of their ``loc`` (statement cells belong to an *edge* and are indexed
        separately by the splicer).
        """
        return self.loc

    def is_base_copy(self) -> bool:
        """Whether this cell belongs to the initial (all-zero-iteration)
        encoding rather than to a demanded unrolling of some loop."""
        return all(count == 0 for _, count in self.iters)

    def iteration_heads(self) -> Tuple[int, ...]:
        """Loop heads for which this cell carries a nonzero iteration.

        Pre-widening cells always belong to an iterate of their own head
        (their ``aux`` is the 1-based widening step), mirroring
        :meth:`mentions_head_iteration`.
        """
        heads = tuple(key for key, value in self.iters if value >= 1)
        if self.kind == PREWIDEN and self.aux >= 1:
            heads += (self.loc,)
        return heads

    def mentions_head_iteration(self, head: int, minimum: int) -> bool:
        """Whether this name belongs to iteration >= ``minimum`` of ``head``."""
        for key, value in self.iters:
            if key == head and value >= minimum:
                return True
        if self.kind == PREWIDEN and self.loc == head and self.aux >= minimum:
            return True
        return False

    def __str__(self) -> str:
        iters = "".join("^(%d:%d)" % (h, k) for h, k in self.iters)
        if self.kind == STATE:
            return "ℓ%d%s" % (self.loc, iters)
        if self.kind == FIX:
            return "fix[ℓ%d]%s" % (self.loc, iters)
        if self.kind == STMT:
            if self.index:
                return "%d·ℓ%d·ℓ%d" % (self.index, self.loc, self.aux)
            return "ℓ%d·ℓ%d" % (self.loc, self.aux)
        if self.kind == PREJOIN:
            return "%d·ℓ%d%s" % (self.aux, self.loc, iters)
        return "ℓ%d(%d-1)·ℓ%d(%d)%s" % (self.loc, self.aux, self.loc, self.aux, iters)


def _sorted_iters(mapping: Dict[int, int]) -> Iterations:
    return tuple(sorted(mapping.items()))


def state_name(loc: int, heads: Iterable[int], overrides: Dict[int, int]) -> Name:
    """The abstract-state cell at ``loc`` under the given loop iterations.

    ``heads`` lists every loop head whose natural loop contains ``loc``;
    each gets the iteration count from ``overrides`` (defaulting to 0).
    """
    return Name(STATE, loc, iters=_sorted_iters(
        {head: overrides.get(head, 0) for head in heads}))


def fix_name(head: int, outer_heads: Iterable[int], overrides: Dict[int, int]) -> Name:
    """The fixed-point cell of the loop headed at ``head``.

    ``outer_heads`` lists the loop heads strictly enclosing ``head``.
    """
    return Name(FIX, head, iters=_sorted_iters(
        {h: overrides.get(h, 0) for h in outer_heads if h != head}))


def stmt_name(src: int, dst: int, index: int = 0) -> Name:
    """The statement cell for CFG edge ``src → dst`` (index for joins)."""
    return Name(STMT, src, dst, index)


def prejoin_name(loc: int, index: int, heads: Iterable[int],
                 overrides: Dict[int, int]) -> Name:
    """The pre-join cell ``index·n_loc``."""
    return Name(PREJOIN, loc, index, iters=_sorted_iters(
        {head: overrides.get(head, 0) for head in heads}))


def prewiden_name(head: int, step: int, outer_heads: Iterable[int],
                  overrides: Dict[int, int]) -> Name:
    """The pre-widening cell feeding the ``step``-th iterate of ``head``."""
    return Name(PREWIDEN, head, step, iters=_sorted_iters(
        {h: overrides.get(h, 0) for h in outer_heads if h != head}))
