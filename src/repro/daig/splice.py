"""Incremental DAIG splicing: structural edits without a full rebuild.

A structural CFG edit (insert / delete / re-label edges) invalidates only
the DAIG sub-regions whose *encoding* changed — everything else keeps both
its structure and its previously computed values (rules E-Commit /
E-Propagate / E-Loop applied at the granularity of whole regions).  This
module turns that observation into an algorithm with two entry points:

1. **Full diff** (:func:`splice`) — diff a pre-edit
   :class:`StructureSnapshot` against a freshly captured one over *every*
   location, then splice.  This is the fallback when the CFG's incremental
   structure cache reports that locality was defeated (a wholesale edge
   replacement, an irreducible graph, or a region covering most of the
   program).
2. **Region diff** (:func:`splice_delta`) — the common case.  The engine
   owns a single *live* snapshot, captured once at construction; the CFG's
   incremental structure layer (:mod:`repro.lang.structure`) reports, per
   refresh, the set of locations and loop heads whose encoding signature
   may have changed, and only those entries are re-signed, diffed, and
   updated in place.  A statement-only edit re-signs exactly one location;
   a structural edit re-signs its affected neighbourhood.  No O(program)
   snapshot walk happens after engine construction.

Both paths share the same splice actions: remove exactly the stale cell
regions (via the :class:`~repro.daig.graph.Daig` region indices), re-encode
the dirty locations and affected loops with the ordinary
:class:`~repro.daig.build.DaigBuilder` encoding rules, then dirty the cells
downstream of every seed through the reverse-dependency index
(:func:`repro.daig.edit.dirty_forward`).  The result is bit-identical to
rebuilding the DAIG from scratch and copying over unchanged values, with
*all* per-edit work — structure refresh, snapshot re-signing, cell removal,
re-encoding, dirtying, and the abstract recomputation a later query
performs — proportional to the edit's impacted region.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from ..lang.cfg import Cfg
from . import names as N
from .build import DaigBuilder
from .edit import dirty_forward
from .graph import Daig

#: A per-location encoding signature: how `encode_incoming` would encode the
#: location's incoming forward edges, as a tuple of primitive data.  Two
#: equal signatures produce identical cell names and computations.
LocSig = Tuple
#: A per-head loop signature: how `build_loop_structures` would encode the
#: loop's back edge.
LoopSig = Tuple
#: Identifies a statement cell: (edge src, edge dst, pre-join index or 0).
StmtKey = Tuple[int, int, int]


def _source_key(cfg: Cfg, src: int, dst: int) -> Tuple:
    """Signature of ``DaigBuilder.source_name(src, dst, ...)``.

    The source cell's name is determined by whether the edge leaves a loop
    through its head (footnote 5: read the fixed point) and by the source's
    enclosing loop heads (which index its state cell).
    """
    if cfg.is_loop_head(src) and dst not in cfg.natural_loop(src):
        return ("fix", src, cfg.containing_loop_heads(src))
    return ("state", src, cfg.containing_loop_heads(src))


def _loc_signature(cfg: Cfg, loc: int) -> Optional[LocSig]:
    """Signature of ``encode_incoming(loc)``; None when there is nothing to
    encode (only the entry location, which holds φ0 directly)."""
    edges = cfg.fwd_edges_to(loc)
    if not edges:
        return None
    return (
        cfg.containing_loop_heads(loc),
        tuple((index, edge.src, edge.dst) for index, edge in edges),
        tuple(_source_key(cfg, edge.src, loc) for _index, edge in edges),
    )


def _loop_signature(cfg: Cfg, head: int) -> LoopSig:
    """Signature of ``build_loop_structures(head)``."""
    back = cfg.back_edges_to(head)
    return (
        cfg.containing_loop_heads(head),
        tuple((edge.src, edge.dst) for edge in back),
        tuple(_source_key(cfg, edge.src, head) for edge in back),
    )


def _stmt_cells_at(cfg: Cfg, loc: int) -> Dict[StmtKey, Any]:
    """The statement cells anchored at ``loc`` (incoming forward edges plus,
    when ``loc`` is a loop head, its back edges)."""
    cells: Dict[StmtKey, Any] = {}
    edges = cfg.fwd_edges_to(loc)
    for index, edge in edges:
        cells[(edge.src, edge.dst, index if len(edges) > 1 else 0)] = edge.stmt
    for edge in cfg.back_edges_to(loc):
        cells[(edge.src, edge.dst, 0)] = edge.stmt
    return cells


@dataclass
class StructureSnapshot:
    """The structural encoding of a CFG.

    Captured from scratch once (engine construction, or on a locality
    fallback) and thereafter updated *in place* over the affected region of
    each edit by :func:`splice_delta`.
    """

    reachable: Set[int]
    loc_sigs: Dict[int, Optional[LocSig]]
    loop_sigs: Dict[int, LoopSig]
    stmt_cells: Dict[StmtKey, Any]
    natural_loops: Dict[int, frozenset]
    #: Statement-cell keys grouped by the location they are anchored at
    #: (``key[1]``), so a region update can diff one location's cells
    #: without scanning the whole table.
    stmt_keys_by_loc: Dict[int, Set[StmtKey]] = field(default_factory=dict)

    @classmethod
    def capture(cls, cfg: Cfg) -> "StructureSnapshot":
        reachable = set(cfg.reachable_locations())
        heads = [h for h in cfg.loop_heads() if h in reachable]
        stmt_cells: Dict[StmtKey, Any] = {}
        stmt_keys_by_loc: Dict[int, Set[StmtKey]] = {}
        for loc in reachable:
            cells = _stmt_cells_at(cfg, loc)
            if cells:
                stmt_cells.update(cells)
                stmt_keys_by_loc[loc] = set(cells)
        return cls(
            reachable=reachable,
            loc_sigs={loc: _loc_signature(cfg, loc) for loc in reachable},
            loop_sigs={h: _loop_signature(cfg, h) for h in heads},
            stmt_cells=stmt_cells,
            natural_loops={h: frozenset(cfg.natural_loop(h)) for h in heads},
            stmt_keys_by_loc=stmt_keys_by_loc,
        )

    def set_stmt(self, key: StmtKey, stmt: Any) -> None:
        """Record a statement-cell write applied directly to the DAIG."""
        self.stmt_cells[key] = stmt
        self.stmt_keys_by_loc.setdefault(key[1], set()).add(key)


@dataclass
class SpliceReport:
    """What one splice did, for the engine's edit statistics."""

    dirty_locations: int = 0
    cells_removed: int = 0
    cells_added: int = 0
    cells_dirtied: int = 0
    values_retained: int = 0
    #: Cells whose prior value survived the splice as an early-cutoff
    #: shadow (dirtied cells, re-encoded cells, relabelled statements).
    cells_shadowed: int = 0
    seeds: List[N.Name] = field(default_factory=list)
    #: Snapshot entries re-signed by this splice (the whole reachable set
    #: for a full capture, the suspect region for a delta splice).
    locs_resigned: int = 0
    #: Statement cells deleted by this splice, and the statement cells in the
    #: re-signed region that now exist (new, relabelled, or re-anchored),
    #: keyed by ``(src, dst, index)``.  Consumers that index statements —
    #: e.g. the interprocedural call-site index — patch themselves from
    #: these deltas instead of rescanning the DAIG's ref set.
    stmt_removed: Set[StmtKey] = field(default_factory=set)
    stmt_present: Dict[StmtKey, Any] = field(default_factory=dict)
    #: True when this splice re-captured the snapshot from scratch.
    full_capture: bool = False
    #: Wall-clock split: signature/snapshot maintenance vs. DAIG surgery.
    snapshot_seconds: float = 0.0
    splice_seconds: float = 0.0
    #: The post-edit structure snapshot (the live snapshot for delta
    #: splices; a fresh capture for full splices).
    snapshot: Optional[StructureSnapshot] = None


def _check_encodable(builder: DaigBuilder) -> None:
    """The validity preconditions, checked before any snapshot/DAIG mutation
    so a rejected edit leaves both untouched (and recoverable)."""
    cfg = builder.cfg
    cfg.check_reducible()
    builder.check_loop_exits()
    if cfg.is_loop_head(cfg.entry) or cfg.in_any_loop(cfg.entry):
        raise ValueError("the entry location may not belong to a loop")


def splice(daig: Daig, builder: DaigBuilder,
           old: StructureSnapshot) -> SpliceReport:
    """Splice ``daig`` in place to match ``builder.cfg`` after an edit.

    ``old`` must describe the same CFG object *before* the structural
    edit(s) were applied.  On return the DAIG is well-formed for the new
    CFG, every cell whose encoding survived keeps its value, and everything
    downstream of the edit is dirtied for lazy recomputation.  This is the
    full-capture fallback; the common path is :func:`splice_delta`.
    """
    cfg = builder.cfg
    _check_encodable(builder)
    started = time.perf_counter()
    new = StructureSnapshot.capture(cfg)
    report = SpliceReport(snapshot=new, full_capture=True,
                          locs_resigned=len(new.reachable))

    # -- delta ---------------------------------------------------------------
    removed_locs = old.reachable - new.reachable
    added_locs = new.reachable - old.reachable
    changed_locs = {
        loc for loc in old.reachable & new.reachable
        if old.loc_sigs[loc] != new.loc_sigs[loc]
    }
    dirty_locs = added_locs | changed_locs

    removed_heads = set(old.loop_sigs) - set(new.loop_sigs)
    affected_heads: Set[int] = set()
    for head, sig in new.loop_sigs.items():
        if old.loop_sigs.get(head) != sig:
            affected_heads.add(head)
        elif new.natural_loops[head] & dirty_locs:
            affected_heads.add(head)
        elif old.natural_loops.get(head, frozenset()) & removed_locs:
            affected_heads.add(head)

    stale_stmts = set(old.stmt_cells) - set(new.stmt_cells)
    relabelled_stmts = [
        key for key, stmt in new.stmt_cells.items()
        if key in old.stmt_cells and old.stmt_cells[key] != stmt
    ]
    report.stmt_removed = set(stale_stmts)
    report.stmt_present = dict(new.stmt_cells)
    report.snapshot_seconds = time.perf_counter() - started
    return _apply_splice(
        daig, builder, report,
        removed_locs=removed_locs,
        changed_locs=changed_locs,
        dirty_locs=dirty_locs,
        removed_heads=removed_heads,
        affected_heads=affected_heads,
        stale_stmts=stale_stmts,
        relabelled_stmts=relabelled_stmts,
        stmt_values=new.stmt_cells,
    )


def splice_delta(daig: Daig, builder: DaigBuilder, snapshot: StructureSnapshot,
                 sig_suspects: Iterable[int],
                 head_suspects: Iterable[int]) -> SpliceReport:
    """Splice ``daig`` after an edit, re-signing only the suspect region.

    ``snapshot`` is the engine's live snapshot (in sync with the CFG as of
    the previous splice); ``sig_suspects`` / ``head_suspects`` come from the
    CFG's incremental structure layer and over-approximate the locations and
    loop heads whose encoding may have changed.  The snapshot is updated in
    place; everything outside the suspect sets is untouched by construction.
    """
    cfg = builder.cfg
    _check_encodable(builder)
    started = time.perf_counter()
    head_suspects = set(head_suspects)
    suspects = set(sig_suspects) | head_suspects
    reachable = cfg.reachable_locations()
    report = SpliceReport(snapshot=snapshot, locs_resigned=len(suspects))

    removed_locs: Set[int] = set()
    added_locs: Set[int] = set()
    changed_locs: Set[int] = set()
    for loc in suspects:
        was = loc in snapshot.reachable
        now = loc in reachable
        if was and not now:
            removed_locs.add(loc)
            snapshot.reachable.discard(loc)
            snapshot.loc_sigs.pop(loc, None)
        elif now:
            sig = _loc_signature(cfg, loc)
            if not was:
                added_locs.add(loc)
                snapshot.reachable.add(loc)
                snapshot.loc_sigs[loc] = sig
            elif snapshot.loc_sigs.get(loc) != sig:
                changed_locs.add(loc)
                snapshot.loc_sigs[loc] = sig
    dirty_locs = added_locs | changed_locs

    removed_heads: Set[int] = set()
    affected_heads: Set[int] = set()
    for head in head_suspects:
        was_head = head in snapshot.loop_sigs
        is_head = head in reachable and cfg.is_loop_head(head)
        if was_head and not is_head:
            removed_heads.add(head)
            snapshot.loop_sigs.pop(head, None)
            snapshot.natural_loops.pop(head, None)
        elif is_head:
            sig = _loop_signature(cfg, head)
            old_body = snapshot.natural_loops.get(head, frozenset())
            if not was_head or snapshot.loop_sigs.get(head) != sig:
                affected_heads.add(head)
            elif old_body & removed_locs:
                affected_heads.add(head)
            snapshot.loop_sigs[head] = sig
            snapshot.natural_loops[head] = frozenset(cfg.natural_loop(head))
    # A loop whose body contains a re-encoded location must reset its
    # demanded iterates (E-Loop) even when its own signature is unchanged.
    for loc in dirty_locs:
        affected_heads.update(cfg.containing_loop_heads(loc))
    affected_heads -= removed_heads

    stale_stmts: Set[StmtKey] = set()
    relabelled_stmts: List[StmtKey] = []
    for loc in suspects:
        old_keys = snapshot.stmt_keys_by_loc.get(loc, set())
        new_cells = _stmt_cells_at(cfg, loc) if loc in reachable else {}
        for key in old_keys - set(new_cells):
            stale_stmts.add(key)
            snapshot.stmt_cells.pop(key, None)
        for key, stmt in new_cells.items():
            if key in old_keys and snapshot.stmt_cells.get(key) != stmt:
                relabelled_stmts.append(key)
            snapshot.stmt_cells[key] = stmt
            report.stmt_present[key] = stmt
        if new_cells:
            snapshot.stmt_keys_by_loc[loc] = set(new_cells)
        else:
            snapshot.stmt_keys_by_loc.pop(loc, None)
    report.stmt_removed = stale_stmts
    report.snapshot_seconds = time.perf_counter() - started
    return _apply_splice(
        daig, builder, report,
        removed_locs=removed_locs,
        changed_locs=changed_locs,
        dirty_locs=dirty_locs,
        removed_heads=removed_heads,
        affected_heads=affected_heads,
        stale_stmts=stale_stmts,
        relabelled_stmts=relabelled_stmts,
        stmt_values=snapshot.stmt_cells,
    )


def _apply_splice(
    daig: Daig,
    builder: DaigBuilder,
    report: SpliceReport,
    *,
    removed_locs: Set[int],
    changed_locs: Set[int],
    dirty_locs: Set[int],
    removed_heads: Set[int],
    affected_heads: Set[int],
    stale_stmts: Set[StmtKey],
    relabelled_stmts: List[StmtKey],
    stmt_values: Dict[StmtKey, Any],
) -> SpliceReport:
    """The shared splice actions (identical for the full and delta paths)."""
    cfg = builder.cfg
    started = time.perf_counter()
    if not (dirty_locs or removed_locs or affected_heads or removed_heads
            or stale_stmts or relabelled_stmts):
        report.values_retained = len(daig.values)
        report.splice_seconds = time.perf_counter() - started
        return report

    # -- remove stale regions ------------------------------------------------
    to_remove: Set[N.Name] = set()
    for loc in removed_locs | changed_locs:
        for name in daig.cells_at(loc):
            if name.kind in (N.STATE, N.PREJOIN) and name.is_base_copy():
                to_remove.add(name)
    for head in removed_heads | affected_heads:
        for name in daig.cells_at(head):
            if name.kind in (N.FIX, N.PREWIDEN) and name.is_base_copy():
                to_remove.add(name)
        # Every demanded unrolling of an affected loop is stale (E-Loop),
        # including the initial iterate-1 chain, which is rebuilt below.
        to_remove.update(daig.iterated_cells(head, 1))
    for src, dst, index in stale_stmts:
        to_remove.add(N.stmt_name(src, dst, index))
    # Keep the prior values (and change stamps) of cells about to be
    # removed: any re-encoded under the same name below becomes an
    # early-cutoff shadow — if its recomputed value comes back
    # pointer-equal, the cone dirtied through it is restored, not
    # recomputed.  The stamps must survive the remove/re-add round trip,
    # or a re-encoded cell would look "never changed" to the restore walk.
    prior_values = {name: (daig.values[name], daig.stamps.get(name, 0))
                    for name in to_remove if name in daig.values}
    report.cells_removed = daig.remove_region(to_remove)

    # -- re-encode the dirty regions ----------------------------------------
    cells_before = len(daig.refs)
    for loc in sorted(dirty_locs):
        if loc != cfg.entry:
            builder.encode_incoming(daig, loc, {})
    for head in sorted(affected_heads):
        builder.build_loop_structures(daig, head, {})
    report.cells_added = len(daig.refs) - cells_before
    report.dirty_locations = len(dirty_locs)

    # -- update re-labelled statement cells and dirty downstream -------------
    seeds: List[N.Name] = []
    relabels: List[Tuple[N.Name, StmtKey]] = []
    for key in relabelled_stmts:
        name = N.stmt_name(*key)
        if name in daig.refs:
            relabels.append((name, key))
            seeds.append(name)
    for loc in sorted(dirty_locs):
        if loc != cfg.entry:
            seeds.append(builder.state_name(loc, {}))
    for head in sorted(affected_heads):
        seeds.append(builder.fix_name(head, {}))
    report.seeds = seeds
    report.cells_dirtied = len(dirty_forward(daig, builder, seeds))
    # Write the re-labelled statements only *after* dirty_forward captured
    # the downstream shadows: the shadows were computed from the old
    # statement values, so a statement that really changes must be stamped
    # at (not before) the capture epoch to veto restoring through it.
    for name, key in relabels:
        daig.set_value(name, stmt_values[key])
    # Re-encoded cells that came back under their old names: re-holding
    # source cells get their stamps fixed up (the rebuild reset them), and
    # empty computed cells adopt their prior values as shadows.  A
    # re-encoded computation changed, so such a shadow is usable only as a
    # cutoff baseline at its own commit, never as a restore payload.
    epoch = daig.epoch
    for name, (value, stamp) in prior_values.items():
        if name not in daig.refs:
            continue
        if name in daig.values:
            if daig.values[name] is value:
                if stamp:
                    daig.stamps[name] = stamp
                else:
                    daig.stamps.pop(name, None)
            else:
                daig.stamps[name] = epoch
        elif name not in daig.shadows:
            daig.shadows[name] = value
            daig.shadow_caps[name] = epoch
            if stamp:
                daig.stamps[name] = stamp
            else:
                daig.stamps.pop(name, None)
            daig.baseline_only.add(name)
    report.cells_shadowed = len(daig.shadows)
    report.values_retained = len(daig.values)
    report.splice_seconds = time.perf_counter() - started
    return report
