"""Incremental DAIG splicing: structural edits without a full rebuild.

A structural CFG edit (insert / delete / re-label edges) invalidates only
the DAIG sub-regions whose *encoding* changed — everything else keeps both
its structure and its previously computed values (rules E-Commit /
E-Propagate / E-Loop applied at the granularity of whole regions).  This
module turns that observation into an algorithm:

1. **Snapshot** (:meth:`StructureSnapshot.capture`) — before the CFG
   mutates, record a cheap structural *signature* per location (how its
   incoming forward edges are encoded: statement cells, pre-join indices,
   source cells) and per loop head (how its back edge is encoded), plus the
   statement labelling every edge.  Signatures are plain tuples over
   locations — no DAIG construction, no abstract-domain work.
2. **Delta** (:func:`splice`) — after the mutation, recompute signatures
   against the new CFG and diff: locations whose signature changed (or that
   appeared / vanished) need re-encoding; loop heads whose loop gained or
   lost members, or whose back-edge encoding changed, have their iterate
   chain reset to the initial two-iterate form; edges whose statement
   changed become dirtying seeds without any structural work.
3. **Splice** — remove exactly the stale cell regions (via the
   :class:`~repro.daig.graph.Daig` region indices), re-encode the dirty
   locations and affected loops with the ordinary
   :class:`~repro.daig.build.DaigBuilder` encoding rules, then dirty the
   cells downstream of every seed through the reverse-dependency index
   (:func:`repro.daig.edit.dirty_forward`).

The result is bit-identical to rebuilding the DAIG from scratch and
copying over unchanged values — the old engine behaviour — with all
*DAIG-side* work (cell removal, re-encoding, dirtying, and the abstract
recomputation a later query performs) proportional to the edit's impacted
region, and unaffected loops keeping their demanded unrollings instead of
being rolled back wholesale.  The snapshot-and-diff itself still walks the
reachable CFG once per side — cheap tuple comparisons with no domain work —
so per-edit latency retains an O(program) term, like the CFG's own
dominator/loop re-analysis; making both incremental is a ROADMAP item.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from ..lang.cfg import Cfg
from . import names as N
from .build import DaigBuilder
from .edit import dirty_forward
from .graph import Daig

#: A per-location encoding signature: how `encode_incoming` would encode the
#: location's incoming forward edges, as a tuple of primitive data.  Two
#: equal signatures produce identical cell names and computations.
LocSig = Tuple
#: A per-head loop signature: how `build_loop_structures` would encode the
#: loop's back edge.
LoopSig = Tuple
#: Identifies a statement cell: (edge src, edge dst, pre-join index or 0).
StmtKey = Tuple[int, int, int]


def _source_key(cfg: Cfg, src: int, dst: int) -> Tuple:
    """Signature of ``DaigBuilder.source_name(src, dst, ...)``.

    The source cell's name is determined by whether the edge leaves a loop
    through its head (footnote 5: read the fixed point) and by the source's
    enclosing loop heads (which index its state cell).
    """
    if src in cfg.loop_heads() and dst not in cfg.natural_loop(src):
        return ("fix", src, cfg.containing_loop_heads(src))
    return ("state", src, cfg.containing_loop_heads(src))


def _loc_signature(cfg: Cfg, loc: int) -> Optional[LocSig]:
    """Signature of ``encode_incoming(loc)``; None when there is nothing to
    encode (only the entry location, which holds φ0 directly)."""
    edges = cfg.fwd_edges_to(loc)
    if not edges:
        return None
    return (
        cfg.containing_loop_heads(loc),
        tuple((index, edge.src, edge.dst) for index, edge in edges),
        tuple(_source_key(cfg, edge.src, loc) for _index, edge in edges),
    )


def _loop_signature(cfg: Cfg, head: int) -> LoopSig:
    """Signature of ``build_loop_structures(head)``."""
    back = cfg.back_edges_to(head)
    return (
        cfg.containing_loop_heads(head),
        tuple((edge.src, edge.dst) for edge in back),
        tuple(_source_key(cfg, edge.src, head) for edge in back),
    )


def _stmt_cells(cfg: Cfg) -> Dict[StmtKey, Any]:
    """Map every encoded statement cell to the statement it holds."""
    cells: Dict[StmtKey, Any] = {}
    for loc in cfg.reachable_locations():
        edges = cfg.fwd_edges_to(loc)
        for index, edge in edges:
            key = (edge.src, edge.dst, index if len(edges) > 1 else 0)
            cells[key] = edge.stmt
    for head in cfg.loop_heads():
        for edge in cfg.back_edges_to(head):
            cells[(edge.src, edge.dst, 0)] = edge.stmt
    return cells


@dataclass
class StructureSnapshot:
    """The structural encoding of a CFG, captured before an edit."""

    reachable: FrozenSet[int]
    loc_sigs: Dict[int, Optional[LocSig]]
    loop_sigs: Dict[int, LoopSig]
    stmt_cells: Dict[StmtKey, Any]
    natural_loops: Dict[int, FrozenSet[int]]

    @classmethod
    def capture(cls, cfg: Cfg) -> "StructureSnapshot":
        reachable = frozenset(cfg.reachable_locations())
        heads = [h for h in cfg.loop_heads() if h in reachable]
        return cls(
            reachable=reachable,
            loc_sigs={loc: _loc_signature(cfg, loc) for loc in reachable},
            loop_sigs={h: _loop_signature(cfg, h) for h in heads},
            stmt_cells=_stmt_cells(cfg),
            natural_loops={h: frozenset(cfg.natural_loop(h)) for h in heads},
        )


@dataclass
class SpliceReport:
    """What one splice did, for the engine's edit statistics."""

    dirty_locations: int = 0
    cells_removed: int = 0
    cells_added: int = 0
    cells_dirtied: int = 0
    values_retained: int = 0
    seeds: List[N.Name] = field(default_factory=list)
    #: The post-edit structure snapshot, so a continuing batch can reuse it
    #: instead of re-capturing the same CFG.
    snapshot: Optional[StructureSnapshot] = None


def splice(daig: Daig, builder: DaigBuilder,
           old: StructureSnapshot) -> SpliceReport:
    """Splice ``daig`` in place to match ``builder.cfg`` after an edit.

    ``old`` must have been captured from the same CFG object *before* the
    structural edit(s) were applied.  On return the DAIG is well-formed for
    the new CFG, every cell whose encoding survived keeps its value, and
    everything downstream of the edit is dirtied for lazy recomputation.
    """
    cfg = builder.cfg
    cfg.check_reducible()
    builder.check_loop_exits()
    if cfg.entry in cfg.loop_heads() or cfg.in_any_loop(cfg.entry):
        raise ValueError("the entry location may not belong to a loop")
    new = StructureSnapshot.capture(cfg)
    report = SpliceReport(snapshot=new)

    # -- delta ---------------------------------------------------------------
    removed_locs = old.reachable - new.reachable
    added_locs = new.reachable - old.reachable
    changed_locs = {
        loc for loc in old.reachable & new.reachable
        if old.loc_sigs[loc] != new.loc_sigs[loc]
    }
    dirty_locs = added_locs | changed_locs

    removed_heads = set(old.loop_sigs) - set(new.loop_sigs)
    affected_heads: Set[int] = set()
    for head, sig in new.loop_sigs.items():
        if old.loop_sigs.get(head) != sig:
            affected_heads.add(head)
        elif new.natural_loops[head] & dirty_locs:
            affected_heads.add(head)
        elif old.natural_loops.get(head, frozenset()) & removed_locs:
            affected_heads.add(head)

    stale_stmts = set(old.stmt_cells) - set(new.stmt_cells)
    relabelled_stmts = [
        key for key, stmt in new.stmt_cells.items()
        if key in old.stmt_cells and old.stmt_cells[key] != stmt
    ]

    if not (dirty_locs or removed_locs or affected_heads or removed_heads
            or stale_stmts or relabelled_stmts):
        report.values_retained = len(daig.values)
        return report

    # -- remove stale regions ------------------------------------------------
    to_remove: Set[N.Name] = set()
    for loc in removed_locs | changed_locs:
        for name in daig.cells_at(loc):
            if name.kind in (N.STATE, N.PREJOIN) and name.is_base_copy():
                to_remove.add(name)
    for head in removed_heads | affected_heads:
        for name in daig.cells_at(head):
            if name.kind in (N.FIX, N.PREWIDEN) and name.is_base_copy():
                to_remove.add(name)
        # Every demanded unrolling of an affected loop is stale (E-Loop),
        # including the initial iterate-1 chain, which is rebuilt below.
        to_remove.update(daig.iterated_cells(head, 1))
    for src, dst, index in stale_stmts:
        to_remove.add(N.stmt_name(src, dst, index))
    report.cells_removed = daig.remove_region(to_remove)

    # -- re-encode the dirty regions ----------------------------------------
    cells_before = len(daig.refs)
    for loc in sorted(dirty_locs):
        if loc != cfg.entry:
            builder.encode_incoming(daig, loc, {})
    for head in sorted(affected_heads):
        builder.build_loop_structures(daig, head, {})
    report.cells_added = len(daig.refs) - cells_before
    report.dirty_locations = len(dirty_locs)

    # -- update re-labelled statement cells and dirty downstream -------------
    seeds: List[N.Name] = []
    for key in relabelled_stmts:
        name = N.stmt_name(*key)
        if name in daig.refs:
            daig.set_value(name, new.stmt_cells[key])
            seeds.append(name)
    for loc in sorted(dirty_locs):
        if loc != cfg.entry:
            seeds.append(builder.state_name(loc, {}))
    for head in sorted(affected_heads):
        seeds.append(builder.fix_name(head, {}))
    report.seeds = seeds
    report.cells_dirtied = len(dirty_forward(daig, builder, seeds))
    report.values_retained = len(daig.values)
    return report
