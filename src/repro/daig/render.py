"""Rendering DAIGs for inspection: Graphviz DOT export and text summaries.

The paper explains its technique with pictures of DAIGs (Figs. 3, 4, 7).
This module produces the same kind of picture from a live engine so that
users can *see* demanded unrolling and incremental dirtying happen:

* :func:`to_dot` renders a DAIG as Graphviz DOT text — statement cells as
  boxes, abstract-state cells as ellipses (filled when they hold a value,
  hollow when dirty/empty), and computation hyper-edges through small
  labelled junction nodes (⟦·⟧♯, ⊔, ∇, fix);
* :func:`summarize_daig` produces a compact textual census (cells by kind,
  how many are filled, current unrolling depth per loop) used by the
  examples and handy when debugging incremental behaviour.
"""

from __future__ import annotations

from typing import Dict, List

from .graph import Daig, FIX, JOIN, TRANSFER, WIDEN
from .names import Name, PREJOIN, PREWIDEN, STATE, STMT, TYPE_STMT
from .names import FIX as FIX_KIND

#: Display labels for the computation function symbols.
_FUNCTION_LABELS = {TRANSFER: "⟦·⟧♯", JOIN: "⊔", WIDEN: "∇", FIX: "fix"}


def _node_id(name: Name) -> str:
    iters = "_".join("%dx%d" % (head, count) for head, count in name.iters)
    return "cell_%s_%d_%d_%d_%s" % (name.kind, name.loc, name.aux, name.index, iters)


def _cell_label(daig: Daig, name: Name) -> str:
    if name.cell_type() == TYPE_STMT and daig.has_value(name):
        return "%s\\n%s" % (name, daig.value(name))
    return str(name)


def to_dot(daig: Daig, title: str = "daig", max_value_length: int = 24) -> str:
    """Render ``daig`` as Graphviz DOT text (Figs. 3/4-style pictures)."""
    lines: List[str] = [
        "digraph %s {" % title.replace('"', ""),
        "  rankdir=LR;",
        '  node [fontname="Helvetica"];',
    ]
    for name in sorted(daig.refs, key=str):
        shape = "box" if name.cell_type() == TYPE_STMT else "ellipse"
        filled = daig.has_value(name)
        label = _cell_label(daig, name).replace('"', "'")
        if filled and name.cell_type() != TYPE_STMT:
            value_text = str(daig.value(name))
            if len(value_text) > max_value_length:
                value_text = value_text[:max_value_length] + "…"
            label += "\\n" + value_text.replace('"', "'")
        style = "filled" if filled else "dashed"
        lines.append('  %s [shape=%s, style=%s, label="%s"];'
                     % (_node_id(name), shape, style, label))
    for index, comp in enumerate(sorted(daig.computations.values(),
                                        key=lambda c: str(c.dest))):
        junction = "comp_%d" % index
        label = _FUNCTION_LABELS.get(comp.func, comp.func)
        lines.append('  %s [shape=circle, width=0.25, label="%s"];'
                     % (junction, label))
        for src in comp.srcs:
            lines.append("  %s -> %s;" % (_node_id(src), junction))
        lines.append("  %s -> %s;" % (junction, _node_id(comp.dest)))
    lines.append("}")
    return "\n".join(lines)


def summarize_daig(daig: Daig) -> Dict[str, int]:
    """A census of the DAIG: cells by kind, filled cells, loop unrollings."""
    census: Dict[str, int] = {
        "cells": len(daig.refs),
        "computations": len(daig.computations),
        "filled_cells": len(daig.values),
        "statement_cells": 0,
        "state_cells": 0,
        "prejoin_cells": 0,
        "prewiden_cells": 0,
        "fix_cells": 0,
        "max_unrolling": 0,
    }
    kind_keys = {STMT: "statement_cells", STATE: "state_cells",
                 PREJOIN: "prejoin_cells", PREWIDEN: "prewiden_cells",
                 FIX_KIND: "fix_cells"}
    for name in daig.refs:
        key = kind_keys.get(name.kind)
        if key is not None:
            census[key] += 1
    for comp in daig.computations.values():
        if comp.func == FIX:
            census["max_unrolling"] = max(
                census["max_unrolling"],
                comp.srcs[1].iteration_of(comp.dest.loc))
    return census


def describe_dirty_frontier(daig: Daig) -> List[str]:
    """Names of the empty (dirtied / not-yet-demanded) abstract-state cells."""
    return sorted(str(name) for name in daig.refs
                  if name.cell_type() != TYPE_STMT and not daig.has_value(name))
