"""Demand-driven query evaluation over DAIGs (Fig. 8).

:class:`QueryEvaluator` implements the ``D, M ⊢ n ⇒ v ; D', M'`` judgment:

* **Q-Reuse** — a cell that already holds a value returns it unchanged;
* **Q-Match** — an empty cell whose inputs evaluate to values already in the
  memo table reuses the memoized result;
* **Q-Miss** — otherwise the analysis function is applied, and the result is
  stored both in the cell and in the memo table;
* **Q-Loop-Converge** — a ``fix`` cell whose two input iterates agree holds
  the loop's fixed point;
* **Q-Loop-Unroll** — otherwise the loop is unrolled by one abstract
  iteration (:meth:`repro.daig.build.DaigBuilder.unroll`) and the query is
  reissued; convergence of the underlying widening bounds the number of
  unrollings (Theorem 6.3).

Call statements are special-cased: their abstract effect may depend on a
callee analysis (Section 7.1), so the evaluator accepts a ``call_transfer``
hook and never memoizes call transfers in the location-independent table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from .build import DaigBuilder
from .graph import Computation, Daig, FIX, IllFormedDaigError, JOIN, TRANSFER, WIDEN
from .memo import MemoTable
from .names import Name

#: Safety bound on demanded unrollings of a single loop; a convergent
#: widening never comes close, so exceeding it signals a domain bug.
MAX_UNROLLINGS = 2000


class QueryStats:
    """Counters describing the work a sequence of queries performed."""

    def __init__(self) -> None:
        self.transfers = 0
        self.joins = 0
        self.widens = 0
        self.unrollings = 0
        self.cells_computed = 0
        self.cells_reused = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transfers": self.transfers,
            "joins": self.joins,
            "widens": self.widens,
            "unrollings": self.unrollings,
            "cells_computed": self.cells_computed,
            "cells_reused": self.cells_reused,
        }


class QueryEvaluator:
    """Evaluates demand queries against a DAIG + memo table."""

    def __init__(
        self,
        daig: Daig,
        memo: MemoTable,
        domain: AbstractDomain,
        builder: DaigBuilder,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
    ) -> None:
        self.daig = daig
        self.memo = memo
        self.domain = domain
        self.builder = builder
        self.call_transfer = call_transfer
        self.stats = QueryStats()

    # -- the query judgment ------------------------------------------------------------

    def query(self, name: Name) -> Any:
        """Request the value of cell ``name``, computing dependencies on demand."""
        if self.daig.has_value(name):
            self.stats.cells_reused += 1
            return self.daig.value(name)
        comp = self.daig.defining(name)
        if comp is None:
            raise IllFormedDaigError("query for undefined empty cell %s" % (name,))
        if comp.func == FIX:
            return self._query_fix(name, comp)
        args = tuple(self.query(src) for src in comp.srcs)
        value = self._evaluate(comp, args)
        self.daig.set_value(name, value)
        self.stats.cells_computed += 1
        return value

    def _evaluate(self, comp: Computation, args: Tuple[Any, ...]) -> Any:
        is_call = comp.func == TRANSFER and isinstance(args[0], A.CallStmt)
        if not is_call:
            found, cached = self.memo.lookup(comp.func, args)
            if found:
                return cached
        value = self._apply(comp.func, args)
        if not is_call:
            self.memo.store(comp.func, args, value)
        return value

    def _apply(self, func: str, args: Tuple[Any, ...]) -> Any:
        if func == TRANSFER:
            stmt, state = args
            if isinstance(stmt, A.CallStmt) and self.call_transfer is not None:
                self.stats.transfers += 1
                return self.call_transfer(stmt, state)
            self.stats.transfers += 1
            return self.domain.transfer(stmt, state)
        if func == JOIN:
            self.stats.joins += 1
            result = args[0]
            for value in args[1:]:
                result = self.domain.join(result, value)
            return result
        if func == WIDEN:
            self.stats.widens += 1
            return self.domain.widen(args[0], args[1])
        raise IllFormedDaigError("cannot apply function %r" % (func,))

    def _query_fix(self, name: Name, comp: Computation) -> Any:
        """Q-Loop-Converge / Q-Loop-Unroll."""
        for _attempt in range(MAX_UNROLLINGS):
            first = self.query(comp.srcs[0])
            second = self.query(comp.srcs[1])
            if self.domain.equal(first, second):
                self.daig.set_value(name, second)
                self.stats.cells_computed += 1
                return second
            self.stats.unrollings += 1
            overrides = dict(name.iters)
            self.builder.unroll(self.daig, name.loc, overrides)
            comp = self.daig.defining(name)
            if comp is None:
                raise IllFormedDaigError("fix cell lost its computation: %s" % (name,))
        raise IllFormedDaigError(
            "loop at head %d did not converge within %d demanded unrollings"
            % (name.loc, MAX_UNROLLINGS))
