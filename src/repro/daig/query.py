"""Demand-driven query evaluation over DAIGs (Fig. 8).

:class:`QueryEvaluator` implements the ``D, M ⊢ n ⇒ v ; D', M'`` judgment:

* **Q-Reuse** — a cell that already holds a value returns it unchanged;
* **Q-Match** — an empty cell whose inputs evaluate to values already in the
  memo table reuses the memoized result;
* **Q-Miss** — otherwise the analysis function is applied, and the result is
  stored both in the cell and in the memo table;
* **Q-Loop-Converge** — a ``fix`` cell whose two input iterates agree holds
  the loop's fixed point;
* **Q-Loop-Unroll** — otherwise the loop is unrolled by one abstract
  iteration (:meth:`repro.daig.build.DaigBuilder.unroll`) and the query is
  reissued; convergence of the underlying widening bounds the number of
  unrollings (Theorem 6.3).

The judgment is evaluated *iteratively*: an explicit stack of demanded cell
names replaces the recursive formulation, so a demand chain as long as the
program (a straight-line method with tens of thousands of statements) runs
at Python's default recursion limit.  Because only one unevaluated input is
pushed at a time, the stack always spells out the current demand path,
which gives exact cycle detection: a dependency cycle (impossible in a
well-formed DAIG, Definition 4.1) raises :class:`IllFormedDaigError`
instead of looping.

Call statements are special-cased: their abstract effect may depend on a
callee analysis (Section 7.1), so the evaluator accepts a ``call_transfer``
hook and never memoizes call transfers in the location-independent table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from .build import DaigBuilder
from .graph import Computation, Daig, FIX, IllFormedDaigError, JOIN, TRANSFER, WIDEN
from .memo import MemoTable
from .names import Name

#: Safety bound on demanded unrollings of a single loop; a convergent
#: widening never comes close, so exceeding it signals a domain bug.
MAX_UNROLLINGS = 2000

#: Sentinel distinguishing "cell is empty" from any real value.
_ABSENT = object()


class StaleDemandError(Exception):
    """The queried root cell was removed while its demand was in flight.

    Raised only when a reentrant call transfer (the interprocedural engine
    reacting to a callee summary change) rolled back structure that the
    current demand path ran through *and* took the root cell with it.  The
    engine retries the query against the post-rollback encoding."""


class QueryStats:
    """Counters describing the work a sequence of queries performed."""

    def __init__(self) -> None:
        self.transfers = 0
        self.joins = 0
        self.widens = 0
        self.unrollings = 0
        self.cells_computed = 0
        self.cells_reused = 0
        #: Early-cutoff counters: recomputed cells whose new value was
        #: pointer-equal to their pre-edit shadow, and downstream cells
        #: restored from their shadows instead of recomputed.
        self.cells_cutoff = 0
        self.cells_restored = 0
        #: Parallel-worklist counters (0 under the sequential evaluator):
        #: batches of independent ready cells dispatched concurrently, and
        #: the total cells evaluated through those batches.
        self.parallel_batches = 0
        self.parallel_batch_cells = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transfers": self.transfers,
            "joins": self.joins,
            "widens": self.widens,
            "unrollings": self.unrollings,
            "cells_computed": self.cells_computed,
            "cells_reused": self.cells_reused,
            "cells_cutoff": self.cells_cutoff,
            "cells_restored": self.cells_restored,
            "parallel_batches": self.parallel_batches,
            "parallel_batch_cells": self.parallel_batch_cells,
        }


class QueryEvaluator:
    """Evaluates demand queries against a DAIG + memo table."""

    def __init__(
        self,
        daig: Daig,
        memo: MemoTable,
        domain: AbstractDomain,
        builder: DaigBuilder,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
        cutoff: bool = True,
    ) -> None:
        self.daig = daig
        self.memo = memo
        self.domain = domain
        self.builder = builder
        self.call_transfer = call_transfer
        #: Early cutoff: compare every committed value against the cell's
        #: pre-edit shadow and restore the unchanged downstream cone.
        #: Disabled only by benchmark baselines measuring its benefit.
        self.cutoff = cutoff
        self.stats = QueryStats()

    # -- the query judgment ------------------------------------------------------------

    def query(self, name: Name) -> Any:
        """Request the value of cell ``name``, computing dependencies on demand.

        The evaluation is a depth-first walk over the demanded sub-DAIG with
        an explicit stack; at every step the stack's top is the judgment
        currently being derived and the stack below it is the demand path
        that led there.
        """
        daig = self.daig
        if daig.has_value(name):
            self.stats.cells_reused += 1
            return daig.value(name)
        unrollings: Dict[Name, int] = {}
        stack: List[Name] = [name]
        on_path: Set[Name] = {name}
        # Which demanding cell caused each computation, so that input reads
        # count as Q-Reuse exactly as in the recursive judgment: every
        # demanded read of a cell is a reuse unless this very demand is the
        # one that computed it.
        pushed_by: Dict[Name, Name] = {}
        while stack:
            current = stack[-1]
            if daig.has_value(current):
                # Computed while pending (shared input of an earlier sibling).
                stack.pop()
                on_path.discard(current)
                continue
            comp = daig.defining(current)
            if comp is None:
                if current != name and current not in daig.refs:
                    # Removed mid-flight by a reentrant call transfer (loop
                    # rollback); restart the walk from the root.
                    if name not in daig.refs:
                        raise StaleDemandError(
                            "root cell %s vanished during evaluation" % (name,))
                    stack = [name]
                    on_path = {name}
                    pushed_by.clear()
                    continue
                raise IllFormedDaigError(
                    "query for undefined empty cell %s" % (current,))
            pending = next(
                (src for src in comp.srcs if not daig.has_value(src)), None)
            if pending is not None:
                if pending in on_path:
                    raise IllFormedDaigError(
                        "dependency cycle through %s" % (pending,))
                if self._evaluate_ready_frontier(current):
                    continue  # some dependencies were filled; re-examine
                stack.append(pending)
                on_path.add(pending)
                pushed_by[pending] = current
                continue
            self._count_input_reuse(current, comp, pushed_by)
            if comp.func == FIX:
                self._step_fix(current, comp, unrollings)
                continue  # either converged (valued) or unrolled (new inputs)
            args = tuple(daig.value(src) for src in comp.srcs)
            value = self._evaluate(comp, args)
            if (current not in daig.refs
                    or daig.defining(current) != comp
                    or not all(daig.has_value(src) for src in comp.srcs)):
                # A call transfer may re-enter the interprocedural engine,
                # which can dirty cells of *this* DAIG (a callee summary
                # changed) while the transfer was evaluating — possibly
                # rolling back a loop the demand path ran through.  The value
                # just computed is stale; discard it and restart the walk
                # from the root (everything already committed keeps its
                # value, so only the invalidated suffix is re-derived).
                if name not in daig.refs:
                    raise StaleDemandError(
                        "root cell %s vanished during evaluation" % (name,))
                stack = [name]
                on_path = {name}
                pushed_by.clear()
                continue
            self._commit_cell(current, value)
            stack.pop()
            on_path.discard(current)
        return daig.value(name)

    def _commit_cell(self, name: Name, value: Any) -> None:
        """Write a recomputed value into its cell — the one place values are
        committed, so early cutoff sees every recomputation.

        If the new value is pointer-equal to the cell's pre-edit shadow, the
        edit's effect died out here: every consumer dirtied only through
        this cell would recompute exactly its own prior value, so those
        consumers are *restored* from their shadows instead (E-Propagate
        stopped at the first unchanged value)."""
        daig = self.daig
        daig.set_value(name, value)
        self.stats.cells_computed += 1
        if self.cutoff and daig.shadows.get(name) is value:
            del daig.shadows[name]
            daig.shadow_caps.pop(name, None)
            daig.baseline_only.discard(name)
            self.stats.cells_cutoff += 1
            self._restore_from(name)

    def _restore_from(self, source: Name) -> None:
        """Restore the consumers of an unchanged cell from their shadows.

        A dirtied (empty, shadowed) cell is restorable when every input of
        its defining computation holds a value whose last pointer-change
        (``daig.stamps``) is *strictly earlier* than the epoch at which the
        shadow was captured (``daig.shadow_caps``): a shadow is captured at
        a moment of src-consistency, so inputs unchanged since then would
        provably reproduce it, while an input (re)written at the capture
        epoch or later may not be the value the shadow was computed from.  ``fix`` cells are never restored: after roll-back their two
        inputs no longer determine the fixed point (the loop body does too),
        so they reconverge by demanded unrolling and cut off at their own
        commit.  Call transfers likewise recompute honestly — their value
        also depends on the callee's summary, which their inputs cannot
        witness."""
        daig = self.daig
        shadows = daig.shadows
        stamps = daig.stamps
        frontier = [source]
        while frontier:
            for dep in daig.dependents_of(frontier.pop()):
                if dep not in shadows or dep in daig.values \
                        or dep in daig.baseline_only:
                    continue
                comp = daig.defining(dep)
                if comp is None or comp.func == FIX:
                    continue
                if (comp.func == TRANSFER and self.call_transfer is not None
                        and daig.has_value(comp.srcs[0])
                        and isinstance(daig.value(comp.srcs[0]), A.CallStmt)):
                    continue
                cap = daig.shadow_caps.get(dep, 0)
                restorable = True
                for src in comp.srcs:
                    if src not in daig.values or stamps.get(src, 0) >= cap:
                        restorable = False
                        break
                if not restorable:
                    continue
                # set_value before popping: the previous known value is the
                # shadow itself, so the restore does not bump the stamp.
                daig.set_value(dep, shadows[dep])
                shadows.pop(dep, None)
                daig.shadow_caps.pop(dep, None)
                self.stats.cells_restored += 1
                frontier.append(dep)

    def _evaluate_ready_frontier(self, current: Name) -> bool:
        """Hook for the parallel evaluator: evaluate ready cells below
        ``current`` concurrently, returning whether any progress was made.
        The sequential evaluator never batches."""
        return False

    def _count_input_reuse(self, current: Name, comp: Computation,
                           pushed_by: Dict[Name, Name]) -> None:
        """Count Q-Reuse for ``current``'s input reads.

        An input read is a reuse when the cell already held a value before
        ``current`` demanded it — i.e. it was filled by an earlier query, or
        computed during this walk on behalf of a *different* demander.  An
        input ``current`` itself pushed was just counted as computed, so the
        attribution is consumed to keep later fix re-reads counting as reuse.
        """
        for src in comp.srcs:
            if pushed_by.get(src) is current:
                del pushed_by[src]
            else:
                self.stats.cells_reused += 1

    def _step_fix(self, name: Name, comp: Computation,
                  unrollings: Dict[Name, int]) -> None:
        """One Q-Loop step for a ``fix`` cell whose iterates are available.

        Writes the fixed point into the cell on convergence
        (Q-Loop-Converge); otherwise unrolls the loop by one iteration
        (Q-Loop-Unroll), replacing the cell's defining computation so the
        caller's next look at the cell demands the new greatest iterate.
        """
        first = self.daig.value(comp.srcs[0])
        second = self.daig.value(comp.srcs[1])
        # Interned states make the common converged case a pointer check.
        if first is second or self.domain.equal(first, second):
            self._commit_cell(name, second)
            return
        count = unrollings.get(name, 0) + 1
        if count > MAX_UNROLLINGS:
            raise IllFormedDaigError(
                "loop at head %d (fix cell %s) did not converge within %d "
                "demanded unrollings; the last two iterates were %s: %r "
                "and %s: %r — the domain's widening is not stabilizing them"
                % (name.loc, name, MAX_UNROLLINGS,
                   comp.srcs[0], first, comp.srcs[1], second))
        unrollings[name] = count
        self.stats.unrollings += 1
        self.builder.unroll(self.daig, name.loc, dict(name.iters))
        if self.daig.defining(name) is None:
            raise IllFormedDaigError("fix cell lost its computation: %s" % (name,))

    def _evaluate(self, comp: Computation, args: Tuple[Any, ...]) -> Any:
        is_call = comp.func == TRANSFER and isinstance(args[0], A.CallStmt)
        if not is_call:
            found, cached = self.memo.lookup(comp.func, args)
            if found:
                return cached
        value = self._apply(comp.func, args,
                            site=comp.srcs[0] if is_call else None)
        if not is_call:
            self.memo.store(comp.func, args, value)
        return value

    def _apply(self, func: str, args: Tuple[Any, ...],
               site: Optional[Name] = None) -> Any:
        if func == TRANSFER:
            stmt, state = args
            if isinstance(stmt, A.CallStmt) and self.call_transfer is not None:
                self.stats.transfers += 1
                if getattr(self.call_transfer, "accepts_site", False):
                    # Site-aware hook: also receives the statement *cell*
                    # naming the call site, so the interprocedural engine can
                    # index entry-state contributions per call site.
                    return self.call_transfer(stmt, state, site)
                return self.call_transfer(stmt, state)
            self.stats.transfers += 1
            return self.domain.transfer(stmt, state)
        if func == JOIN:
            self.stats.joins += 1
            result = args[0]
            for value in args[1:]:
                result = self.domain.join(result, value)
            return result
        if func == WIDEN:
            self.stats.widens += 1
            return self.domain.widen(args[0], args[1])
        raise IllFormedDaigError("cannot apply function %r" % (func,))


class ParallelQueryEvaluator(QueryEvaluator):
    """A query evaluator that computes independent ready cells concurrently.

    The explicit-stack walk of :class:`QueryEvaluator` demands one pending
    input at a time; here, whenever the walk is about to descend, the whole
    *ready frontier* below the demanded cell — every unvalued cell whose
    inputs all hold values, excluding ``fix`` cells and call transfers — is
    evaluated as one batch on a bounded thread pool.  Determinism is
    preserved by construction:

    * each batched cell is a pure function of already-fixed input values,
      so its result is independent of scheduling;
    * join operand order is the computation's ``srcs`` order, untouched;
    * results are committed (cell writes, memo stores, statistics) on the
      demanding thread, in sorted cell-name order;
    * ``fix`` steps, call transfers, and all memo traffic stay on the
      demanding thread, so reentrant interprocedural updates and demanded
      unrolling behave exactly as in the sequential evaluator.
    """

    def __init__(
        self,
        daig: Daig,
        memo: MemoTable,
        domain: AbstractDomain,
        builder: DaigBuilder,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
        workers: int = 2,
        cutoff: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError("parallel evaluation needs at least one worker")
        super().__init__(daig, memo, domain, builder, call_transfer,
                         cutoff=cutoff)
        self.workers = workers
        self._executor: Optional[Any] = None
        #: Wall-clock seconds spent dispatching and gathering batches,
        #: reported by the engine as the ``dispatch`` phase.
        self.dispatch_seconds = 0.0

    def _ensure_executor(self) -> Any:
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="daig-cell")
        return self._executor

    def close(self) -> None:
        """Shut down the worker threads (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def _batchable(self, comp: Computation) -> bool:
        if comp.func == FIX:
            return False
        if comp.func == TRANSFER:
            stmt_src = comp.srcs[0]
            if (self.daig.has_value(stmt_src)
                    and isinstance(self.daig.value(stmt_src), A.CallStmt)):
                return False  # call transfers stay on the demanding thread
        return True

    def _ready_frontier(self, current: Name) -> List[Tuple[Name, Computation]]:
        """Unvalued cells in ``current``'s dependency closure whose inputs
        are all valued (``current`` itself excluded)."""
        daig = self.daig
        ready: List[Tuple[Name, Computation]] = []
        seen: Set[Name] = {current}
        frontier: List[Name] = [current]
        while frontier:
            cell = frontier.pop()
            comp = daig.defining(cell)
            if comp is None:
                continue  # the sequential path reports undefined cells
            pending = [src for src in comp.srcs if not daig.has_value(src)]
            if not pending:
                if cell is not current and self._batchable(comp):
                    ready.append((cell, comp))
                continue
            for src in pending:
                if src not in seen:
                    seen.add(src)
                    frontier.append(src)
        ready.sort(key=lambda pair: repr(pair[0]))
        return ready

    def _evaluate_ready_frontier(self, current: Name) -> bool:
        import time

        daig = self.daig
        ready = self._ready_frontier(current)
        if not ready:
            return False
        progressed = False
        misses: List[Tuple[Name, Computation, Tuple[Any, ...]]] = []
        for cell, comp in ready:
            if daig.has_value(cell):
                progressed = True  # restored by an earlier commit's cutoff
                continue
            args = tuple(daig.value(src) for src in comp.srcs)
            found, cached = self.memo.lookup(comp.func, args)
            if found:
                self._commit_cell(cell, cached)
                self.stats.cells_reused += len(comp.srcs)
                progressed = True
            else:
                misses.append((cell, comp, args))
        if len(misses) > 1:
            started = time.perf_counter()
            executor = self._ensure_executor()
            futures = [executor.submit(self._apply_pure, comp.func, args)
                       for (_cell, comp, args) in misses]
            values = [future.result() for future in futures]
            self.dispatch_seconds += time.perf_counter() - started
            self.stats.parallel_batches += 1
            self.stats.parallel_batch_cells += len(misses)
        else:
            values = [self._apply_pure(comp.func, args)
                      for (_cell, comp, args) in misses]
        # Commit on the demanding thread, in the sorted order of ``misses``.
        for (cell, comp, args), value in zip(misses, values):
            self.memo.store(comp.func, args, value)
            if not daig.has_value(cell):  # an earlier cutoff may restore it
                self._commit_cell(cell, value)
                self._count_batch_stats(comp, args)
            progressed = True
        return progressed

    def _apply_pure(self, func: str, args: Tuple[Any, ...]) -> Any:
        """Statistics-free :meth:`_apply` for worker threads: domain
        operations only — no shared-counter writes, no memo traffic."""
        if func == TRANSFER:
            stmt, state = args
            return self.domain.transfer(stmt, state)
        if func == JOIN:
            result = args[0]
            for value in args[1:]:
                result = self.domain.join(result, value)
            return result
        if func == WIDEN:
            return self.domain.widen(args[0], args[1])
        raise IllFormedDaigError("cannot apply function %r" % (func,))

    def _count_batch_stats(self, comp: Computation, args: Tuple[Any, ...]) -> None:
        if comp.func == TRANSFER:
            self.stats.transfers += 1
        elif comp.func == JOIN:
            self.stats.joins += 1
        elif comp.func == WIDEN:
            self.stats.widens += 1
        # ``cells_computed`` is counted by ``_commit_cell``.
        # Every input of a ready cell held its value before this demand
        # reached it, so each read counts as Q-Reuse.
        self.stats.cells_reused += len(args)
