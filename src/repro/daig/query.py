"""Demand-driven query evaluation over DAIGs (Fig. 8).

:class:`QueryEvaluator` implements the ``D, M ⊢ n ⇒ v ; D', M'`` judgment:

* **Q-Reuse** — a cell that already holds a value returns it unchanged;
* **Q-Match** — an empty cell whose inputs evaluate to values already in the
  memo table reuses the memoized result;
* **Q-Miss** — otherwise the analysis function is applied, and the result is
  stored both in the cell and in the memo table;
* **Q-Loop-Converge** — a ``fix`` cell whose two input iterates agree holds
  the loop's fixed point;
* **Q-Loop-Unroll** — otherwise the loop is unrolled by one abstract
  iteration (:meth:`repro.daig.build.DaigBuilder.unroll`) and the query is
  reissued; convergence of the underlying widening bounds the number of
  unrollings (Theorem 6.3).

The judgment is evaluated *iteratively*: an explicit stack of demanded cell
names replaces the recursive formulation, so a demand chain as long as the
program (a straight-line method with tens of thousands of statements) runs
at Python's default recursion limit.  Because only one unevaluated input is
pushed at a time, the stack always spells out the current demand path,
which gives exact cycle detection: a dependency cycle (impossible in a
well-formed DAIG, Definition 4.1) raises :class:`IllFormedDaigError`
instead of looping.

Call statements are special-cased: their abstract effect may depend on a
callee analysis (Section 7.1), so the evaluator accepts a ``call_transfer``
hook and never memoizes call transfers in the location-independent table.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Set, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from .build import DaigBuilder
from .graph import Computation, Daig, FIX, IllFormedDaigError, JOIN, TRANSFER, WIDEN
from .memo import MemoTable
from .names import Name

#: Safety bound on demanded unrollings of a single loop; a convergent
#: widening never comes close, so exceeding it signals a domain bug.
MAX_UNROLLINGS = 2000


class StaleDemandError(Exception):
    """The queried root cell was removed while its demand was in flight.

    Raised only when a reentrant call transfer (the interprocedural engine
    reacting to a callee summary change) rolled back structure that the
    current demand path ran through *and* took the root cell with it.  The
    engine retries the query against the post-rollback encoding."""


class QueryStats:
    """Counters describing the work a sequence of queries performed."""

    def __init__(self) -> None:
        self.transfers = 0
        self.joins = 0
        self.widens = 0
        self.unrollings = 0
        self.cells_computed = 0
        self.cells_reused = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "transfers": self.transfers,
            "joins": self.joins,
            "widens": self.widens,
            "unrollings": self.unrollings,
            "cells_computed": self.cells_computed,
            "cells_reused": self.cells_reused,
        }


class QueryEvaluator:
    """Evaluates demand queries against a DAIG + memo table."""

    def __init__(
        self,
        daig: Daig,
        memo: MemoTable,
        domain: AbstractDomain,
        builder: DaigBuilder,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
    ) -> None:
        self.daig = daig
        self.memo = memo
        self.domain = domain
        self.builder = builder
        self.call_transfer = call_transfer
        self.stats = QueryStats()

    # -- the query judgment ------------------------------------------------------------

    def query(self, name: Name) -> Any:
        """Request the value of cell ``name``, computing dependencies on demand.

        The evaluation is a depth-first walk over the demanded sub-DAIG with
        an explicit stack; at every step the stack's top is the judgment
        currently being derived and the stack below it is the demand path
        that led there.
        """
        daig = self.daig
        if daig.has_value(name):
            self.stats.cells_reused += 1
            return daig.value(name)
        unrollings: Dict[Name, int] = {}
        stack: List[Name] = [name]
        on_path: Set[Name] = {name}
        # Which demanding cell caused each computation, so that input reads
        # count as Q-Reuse exactly as in the recursive judgment: every
        # demanded read of a cell is a reuse unless this very demand is the
        # one that computed it.
        pushed_by: Dict[Name, Name] = {}
        while stack:
            current = stack[-1]
            if daig.has_value(current):
                # Computed while pending (shared input of an earlier sibling).
                stack.pop()
                on_path.discard(current)
                continue
            comp = daig.defining(current)
            if comp is None:
                if current != name and current not in daig.refs:
                    # Removed mid-flight by a reentrant call transfer (loop
                    # rollback); restart the walk from the root.
                    if name not in daig.refs:
                        raise StaleDemandError(
                            "root cell %s vanished during evaluation" % (name,))
                    stack = [name]
                    on_path = {name}
                    pushed_by.clear()
                    continue
                raise IllFormedDaigError(
                    "query for undefined empty cell %s" % (current,))
            pending = next(
                (src for src in comp.srcs if not daig.has_value(src)), None)
            if pending is not None:
                if pending in on_path:
                    raise IllFormedDaigError(
                        "dependency cycle through %s" % (pending,))
                stack.append(pending)
                on_path.add(pending)
                pushed_by[pending] = current
                continue
            self._count_input_reuse(current, comp, pushed_by)
            if comp.func == FIX:
                self._step_fix(current, comp, unrollings)
                continue  # either converged (valued) or unrolled (new inputs)
            args = tuple(daig.value(src) for src in comp.srcs)
            value = self._evaluate(comp, args)
            if (current not in daig.refs
                    or daig.defining(current) != comp
                    or not all(daig.has_value(src) for src in comp.srcs)):
                # A call transfer may re-enter the interprocedural engine,
                # which can dirty cells of *this* DAIG (a callee summary
                # changed) while the transfer was evaluating — possibly
                # rolling back a loop the demand path ran through.  The value
                # just computed is stale; discard it and restart the walk
                # from the root (everything already committed keeps its
                # value, so only the invalidated suffix is re-derived).
                if name not in daig.refs:
                    raise StaleDemandError(
                        "root cell %s vanished during evaluation" % (name,))
                stack = [name]
                on_path = {name}
                pushed_by.clear()
                continue
            daig.set_value(current, value)
            self.stats.cells_computed += 1
            stack.pop()
            on_path.discard(current)
        return daig.value(name)

    def _count_input_reuse(self, current: Name, comp: Computation,
                           pushed_by: Dict[Name, Name]) -> None:
        """Count Q-Reuse for ``current``'s input reads.

        An input read is a reuse when the cell already held a value before
        ``current`` demanded it — i.e. it was filled by an earlier query, or
        computed during this walk on behalf of a *different* demander.  An
        input ``current`` itself pushed was just counted as computed, so the
        attribution is consumed to keep later fix re-reads counting as reuse.
        """
        for src in comp.srcs:
            if pushed_by.get(src) is current:
                del pushed_by[src]
            else:
                self.stats.cells_reused += 1

    def _step_fix(self, name: Name, comp: Computation,
                  unrollings: Dict[Name, int]) -> None:
        """One Q-Loop step for a ``fix`` cell whose iterates are available.

        Writes the fixed point into the cell on convergence
        (Q-Loop-Converge); otherwise unrolls the loop by one iteration
        (Q-Loop-Unroll), replacing the cell's defining computation so the
        caller's next look at the cell demands the new greatest iterate.
        """
        first = self.daig.value(comp.srcs[0])
        second = self.daig.value(comp.srcs[1])
        # Interned states make the common converged case a pointer check.
        if first is second or self.domain.equal(first, second):
            self.daig.set_value(name, second)
            self.stats.cells_computed += 1
            return
        count = unrollings.get(name, 0) + 1
        if count > MAX_UNROLLINGS:
            raise IllFormedDaigError(
                "loop at head %d did not converge within %d demanded unrollings"
                % (name.loc, MAX_UNROLLINGS))
        unrollings[name] = count
        self.stats.unrollings += 1
        self.builder.unroll(self.daig, name.loc, dict(name.iters))
        if self.daig.defining(name) is None:
            raise IllFormedDaigError("fix cell lost its computation: %s" % (name,))

    def _evaluate(self, comp: Computation, args: Tuple[Any, ...]) -> Any:
        is_call = comp.func == TRANSFER and isinstance(args[0], A.CallStmt)
        if not is_call:
            found, cached = self.memo.lookup(comp.func, args)
            if found:
                return cached
        value = self._apply(comp.func, args,
                            site=comp.srcs[0] if is_call else None)
        if not is_call:
            self.memo.store(comp.func, args, value)
        return value

    def _apply(self, func: str, args: Tuple[Any, ...],
               site: Optional[Name] = None) -> Any:
        if func == TRANSFER:
            stmt, state = args
            if isinstance(stmt, A.CallStmt) and self.call_transfer is not None:
                self.stats.transfers += 1
                if getattr(self.call_transfer, "accepts_site", False):
                    # Site-aware hook: also receives the statement *cell*
                    # naming the call site, so the interprocedural engine can
                    # index entry-state contributions per call site.
                    return self.call_transfer(stmt, state, site)
                return self.call_transfer(stmt, state)
            self.stats.transfers += 1
            return self.domain.transfer(stmt, state)
        if func == JOIN:
            self.stats.joins += 1
            result = args[0]
            for value in args[1:]:
                result = self.domain.join(result, value)
            return result
        if func == WIDEN:
            self.stats.widens += 1
            return self.domain.widen(args[0], args[1])
        raise IllFormedDaigError("cannot apply function %r" % (func,))
