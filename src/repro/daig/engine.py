"""The demanded-abstract-interpretation engine for a single procedure.

:class:`DaigEngine` is the user-facing object tying everything together: it
owns a CFG, the DAIG reifying its abstract interpretation, and the auxiliary
memo table, and it exposes the two interaction modes of the paper —
*queries* ("what is the abstract state at this location?") and *edits*
("this statement was inserted / replaced / deleted") — with fine-grained
reuse across both.

Client queries are phrased in terms of program locations; the engine maps
them to cell names, forcing loop fixed points to converge (demanded
unrolling) as needed and returning the invariant the batch interpreter would
compute (Theorem 6.1).  Query evaluation is iterative (an explicit worklist
in :mod:`repro.daig.query`), so demand chains of arbitrary depth run at the
interpreter's default recursion limit.

Program edits go through the CFG's structural edit operations; the engine
then *splices* the DAIG in place (:mod:`repro.daig.splice`): a structural
snapshot taken before the edit is diffed against the new CFG, only the
locations and loops whose encoding changed are re-encoded, and everything
downstream of the changed region is dirtied (rules E-Commit / E-Propagate /
E-Loop), to be recomputed lazily on the next query.  Consecutive edits can
be coalesced into a single splice with :meth:`DaigEngine.batch_edits`.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, CfgEdge, Loc
from .build import DaigBuilder
from .edit import write_cell
from .memo import MemoTable
from .names import Name, stmt_name
from .query import QueryEvaluator, QueryStats
from .splice import SpliceReport, StructureSnapshot, splice


class EditStats:
    """Counters describing the structural-edit work an engine performed."""

    def __init__(self) -> None:
        self.edits = 0
        self.splices = 0
        self.cells_removed = 0
        self.cells_added = 0
        self.cells_dirtied = 0
        self.last_report: Optional[SpliceReport] = None

    def record(self, report: SpliceReport) -> None:
        self.splices += 1
        self.cells_removed += report.cells_removed
        self.cells_added += report.cells_added
        self.cells_dirtied += report.cells_dirtied
        self.last_report = report

    def as_dict(self) -> Dict[str, int]:
        return {
            "edits": self.edits,
            "splices": self.splices,
            "spliced_cells_removed": self.cells_removed,
            "spliced_cells_added": self.cells_added,
            "spliced_cells_dirtied": self.cells_dirtied,
        }


class DaigEngine:
    """Incremental, demand-driven abstract interpretation of one procedure."""

    def __init__(
        self,
        cfg: Cfg,
        domain: AbstractDomain,
        memo: Optional[MemoTable] = None,
        entry_state: Optional[Any] = None,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
    ) -> None:
        self.cfg = cfg
        self.domain = domain
        self.memo = memo if memo is not None else MemoTable()
        self.call_transfer = call_transfer
        self._entry_state = entry_state
        self.builder = DaigBuilder(cfg, domain, entry_state)
        self.daig = self.builder.build()
        self.evaluator = QueryEvaluator(
            self.daig, self.memo, domain, self.builder, call_transfer)
        self.edit_stats = EditStats()
        self._batch_snapshot: Optional[StructureSnapshot] = None

    # -- introspection -------------------------------------------------------------

    @property
    def stats(self) -> QueryStats:
        return self.evaluator.stats

    @property
    def edits_applied(self) -> int:
        return self.edit_stats.edits

    def size(self) -> Tuple[int, int]:
        """``(cells, computations)`` of the current DAIG."""
        return self.daig.size()

    # -- queries ---------------------------------------------------------------------

    def query_cell(self, name: Name) -> Any:
        """Query an arbitrary cell by name (the raw Fig. 8 judgment)."""
        self._flush_batch()
        return self.evaluator.query(name)

    def query_location(self, loc: Loc) -> Any:
        """The fixed-point invariant at ``loc`` (demanded, with reuse).

        For locations inside loops this forces the enclosing loops' demanded
        fixed points to converge and returns the abstract state computed from
        the final iterate, which equals the classical invariant.
        """
        self._flush_batch()
        if loc not in self.cfg.reachable_locations():
            return self.domain.bottom()
        heads = self.cfg.containing_loop_heads(loc)
        overrides: Dict[Loc, int] = {}
        for head in heads:
            self._ensure_converged(head, overrides)
            comp = self.daig.defining(self.builder.fix_name(head, overrides))
            overrides[head] = comp.srcs[0].iteration_of(head)
        if loc in self.cfg.loop_heads():
            return self.evaluator.query(self.builder.fix_name(loc, overrides))
        return self.evaluator.query(self.builder.state_name(loc, overrides))

    def query_exit(self) -> Any:
        """The invariant at the procedure's exit location."""
        return self.query_location(self.cfg.exit)

    def query_all(self) -> Dict[Loc, Any]:
        """Invariants at every reachable location (exhaustive evaluation)."""
        return {loc: self.query_location(loc)
                for loc in sorted(self.cfg.reachable_locations())}

    def _ensure_converged(self, head: Loc, overrides: Dict[Loc, int]) -> None:
        """Make sure the loop at ``head`` has converged iterates available.

        A fixed-point value carried over from before an edit is still valid,
        but the iterate cells it was derived from may have been rolled back;
        queries *inside* the loop body need those iterates, so in that case
        the cached fixed point is dropped (always sound) and recomputed.
        """
        fix_cell = self.builder.fix_name(head, overrides)
        comp = self.daig.defining(fix_cell)
        if comp is None:
            raise KeyError("no loop structure for head %d" % head)
        first, second = comp.srcs
        if (self.daig.has_value(first) and self.daig.has_value(second)
                and self.domain.equal(self.daig.value(first),
                                      self.daig.value(second))):
            self.evaluator.query(fix_cell)
            return
        if self.daig.has_value(fix_cell):
            self.daig.clear_value(fix_cell)
        self.evaluator.query(fix_cell)

    # -- faithful cell-level edits (Fig. 9) ----------------------------------------------

    def write_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace a statement *in place* through the Fig. 9 edit judgment.

        Only supported when the edit does not re-index the destination's
        incoming edges (i.e. the destination is not a join point); the
        general case goes through :meth:`replace_statement`.
        """
        self._flush_batch()
        indexed = self.cfg.fwd_edges_to(edge.dst)
        index = 0
        for i, candidate in indexed:
            if candidate == edge:
                index = i if len(indexed) > 1 else 0
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        name = stmt_name(edge.src, edge.dst, index)
        write_cell(self.daig, self.builder, name, stmt)
        self.edit_stats.edits += 1
        return new_edge

    # -- structural edits -------------------------------------------------------------------

    def replace_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace the statement labelling ``edge`` and re-splice the DAIG."""
        snapshot = self._begin_structural_edit()
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        self._finish_structural_edit(snapshot)
        return new_edge

    def delete_statement(self, edge: CfgEdge) -> CfgEdge:
        """Delete a statement (replace it with ``skip``), as in Lemma B.2."""
        snapshot = self._begin_structural_edit()
        new_edge = self.cfg.delete_edge_statement(edge)
        self._finish_structural_edit(snapshot)
        return new_edge

    def insert_statement_after(self, loc: Loc, stmt: A.AtomicStmt) -> Loc:
        """Insert a single statement after ``loc``."""
        snapshot = self._begin_structural_edit()
        cont = self.cfg.insert_statement_after(loc, stmt)
        self._finish_structural_edit(snapshot)
        return cont

    def insert_conditional_after(
        self,
        loc: Loc,
        cond: A.Expr,
        then_stmts: Sequence[A.AtomicStmt],
        else_stmts: Sequence[A.AtomicStmt] = (),
    ) -> Loc:
        """Insert an if-then-else after ``loc``."""
        snapshot = self._begin_structural_edit()
        cont = self.cfg.insert_conditional_after(loc, cond, then_stmts, else_stmts)
        self._finish_structural_edit(snapshot)
        return cont

    def insert_loop_after(
        self,
        loc: Loc,
        cond: A.Expr,
        body_stmts: Sequence[A.AtomicStmt],
    ) -> Loc:
        """Insert a while loop after ``loc``."""
        snapshot = self._begin_structural_edit()
        cont = self.cfg.insert_loop_after(loc, cond, body_stmts)
        self._finish_structural_edit(snapshot)
        return cont

    def set_entry_state(self, state: Any) -> None:
        """Change the procedure's entry abstract state (interprocedural use)."""
        self._flush_batch()
        self._entry_state = state
        self.builder.entry_state = state
        entry_name = self.builder.state_name(self.cfg.entry, {})
        write_cell(self.daig, self.builder, entry_name, state)

    # -- structure synchronization ---------------------------------------------------------

    @contextmanager
    def batch_edits(self) -> Iterator["DaigEngine"]:
        """Coalesce consecutive structural edits into a single splice.

        Within the ``with`` block, the structural edit methods mutate only
        the CFG; the DAIG is spliced once, against the pre-batch snapshot,
        when the block exits.  A query (or cell-level edit) issued inside
        the block first *flushes* the batch — splicing the edits so far and
        starting a fresh snapshot — so mid-batch observations are always
        up to date; only query-free edit runs coalesce into one splice.
        Re-entrant uses nest into the outermost batch.
        """
        if self._batch_snapshot is not None:
            yield self  # already inside a batch: nest into it
            return
        self._batch_snapshot = StructureSnapshot.capture(self.cfg)
        try:
            yield self
        except BaseException as exc:
            # The CFG edits made before the failure are real; splice so the
            # DAIG stays in sync with them, then let the caller's exception
            # propagate.  If the splice itself fails (the block died with
            # the CFG in a rejectable state), chain it onto the original
            # instead of silently replacing it.
            snapshot, self._batch_snapshot = self._batch_snapshot, None
            try:
                self._splice_structure(snapshot)
            except Exception as splice_exc:
                raise splice_exc from exc
            raise
        else:
            snapshot, self._batch_snapshot = self._batch_snapshot, None
            self._splice_structure(snapshot)

    def _flush_batch(self) -> None:
        """Splice any batched edits now, so observers see current state.

        Called by the query and cell-level-edit entry points; a no-op
        outside a batch.  The batch continues with a snapshot of the
        just-spliced structure.
        """
        if self._batch_snapshot is None:
            return
        snapshot = self._batch_snapshot
        self._batch_snapshot = None
        self._splice_structure(snapshot)
        # The splice already snapshotted the post-edit structure; continue
        # the batch from it instead of capturing the same CFG again.
        report = self.edit_stats.last_report
        if report is not None and report.snapshot is not None:
            self._batch_snapshot = report.snapshot
        else:
            self._batch_snapshot = StructureSnapshot.capture(self.cfg)

    def _begin_structural_edit(self) -> Optional[StructureSnapshot]:
        """Snapshot the CFG encoding, unless a batch already holds one."""
        if self._batch_snapshot is not None:
            return None
        return StructureSnapshot.capture(self.cfg)

    def _finish_structural_edit(self, snapshot: Optional[StructureSnapshot]) -> None:
        self.edit_stats.edits += 1
        if snapshot is not None:
            self._splice_structure(snapshot)

    def _splice_structure(self, snapshot: StructureSnapshot) -> None:
        """Splice the DAIG after CFG edits: keep clean regions, dirty the rest."""
        report = splice(self.daig, self.builder, snapshot)
        self.edit_stats.record(report)

    # -- convenience -------------------------------------------------------------------------

    def find_edges(self, src: Optional[Loc] = None) -> List[CfgEdge]:
        """All CFG edges, optionally restricted to a source location."""
        if src is None:
            return list(self.cfg.edges)
        return self.cfg.out_edges(src)

    def check_consistency(self) -> None:
        """Assert DAIG well-formedness (used heavily by the test suite)."""
        self.daig.check_well_formed()
