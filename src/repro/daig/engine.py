"""The demanded-abstract-interpretation engine for a single procedure.

:class:`DaigEngine` is the user-facing object tying everything together: it
owns a CFG, the DAIG reifying its abstract interpretation, and the auxiliary
memo table, and it exposes the two interaction modes of the paper —
*queries* ("what is the abstract state at this location?") and *edits*
("this statement was inserted / replaced / deleted") — with fine-grained
reuse across both.

Client queries are phrased in terms of program locations; the engine maps
them to cell names, forcing loop fixed points to converge (demanded
unrolling) as needed and returning the invariant the batch interpreter would
compute (Theorem 6.1).  Query evaluation is iterative (an explicit worklist
in :mod:`repro.daig.query`), so demand chains of arbitrary depth run at the
interpreter's default recursion limit.

Program edits go through the CFG's structural edit operations, which update
the CFG's derived structure *incrementally* (:mod:`repro.lang.structure`)
and report the affected region to the engine's live
:class:`~repro.daig.splice.StructureSnapshot` — captured from scratch
exactly once, at engine construction.  When the engine synchronizes (after
each edit, or once per :meth:`batch_edits` block), only the reported region
is re-signed and spliced (:func:`repro.daig.splice.splice_delta`): stale
cells are removed, dirty locations re-encoded, and everything downstream
dirtied (rules E-Commit / E-Propagate / E-Loop) for lazy recomputation.
End to end, edit latency is proportional to the edit's impacted region —
there is no O(program) pass left on the edit path.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, CfgEdge, Loc
from ..lang.structure import StructureListener
from .build import DaigBuilder
from .edit import write_cell
from .memo import MemoTable
from .names import Name, stmt_name
from .query import (ParallelQueryEvaluator, QueryEvaluator, QueryStats,
                    StaleDemandError)
from .splice import (SpliceReport, StructureSnapshot, _check_encodable,
                     splice, splice_delta)


class EditStats:
    """Counters describing the structural-edit work an engine performed.

    Besides the DAIG-side splice counters, :meth:`as_dict` folds in the
    CFG's structure-phase counters (full rebuilds vs. incremental refreshes
    vs. statement-only patches, and locations re-analyzed) and the
    snapshot-phase counters (full captures vs. entries re-signed), so the
    benchmark layer can verify that no phase does O(program) work per edit.
    """

    def __init__(self, cfg: Cfg) -> None:
        self._cfg = cfg
        self.edits = 0
        self.splices = 0
        self.cells_removed = 0
        self.cells_added = 0
        self.cells_dirtied = 0
        self.cells_shadowed = 0
        self.snapshot_full_captures = 0
        self.snapshot_locs_resigned = 0
        self.last_report: Optional[SpliceReport] = None

    def record(self, report: SpliceReport) -> None:
        self.splices += 1
        self.cells_removed += report.cells_removed
        self.cells_added += report.cells_added
        self.cells_dirtied += report.cells_dirtied
        self.cells_shadowed = report.cells_shadowed
        self.snapshot_locs_resigned += report.locs_resigned
        if report.full_capture:
            self.snapshot_full_captures += 1
        self.last_report = report

    def as_dict(self, include_structure: bool = True) -> Dict[str, int]:
        """Counters as a flat dict.

        ``include_structure=False`` omits the CFG's structure-phase counters;
        the interprocedural engine shares one CFG (and hence one structure
        cache) among every context of a procedure and folds those counters in
        once per procedure instead of once per engine.
        """
        out = {
            "edits": self.edits,
            "splices": self.splices,
            "spliced_cells_removed": self.cells_removed,
            "spliced_cells_added": self.cells_added,
            "spliced_cells_dirtied": self.cells_dirtied,
            "cells_shadowed": self.cells_shadowed,
            "snapshot_full_captures": self.snapshot_full_captures,
            "snapshot_locs_resigned": self.snapshot_locs_resigned,
        }
        if include_structure:
            out.update(self._cfg.structure_stats())
        return out


class DaigEngine:
    """Incremental, demand-driven abstract interpretation of one procedure."""

    def __init__(
        self,
        cfg: Cfg,
        domain: AbstractDomain,
        memo: Optional[MemoTable] = None,
        entry_state: Optional[Any] = None,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
        parallel_cells: Optional[int] = None,
        cutoff: bool = True,
    ) -> None:
        self.cfg = cfg
        self.domain = domain
        self.memo = memo if memo is not None else MemoTable()
        self.call_transfer = call_transfer
        self._entry_state = entry_state
        self.cutoff = cutoff
        self.builder = DaigBuilder(cfg, domain, entry_state)
        self.daig = self.builder.build()
        if parallel_cells is not None and parallel_cells < 1:
            raise ValueError("parallel_cells must be positive")
        if parallel_cells is not None and parallel_cells > 1:
            self.evaluator: QueryEvaluator = ParallelQueryEvaluator(
                self.daig, self.memo, domain, self.builder, call_transfer,
                workers=parallel_cells, cutoff=cutoff)
        else:
            self.evaluator = QueryEvaluator(
                self.daig, self.memo, domain, self.builder, call_transfer,
                cutoff=cutoff)
        self.edit_stats = EditStats(cfg)
        # The live structure snapshot: captured from scratch exactly once,
        # then updated in place over each edit's affected region.
        self._snapshot = StructureSnapshot.capture(cfg)
        self._listener = StructureListener()
        cfg.add_structure_listener(self._listener)
        self._batch_depth = 0
        self._cfg_dirty = False
        self._phase = {"snapshot": 0.0, "splice": 0.0, "query": 0.0,
                       "dispatch": 0.0, "certify": 0.0}
        #: Optional consumer of statement-cell deltas: called with
        #: ``(removed_keys, present_key_to_stmt)`` after every splice and
        #: direct statement write, so clients indexing statements (the
        #: interprocedural call-site index) stay in sync at O(affected
        #: region) cost.  Keys are ``(src, dst, index)`` triples.
        self.stmt_change_listener: Optional[
            Callable[[Any, Any], None]] = None

    def _values_equal(self, first: Any, second: Any) -> bool:
        # Interned states make the common case a pointer comparison.
        return first is second or self.domain.equal(first, second)

    # -- introspection -------------------------------------------------------------

    @property
    def stats(self) -> QueryStats:
        return self.evaluator.stats

    @property
    def edits_applied(self) -> int:
        return self.edit_stats.edits

    def size(self) -> Tuple[int, int]:
        """``(cells, computations)`` of the current DAIG."""
        return self.daig.size()

    def stmt_cells(self) -> Dict[Tuple[int, int, int], A.AtomicStmt]:
        """The DAIG's statement cells, keyed by ``(src, dst, index)``.

        A copy of the live snapshot's statement table — consumers indexing
        statements take this once at construction and then follow the
        incremental deltas delivered to ``stmt_change_listener``.
        """
        return dict(self._snapshot.stmt_cells)

    def phase_seconds(self, include_structure: bool = True) -> Dict[str, float]:
        """Cumulative wall-clock time per engine phase.

        ``structure`` — the CFG's incremental dominator/loop maintenance;
        ``snapshot`` — encoding-signature maintenance; ``splice`` — DAIG
        cell surgery and dirtying; ``query`` — demanded evaluation;
        ``dispatch`` / ``certify`` — the parallel evaluator's batch
        dispatch time and the coordinator's certification time (both zero
        in sequential mode).

        ``include_structure=False`` omits the CFG's structure phase for
        callers that share one CFG among several engines and account for its
        time once per procedure.
        """
        out = dict(self._phase)
        out["dispatch"] += getattr(self.evaluator, "dispatch_seconds", 0.0)
        if include_structure:
            out["structure"] = self.cfg.structure_seconds()
        return out

    # -- queries ---------------------------------------------------------------------

    def query_cell(self, name: Name) -> Any:
        """Query an arbitrary cell by name (the raw Fig. 8 judgment)."""
        self._sync_structure()
        started = time.perf_counter()
        try:
            return self.evaluator.query(name)
        finally:
            self._phase["query"] += time.perf_counter() - started

    def query_location(self, loc: Loc) -> Any:
        """The fixed-point invariant at ``loc`` (demanded, with reuse).

        For locations inside loops this forces the enclosing loops' demanded
        fixed points to converge and returns the abstract state computed from
        the final iterate, which equals the classical invariant.
        """
        self._sync_structure()
        started = time.perf_counter()
        try:
            if loc not in self.cfg.reachable_locations():
                return self.domain.bottom()
            # A reentrant call transfer (interprocedural summary update) can
            # roll back a loop between converging it and reading the demanded
            # iterate; the whole derivation is simply retried against the
            # post-rollback encoding.  Summary widening converges, so the
            # retry count is bounded in practice; the cap guards domain bugs.
            for _attempt in range(64):
                try:
                    heads = self.cfg.containing_loop_heads(loc)
                    overrides: Dict[Loc, int] = {}
                    for head in heads:
                        self._ensure_converged(head, overrides)
                        comp = self.daig.defining(
                            self.builder.fix_name(head, overrides))
                        overrides[head] = comp.srcs[0].iteration_of(head)
                    if self.cfg.is_loop_head(loc):
                        return self.evaluator.query(
                            self.builder.fix_name(loc, overrides))
                    return self.evaluator.query(
                        self.builder.state_name(loc, overrides))
                except StaleDemandError:
                    continue
            raise StaleDemandError(
                "query at location %d kept being invalidated" % (loc,))
        finally:
            self._phase["query"] += time.perf_counter() - started

    def query_exit(self) -> Any:
        """The invariant at the procedure's exit location."""
        return self.query_location(self.cfg.exit)

    def query_all(self) -> Dict[Loc, Any]:
        """Invariants at every reachable location (exhaustive evaluation)."""
        return {loc: self.query_location(loc)
                for loc in sorted(self.cfg.reachable_locations())}

    def _ensure_converged(self, head: Loc, overrides: Dict[Loc, int]) -> None:
        """Make sure the loop at ``head`` has converged iterates available.

        A fixed-point value carried over from before an edit is still valid,
        but the iterate cells it was derived from may have been rolled back;
        queries *inside* the loop body need those iterates, so in that case
        the cached fixed point is dropped (always sound) and recomputed.
        """
        fix_cell = self.builder.fix_name(head, overrides)
        comp = self.daig.defining(fix_cell)
        if comp is None:
            raise KeyError("no loop structure for head %d" % head)
        first, second = comp.srcs
        if (self.daig.has_value(first) and self.daig.has_value(second)
                and self._values_equal(self.daig.value(first),
                                       self.daig.value(second))):
            self.evaluator.query(fix_cell)
            return
        if self.daig.has_value(fix_cell):
            self.daig.clear_value(fix_cell)
        self.evaluator.query(fix_cell)

    # -- faithful cell-level edits (Fig. 9) ----------------------------------------------

    def write_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace a statement *in place* through the Fig. 9 edit judgment.

        Only supported when the edit does not re-index the destination's
        incoming edges (i.e. the destination is not a join point); the
        general case goes through :meth:`replace_statement`.
        """
        self._sync_structure()
        indexed = self.cfg.fwd_edges_to(edge.dst)
        index = 0
        for i, candidate in indexed:
            if candidate == edge:
                index = i if len(indexed) > 1 else 0
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        name = stmt_name(edge.src, edge.dst, index)
        write_cell(self.daig, self.builder, name, stmt)
        # Keep the live snapshot in step so the next structural sync does
        # not spuriously re-dirty the already-written cell.
        self._snapshot.set_stmt((edge.src, edge.dst, index), stmt)
        self.edit_stats.edits += 1
        if self.stmt_change_listener is not None:
            self.stmt_change_listener(set(), {(edge.src, edge.dst, index): stmt})
        return new_edge

    # -- structural edits -------------------------------------------------------------------

    def replace_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace the statement labelling ``edge`` and re-splice the DAIG.

        A statement-only edit: the CFG patches its structure cache in place
        (no dominator/loop recomputation) and the sync re-signs exactly the
        edge's destination.
        """
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        self._note_edit()
        return new_edge

    def delete_statement(self, edge: CfgEdge) -> CfgEdge:
        """Delete a statement (replace it with ``skip``), as in Lemma B.2."""
        new_edge = self.cfg.delete_edge_statement(edge)
        self._note_edit()
        return new_edge

    def insert_statement_after(self, loc: Loc, stmt: A.AtomicStmt) -> Loc:
        """Insert a single statement after ``loc``."""
        cont = self.cfg.insert_statement_after(loc, stmt)
        self._note_edit()
        return cont

    def insert_conditional_after(
        self,
        loc: Loc,
        cond: A.Expr,
        then_stmts: Sequence[A.AtomicStmt],
        else_stmts: Sequence[A.AtomicStmt] = (),
    ) -> Loc:
        """Insert an if-then-else after ``loc``."""
        cont = self.cfg.insert_conditional_after(loc, cond, then_stmts, else_stmts)
        self._note_edit()
        return cont

    def insert_loop_after(
        self,
        loc: Loc,
        cond: A.Expr,
        body_stmts: Sequence[A.AtomicStmt],
    ) -> Loc:
        """Insert a while loop after ``loc``."""
        cont = self.cfg.insert_loop_after(loc, cond, body_stmts)
        self._note_edit()
        return cont

    def set_entry_state(self, state: Any) -> None:
        """Change the procedure's entry abstract state (interprocedural use)."""
        self._sync_structure()
        self._entry_state = state
        self.builder.entry_state = state
        entry_name = self.builder.state_name(self.cfg.entry, {})
        write_cell(self.daig, self.builder, entry_name, state)

    # -- structure synchronization ---------------------------------------------------------

    @contextmanager
    def batch_edits(self) -> Iterator["DaigEngine"]:
        """Coalesce consecutive structural edits into a single splice.

        Within the ``with`` block, the structural edit methods mutate only
        the CFG; the DAIG is spliced once, over the union of the batch's
        affected regions, when the block exits.  A query (or cell-level
        edit) issued inside the block first *synchronizes* — splicing the
        edits so far — so mid-batch observations are always up to date;
        only query-free edit runs coalesce into one splice.  Re-entrant
        uses nest into the outermost batch.
        """
        if self._batch_depth > 0:
            yield self  # already inside a batch: nest into it
            return
        self._batch_depth += 1
        try:
            yield self
        except BaseException as exc:
            # The CFG edits made before the failure are real; splice so the
            # DAIG stays in sync with them, then let the caller's exception
            # propagate.  If the splice itself fails (the block died with
            # the CFG in a rejectable state), chain it onto the original
            # instead of silently replacing it.
            self._batch_depth -= 1
            try:
                self._sync_structure()
            except Exception as splice_exc:
                raise splice_exc from exc
            raise
        else:
            self._batch_depth -= 1
            self._sync_structure()

    def _note_edit(self) -> None:
        self.edit_stats.edits += 1
        self._cfg_dirty = True
        if self._batch_depth == 0:
            self._sync_structure()

    def resync(self) -> None:
        """Splice this DAIG after a *sibling* engine edited the shared CFG.

        The interprocedural engine keeps one CFG per procedure shared by
        every (procedure, context) engine; an edit is applied to the CFG
        once, through one engine, and the remaining engines catch up here —
        their structure listeners already hold the affected region, so the
        cost is one delta splice over that region, not a rebuild.
        """
        self._cfg_dirty = True
        self._sync_structure()

    def _sync_structure(self) -> None:
        """Splice the DAIG over the affected region of edits since the last
        sync.  A no-op when no structural edit is outstanding.

        Validity (reducibility, loop exits, entry outside loops) is checked
        before any snapshot or DAIG mutation: a rejected edit leaves the
        engine's caches intact and the accumulated region pending, so the
        caller can repair the CFG with further edits and re-sync.
        """
        if not self._cfg_dirty:
            return
        self.cfg.ensure_structure()
        # Must precede the listener drain: a rejected edit keeps its region
        # pending so a repairing edit can re-sync.
        _check_encodable(self.builder)
        self._cfg_dirty = False
        full, sig_suspects, head_suspects = self._listener.drain()
        if full:
            report = splice(self.daig, self.builder, self._snapshot)
            self._snapshot = report.snapshot
        else:
            report = splice_delta(self.daig, self.builder, self._snapshot,
                                  sig_suspects, head_suspects)
        self.edit_stats.record(report)
        self._phase["snapshot"] += report.snapshot_seconds
        self._phase["splice"] += report.splice_seconds
        if self.stmt_change_listener is not None and (
                report.stmt_removed or report.stmt_present):
            self.stmt_change_listener(report.stmt_removed, report.stmt_present)

    # -- convenience -------------------------------------------------------------------------

    def find_edges(self, src: Optional[Loc] = None) -> List[CfgEdge]:
        """All CFG edges, optionally restricted to a source location."""
        if src is None:
            return list(self.cfg.edges)
        return self.cfg.out_edges(src)

    def check_consistency(self) -> None:
        """Assert DAIG well-formedness (used heavily by the test suite)."""
        self.daig.check_well_formed()
