"""The demanded-abstract-interpretation engine for a single procedure.

:class:`DaigEngine` is the user-facing object tying everything together: it
owns a CFG, the DAIG reifying its abstract interpretation, and the auxiliary
memo table, and it exposes the two interaction modes of the paper —
*queries* ("what is the abstract state at this location?") and *edits*
("this statement was inserted / replaced / deleted") — with fine-grained
reuse across both.

Client queries are phrased in terms of program locations; the engine maps
them to cell names, forcing loop fixed points to converge (demanded
unrolling) as needed and returning the invariant the batch interpreter would
compute (Theorem 6.1).

Program edits go through the CFG's structural edit operations; the engine
then splices the DAIG: the new initial structure is built, every cell whose
name and defining computation are unchanged keeps its previously computed
value, and everything downstream of a changed statement or changed structure
is dirtied (rules E-Commit / E-Propagate / E-Loop), to be recomputed lazily
on the next query.
"""

from __future__ import annotations

import sys
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..domains.base import AbstractDomain
from ..lang import ast as A
from ..lang.cfg import Cfg, CfgEdge, Loc
from .build import DaigBuilder
from .edit import write_cell
from .graph import Daig, FIX, TRANSFER
from .memo import MemoTable
from .names import Name, TYPE_STMT, stmt_name
from .query import QueryEvaluator, QueryStats

#: Deep demand chains recurse through Python frames; make sure the
#: interpreter allows programs of the size the synthetic workload produces.
_MIN_RECURSION_LIMIT = 50_000


class DaigEngine:
    """Incremental, demand-driven abstract interpretation of one procedure."""

    def __init__(
        self,
        cfg: Cfg,
        domain: AbstractDomain,
        memo: Optional[MemoTable] = None,
        entry_state: Optional[Any] = None,
        call_transfer: Optional[Callable[[A.CallStmt, Any], Any]] = None,
    ) -> None:
        if sys.getrecursionlimit() < _MIN_RECURSION_LIMIT:
            sys.setrecursionlimit(_MIN_RECURSION_LIMIT)
        self.cfg = cfg
        self.domain = domain
        self.memo = memo if memo is not None else MemoTable()
        self.call_transfer = call_transfer
        self._entry_state = entry_state
        self.builder = DaigBuilder(cfg, domain, entry_state)
        self.daig = self.builder.build()
        self.evaluator = QueryEvaluator(
            self.daig, self.memo, domain, self.builder, call_transfer)
        self.edits_applied = 0

    # -- introspection -------------------------------------------------------------

    @property
    def stats(self) -> QueryStats:
        return self.evaluator.stats

    def size(self) -> Tuple[int, int]:
        """``(cells, computations)`` of the current DAIG."""
        return self.daig.size()

    # -- queries ---------------------------------------------------------------------

    def query_cell(self, name: Name) -> Any:
        """Query an arbitrary cell by name (the raw Fig. 8 judgment)."""
        return self.evaluator.query(name)

    def query_location(self, loc: Loc) -> Any:
        """The fixed-point invariant at ``loc`` (demanded, with reuse).

        For locations inside loops this forces the enclosing loops' demanded
        fixed points to converge and returns the abstract state computed from
        the final iterate, which equals the classical invariant.
        """
        if loc not in self.cfg.reachable_locations():
            return self.domain.bottom()
        heads = self.cfg.containing_loop_heads(loc)
        overrides: Dict[Loc, int] = {}
        for head in heads:
            self._ensure_converged(head, overrides)
            comp = self.daig.defining(self.builder.fix_name(head, overrides))
            overrides[head] = comp.srcs[0].iteration_of(head)
        if loc in self.cfg.loop_heads():
            return self.evaluator.query(self.builder.fix_name(loc, overrides))
        return self.evaluator.query(self.builder.state_name(loc, overrides))

    def query_exit(self) -> Any:
        """The invariant at the procedure's exit location."""
        return self.query_location(self.cfg.exit)

    def query_all(self) -> Dict[Loc, Any]:
        """Invariants at every reachable location (exhaustive evaluation)."""
        return {loc: self.query_location(loc)
                for loc in sorted(self.cfg.reachable_locations())}

    def _ensure_converged(self, head: Loc, overrides: Dict[Loc, int]) -> None:
        """Make sure the loop at ``head`` has converged iterates available.

        A fixed-point value carried over from before an edit is still valid,
        but the iterate cells it was derived from may have been rolled back;
        queries *inside* the loop body need those iterates, so in that case
        the cached fixed point is dropped (always sound) and recomputed.
        """
        fix_cell = self.builder.fix_name(head, overrides)
        comp = self.daig.defining(fix_cell)
        if comp is None:
            raise KeyError("no loop structure for head %d" % head)
        first, second = comp.srcs
        if (self.daig.has_value(first) and self.daig.has_value(second)
                and self.domain.equal(self.daig.value(first),
                                      self.daig.value(second))):
            self.evaluator.query(fix_cell)
            return
        if self.daig.has_value(fix_cell):
            self.daig.clear_value(fix_cell)
        self.evaluator.query(fix_cell)

    # -- faithful cell-level edits (Fig. 9) ----------------------------------------------

    def write_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace a statement *in place* through the Fig. 9 edit judgment.

        Only supported when the edit does not re-index the destination's
        incoming edges (i.e. the destination is not a join point); the
        general case goes through :meth:`replace_statement`.
        """
        indexed = self.cfg.fwd_edges_to(edge.dst)
        index = 0
        for i, candidate in indexed:
            if candidate == edge:
                index = i if len(indexed) > 1 else 0
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        name = stmt_name(edge.src, edge.dst, index)
        write_cell(self.daig, self.builder, name, stmt)
        self.edits_applied += 1
        return new_edge

    # -- structural edits -------------------------------------------------------------------

    def replace_statement(self, edge: CfgEdge, stmt: A.AtomicStmt) -> CfgEdge:
        """Replace the statement labelling ``edge`` and re-sync the DAIG."""
        new_edge = self.cfg.replace_edge_statement(edge, stmt)
        self._sync_structure()
        return new_edge

    def delete_statement(self, edge: CfgEdge) -> CfgEdge:
        """Delete a statement (replace it with ``skip``), as in Lemma B.2."""
        new_edge = self.cfg.delete_edge_statement(edge)
        self._sync_structure()
        return new_edge

    def insert_statement_after(self, loc: Loc, stmt: A.AtomicStmt) -> Loc:
        """Insert a single statement after ``loc``."""
        cont = self.cfg.insert_statement_after(loc, stmt)
        self._sync_structure()
        return cont

    def insert_conditional_after(
        self,
        loc: Loc,
        cond: A.Expr,
        then_stmts: Sequence[A.AtomicStmt],
        else_stmts: Sequence[A.AtomicStmt] = (),
    ) -> Loc:
        """Insert an if-then-else after ``loc``."""
        cont = self.cfg.insert_conditional_after(loc, cond, then_stmts, else_stmts)
        self._sync_structure()
        return cont

    def insert_loop_after(
        self,
        loc: Loc,
        cond: A.Expr,
        body_stmts: Sequence[A.AtomicStmt],
    ) -> Loc:
        """Insert a while loop after ``loc``."""
        cont = self.cfg.insert_loop_after(loc, cond, body_stmts)
        self._sync_structure()
        return cont

    def set_entry_state(self, state: Any) -> None:
        """Change the procedure's entry abstract state (interprocedural use)."""
        self._entry_state = state
        self.builder.entry_state = state
        entry_name = self.builder.state_name(self.cfg.entry, {})
        write_cell(self.daig, self.builder, entry_name, state)

    # -- structure synchronization ---------------------------------------------------------

    def _sync_structure(self) -> None:
        """Splice the DAIG after a CFG edit: keep clean cells, dirty the rest."""
        self.edits_applied += 1
        old = self.daig
        builder = DaigBuilder(self.cfg, self.domain, self._entry_state)
        new = builder.build()
        seeds: List[Name] = []
        for name in new.refs:
            if name.cell_type() == TYPE_STMT:
                if name not in old.refs or not old.has_value(name) \
                        or old.value(name) != new.value(name):
                    seeds.append(name)
                continue
            new_comp = new.defining(name)
            if new_comp is None:
                # The entry cell: its value is φ0 in both versions.
                continue
            old_comp = old.defining(name) if name in old.refs else None
            if old_comp is None or old_comp.func != new_comp.func:
                seeds.append(name)
                continue
            if new_comp.func != FIX and old_comp.srcs != new_comp.srcs:
                seeds.append(name)
                continue
            if old.has_value(name):
                new.set_value(name, old.value(name))
        for name in new.forward_reachable(seeds):
            if name.cell_type() != TYPE_STMT:
                new.clear_value(name)
        self.daig = new
        self.builder = builder
        self.evaluator.daig = new
        self.evaluator.builder = builder

    # -- convenience -------------------------------------------------------------------------

    def find_edges(self, src: Optional[Loc] = None) -> List[CfgEdge]:
        """All CFG edges, optionally restricted to a source location."""
        if src is None:
            return list(self.cfg.edges)
        return self.cfg.out_edges(src)

    def check_consistency(self) -> None:
        """Assert DAIG well-formedness (used heavily by the test suite)."""
        self.daig.check_well_formed()
