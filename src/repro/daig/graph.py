"""The DAIG data structure: reference cells and computation hyper-edges.

A DAIG ``D = ⟨R, C⟩`` (Fig. 6) is a set of uniquely-named reference cells
``R``, each holding a statement, an abstract state, or nothing (ε), plus a
set of computations ``C`` — labelled hyper-edges ``n ← f(n1, ..., nk)``
connecting the cells holding ``f``'s inputs to the cell receiving its
output.  The well-formedness conditions of Definition 4.1 (unique names,
unique destinations, acyclicity, well-typedness, and "empty cells have a
defining computation") are checked by :meth:`Daig.check_well_formed`, which
the property-based tests run after every query and edit (Lemma 6.1).

Beyond the paper's mathematical structure, this implementation maintains
three auxiliary indices that make incremental edits O(affected region)
instead of O(graph):

* ``dependents`` — the reverse-dependency index (src name → destinations of
  computations reading it), used by forward dirtying;
* ``anchored`` — state-typed cells grouped by the program location they
  encode, used by structural splicing to find the sub-region belonging to a
  re-encoded location without scanning all of ``refs``;
* ``iterated`` — cells grouped by the loop heads for which they carry a
  nonzero unrolling iteration, used by loop roll-back (rule E-Loop) and by
  splicing to discard a loop's demanded unrollings in one sweep.

A fourth group of side tables supports change propagation with early
cutoff: when an edit dirties a cell, its prior value is retained as a
*shadow*; during re-demand, a recomputed cell whose new value is pointer
equal to its shadow proves that everything dirtied only through it is
unchanged, so those consumers are restored from their own shadows instead
of recomputed (:mod:`repro.daig.query`).  Shadows from different edits may
coexist, so each is validated by *epochs*: ``epoch`` counts dirtying
waves, ``shadow_caps[n]`` records the epoch at which ``n``'s shadow was
captured (the cell and its inputs were mutually consistent then), and
``stamps[n]`` records the epoch of the last pointer-*change* of ``n``'s
value.  A shadow may restore its cell only when every input's last change
predates the shadow's capture — then recomputation would provably
reproduce the shadow.

:meth:`Daig.remove_region` removes a whole cell-and-computation subregion
(the counterpart of re-encoding one via
:meth:`repro.daig.build.DaigBuilder.encode_incoming`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from .names import Name, TYPE_STATE, TYPE_STMT

#: Function symbols labelling computations (the ``f`` of Fig. 6).
TRANSFER = "transfer"  # ⟦·⟧♯
JOIN = "join"          # ⊔
WIDEN = "widen"        # ∇
FIX = "fix"            # the distinguished fixed-point marker

#: Sentinel distinguishing "no value" from any held value.
_ABSENT = object()


class Computation:
    """A computation edge ``dest ← func(srcs...)``."""

    __slots__ = ("dest", "func", "srcs")

    def __init__(self, dest: Name, func: str, srcs: Tuple[Name, ...]) -> None:
        self.dest = dest
        self.func = func
        self.srcs = srcs

    def __repr__(self) -> str:
        return "%s ← %s(%s)" % (self.dest, self.func,
                                ", ".join(str(s) for s in self.srcs))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Computation):
            return NotImplemented
        return (self.dest == other.dest and self.func == other.func
                and self.srcs == other.srcs)

    def __hash__(self) -> int:
        return hash((self.dest, self.func, self.srcs))


class IllFormedDaigError(Exception):
    """Raised when a DAIG violates Definition 4.1."""


class Daig:
    """A demanded abstract interpretation graph.

    ``refs`` is the set of declared reference-cell names; ``values`` holds
    the contents of the non-empty cells; ``computations`` maps each
    destination name to its (unique) defining computation; ``dependents`` is
    the reverse index used for forward dirtying; ``anchored`` and
    ``iterated`` index state-typed cells by anchor location and by unrolled
    loop head, so splicing and roll-back touch only the affected region.
    """

    def __init__(self) -> None:
        self.refs: Set[Name] = set()
        self.values: Dict[Name, Any] = {}
        self.computations: Dict[Name, Computation] = {}
        self.dependents: Dict[Name, Set[Name]] = {}
        self.anchored: Dict[int, Set[Name]] = {}
        self.iterated: Dict[int, Set[Name]] = {}
        #: Prior values of dirtied cells (early cutoff, see module docstring).
        self.shadows: Dict[Name, Any] = {}
        #: Epoch at which each shadow was captured.
        self.shadow_caps: Dict[Name, int] = {}
        #: Epoch of the last pointer-change of each cell's value (absent = 0:
        #: never changed since the initial encoding).
        self.stamps: Dict[Name, int] = {}
        #: The dirtying-wave counter (bumped by ``dirty_forward``).
        self.epoch: int = 0
        #: Shadowed cells whose defining computation was re-encoded since the
        #: shadow was captured: their shadow is a valid *baseline* for the
        #: cutoff comparison at their own commit, but the cell itself must
        #: never be restored from it (the old value belongs to the old
        #: computation).
        self.baseline_only: Set[Name] = set()

    # -- construction ------------------------------------------------------------

    def add_ref(self, name: Name) -> None:
        if name in self.refs:
            return
        self.refs.add(name)
        if name.cell_type() != TYPE_STMT:
            self.anchored.setdefault(name.anchor(), set()).add(name)
        for head in name.iteration_heads():
            self.iterated.setdefault(head, set()).add(name)

    def add_computation(self, dest: Name, func: str, srcs: Tuple[Name, ...]) -> None:
        if dest in self.computations:
            existing = self.computations[dest]
            if existing.func == func and existing.srcs == srcs:
                return
            raise IllFormedDaigError(
                "cell %s already has a defining computation" % (dest,))
        comp = Computation(dest, func, srcs)
        self.computations[dest] = comp
        self.add_ref(dest)
        for src in srcs:
            self.add_ref(src)
            self.dependents.setdefault(src, set()).add(dest)

    def replace_computation(self, dest: Name, func: str, srcs: Tuple[Name, ...]) -> None:
        """Replace the defining computation of ``dest`` (used by unroll/roll)."""
        self.remove_computation(dest)
        self.add_computation(dest, func, srcs)

    def remove_computation(self, dest: Name) -> None:
        comp = self.computations.pop(dest, None)
        if comp is None:
            return
        for src in comp.srcs:
            dependents = self.dependents.get(src)
            if dependents is not None:
                dependents.discard(dest)
                if not dependents:
                    del self.dependents[src]

    def remove_ref(self, name: Name) -> None:
        """Remove a reference cell, its value, and its defining computation."""
        self.remove_computation(name)
        self.refs.discard(name)
        self.values.pop(name, None)
        self.shadows.pop(name, None)
        self.shadow_caps.pop(name, None)
        self.stamps.pop(name, None)
        self.baseline_only.discard(name)
        if name.cell_type() != TYPE_STMT:
            anchored = self.anchored.get(name.anchor())
            if anchored is not None:
                anchored.discard(name)
                if not anchored:
                    del self.anchored[name.anchor()]
        for head in name.iteration_heads():
            iterated = self.iterated.get(head)
            if iterated is not None:
                iterated.discard(name)
                if not iterated:
                    del self.iterated[head]
        # Dependents of this name keep their computations; callers removing a
        # region are responsible for removing those too (remove_region does).

    def remove_region(self, names: Iterable[Name]) -> int:
        """Remove a cell-and-computation subregion in one sweep.

        All computations are detached first so that the reverse-dependency
        index never points at a vanished destination, then the cells
        themselves are dropped.  Names not present are ignored, which lets
        splicing pass speculative regions.  Returns the number of cells
        actually removed.
        """
        region = [name for name in names if name in self.refs]
        for name in region:
            self.remove_computation(name)
        for name in region:
            self.remove_ref(name)
        return len(region)

    # -- cell access ---------------------------------------------------------------

    def has_value(self, name: Name) -> bool:
        return name in self.values

    def value(self, name: Name) -> Any:
        return self.values[name]

    def set_value(self, name: Name, value: Any) -> None:
        if name not in self.refs:
            raise KeyError("unknown reference cell %s" % (name,))
        # Stamp pointer-*changes* only: the last known value is the held one,
        # or the shadow while the cell is dirty.  Writing a different value
        # also retires the shadow — it is no longer a valid restore payload
        # or cutoff baseline for this cell.
        if name in self.values:
            prev = self.values[name]
        elif name in self.shadows:
            prev = self.shadows[name]
        else:
            prev = _ABSENT
        if prev is not value:
            self.stamps[name] = self.epoch
            if prev is not _ABSENT and name in self.shadows:
                del self.shadows[name]
                self.shadow_caps.pop(name, None)
                self.baseline_only.discard(name)
        self.values[name] = value

    def clear_value(self, name: Name) -> None:
        """Empty a cell, retaining its value (if any) as an early-cutoff
        shadow captured at the current epoch: the cell and its inputs are
        mutually consistent at the moment of dirtying."""
        value = self.values.pop(name, _ABSENT)
        if value is not _ABSENT:
            self.shadows[name] = value
            self.shadow_caps[name] = self.epoch
            self.baseline_only.discard(name)

    def defining(self, name: Name) -> Optional[Computation]:
        return self.computations.get(name)

    def dependents_of(self, name: Name) -> Set[Name]:
        return self.dependents.get(name, set())

    def cells_at(self, loc: int) -> Set[Name]:
        """All state-typed cells anchored at program location ``loc``."""
        return self.anchored.get(loc, set())

    def iterated_cells(self, head: int, minimum: int = 1) -> List[Name]:
        """Cells belonging to iteration >= ``minimum`` of loop ``head``."""
        return [name for name in self.iterated.get(head, ())
                if name.mentions_head_iteration(head, minimum)]

    # -- structural queries ------------------------------------------------------------

    def forward_reachable(self, seeds: Iterable[Name]) -> Set[Name]:
        """All cells transitively depending on any seed (seeds excluded)."""
        reached: Set[Name] = set()
        frontier: List[Name] = list(seeds)
        while frontier:
            name = frontier.pop()
            for dependent in self.dependents_of(name):
                if dependent not in reached:
                    reached.add(dependent)
                    frontier.append(dependent)
        return reached

    def reaches(self, source: Name, target: Name) -> bool:
        """Name reachability ``source ⇝ target`` through computations."""
        return target in self.forward_reachable([source])

    def size(self) -> Tuple[int, int]:
        """``(number of cells, number of computations)``."""
        return len(self.refs), len(self.computations)

    def state_cells(self) -> List[Name]:
        return [name for name in self.refs if name.cell_type() == TYPE_STATE]

    # -- well-formedness (Definition 4.1) ------------------------------------------------

    def check_well_formed(self) -> None:
        """Raise :class:`IllFormedDaigError` on any violation of Def. 4.1."""
        # (1) unique names: guaranteed by using a set of names.
        # (2) unique destinations: guaranteed by the computations dict.
        # (3) acyclicity.
        self._check_acyclic()
        # (4) well-typedness of computations.
        for comp in self.computations.values():
            self._check_types(comp)
        # (5) every empty reference has a defining computation.
        for name in self.refs:
            if name not in self.values and name not in self.computations:
                raise IllFormedDaigError(
                    "empty cell %s has no defining computation" % (name,))
        # All computation endpoints must be declared references.
        for comp in self.computations.values():
            for name in (comp.dest,) + comp.srcs:
                if name not in self.refs:
                    raise IllFormedDaigError(
                        "computation mentions undeclared cell %s" % (name,))

    def _check_acyclic(self) -> None:
        state: Dict[Name, int] = {}

        def successors(name: Name) -> Set[Name]:
            return self.dependents_of(name)

        for start in self.refs:
            if state.get(start, 0):
                continue
            stack: List[Tuple[Name, List[Name]]] = [(start, list(successors(start)))]
            state[start] = 1
            while stack:
                node, succs = stack[-1]
                if succs:
                    nxt = succs.pop()
                    status = state.get(nxt, 0)
                    if status == 1:
                        raise IllFormedDaigError(
                            "dependency cycle through %s" % (nxt,))
                    if status == 0:
                        state[nxt] = 1
                        stack.append((nxt, list(successors(nxt))))
                else:
                    state[node] = 2
                    stack.pop()

    def _check_types(self, comp: Computation) -> None:
        if comp.dest.cell_type() != TYPE_STATE:
            raise IllFormedDaigError(
                "computation writes to a statement cell %s" % (comp.dest,))
        if comp.func == TRANSFER:
            if len(comp.srcs) != 2 or comp.srcs[0].cell_type() != TYPE_STMT \
                    or comp.srcs[1].cell_type() != TYPE_STATE:
                raise IllFormedDaigError("ill-typed transfer %r" % (comp,))
        elif comp.func in (JOIN, WIDEN, FIX):
            if not comp.srcs or any(s.cell_type() != TYPE_STATE for s in comp.srcs):
                raise IllFormedDaigError("ill-typed %s %r" % (comp.func, comp))
            if comp.func in (WIDEN, FIX) and len(comp.srcs) != 2:
                raise IllFormedDaigError("%s must have two inputs: %r"
                                         % (comp.func, comp))
        else:
            raise IllFormedDaigError("unknown function symbol %r" % (comp.func,))

    # -- display --------------------------------------------------------------------------

    def pretty(self, max_cells: int = 200) -> str:
        lines = ["DAIG with %d cells / %d computations" % self.size()]
        for index, name in enumerate(sorted(self.refs, key=str)):
            if index >= max_cells:
                lines.append("  ...")
                break
            value = self.values.get(name, "ε")
            lines.append("  %s = %s" % (name, value))
        return "\n".join(lines)
