"""Incremental edit semantics over DAIGs (Fig. 9).

:func:`write_cell` implements the ``D ⊢ n ⇐ v ; D'`` judgment: writing a
value (or ε) to a reference cell dirties — empties — every cell that
transitively depends on it (rule E-Propagate bottoming out in E-Commit),
with the special treatment of loops required by rule E-Loop: when a loop's
iterate cells are invalidated, the loop is *rolled back* to its initial
two-iterate form and its ``fix`` computation is reset, discarding the
demanded unrollings that the edit made stale.

Cells are dirtied eagerly but recomputed lazily: nothing here re-runs any
analysis function; a later query (Fig. 8) recomputes exactly the dirty cells
it needs.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Set

from .build import DaigBuilder
from .graph import Daig, FIX
from .names import FIX as FIX_KIND
from .names import Name, STMT


class InvalidEditError(Exception):
    """Raised for edits that would violate DAIG well-formedness (E-Commit)."""


def dirty_forward(daig: Daig, builder: DaigBuilder, seeds: Iterable[Name]) -> Set[Name]:
    """Empty every cell transitively depending on the seeds.

    Returns the set of dirtied names.  Loops whose iterate chain is touched
    are rolled back to their initial two-iterate encoding (E-Loop).

    Opens a new dirtying epoch: each dirtied cell's prior value is retained
    by :meth:`~repro.daig.graph.Daig.clear_value` as an early-cutoff shadow
    stamped with this epoch, so that re-demand can stop propagating at the
    first unchanged value and restore the rest (:mod:`repro.daig.query`).
    """
    daig.epoch += 1
    dirtied = daig.forward_reachable(seeds)
    for name in dirtied:
        daig.clear_value(name)
    # E-Loop: any dirtied fix cell (equivalently, any dirtied iterate) means
    # the demanded unrollings of that loop are stale; roll the loop back.
    rolled: Set[Name] = set()
    for name in list(dirtied):
        if name.kind == FIX_KIND and name not in rolled:
            rolled.add(name)
            builder.roll(daig, name.loc, dict(name.iters))
    # Rolling may have removed cells from the dirty set; that is fine — the
    # remaining cells stay empty until demanded.
    return dirtied


def write_cell(
    daig: Daig,
    builder: DaigBuilder,
    name: Name,
    value: Any,
) -> Set[Name]:
    """Write ``value`` to cell ``name`` and dirty its dependents (Fig. 9).

    ``value`` may be ``None`` to write ε (empty the cell), which is permitted
    only for cells that have a defining computation — exactly the E-Commit
    side conditions.
    """
    if name not in daig.refs:
        raise InvalidEditError("unknown reference cell %s" % (name,))
    if value is None and daig.defining(name) is None:
        raise InvalidEditError(
            "cannot empty source cell %s: it has no defining computation" % (name,))
    if value is not None and name.kind == STMT and daig.defining(name) is not None:
        raise InvalidEditError("statement cells are never computed: %s" % (name,))
    dirtied = dirty_forward(daig, builder, [name])
    if value is None:
        daig.clear_value(name)
    else:
        daig.set_value(name, value)
    return dirtied
