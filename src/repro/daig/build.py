"""Initial DAIG construction (``Dinit``, Definition A.2) and demanded unrolling.

:class:`DaigBuilder` translates a CFG plus an abstract-interpreter interface
into the initial DAIG of Lemma 4.1 and provides the ``unroll`` operation used
by the Q-Loop-Unroll rule: materializing the next abstract iteration of a
loop body while keeping the graph acyclic.

The construction follows the three cases of Fig. 7:

1. a forward CFG edge to a non-join location becomes a single transfer
   computation,
2. forward edges into a join location go through indexed pre-join cells and
   a single join computation,
3. a back edge becomes the ``k``-iterate widening chain: a transfer from the
   loop body's last location into a pre-widening cell, a widening
   computation producing the next loop-head iterate, and a ``fix``
   computation from the two greatest iterates into the loop head's
   fixed-point cell.  Initially ``k = 1``; ``unroll`` extends the chain on
   demand.

Nested loops are supported by giving every cell an iteration index *per
enclosing loop head* (see :mod:`repro.daig.names`); unrolling an outer loop
rebuilds the inner loops' initial (two-iterate) structure inside the new
outer iteration, which preserves acyclicity and all consistency invariants.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..domains.base import AbstractDomain
from ..lang.cfg import Cfg, CfgEdge, Loc
from . import names as N
from .graph import Computation, Daig, FIX, JOIN, TRANSFER, WIDEN


class DaigBuilder:
    """Builds and extends DAIGs for one CFG and one abstract domain.

    ``entry_state`` overrides the initial abstract state φ0 (the default is
    ``domain.initial(cfg.params)``); the interprocedural engine uses this to
    seed callee DAIGs with context-specific entry states.
    """

    def __init__(self, cfg: Cfg, domain: AbstractDomain,
                 entry_state: Optional[object] = None) -> None:
        self.cfg = cfg
        self.domain = domain
        self.entry_state = (entry_state if entry_state is not None
                            else domain.initial(cfg.params))

    # -- naming helpers -----------------------------------------------------------

    def state_name(self, loc: Loc, overrides: Dict[Loc, int]) -> N.Name:
        return N.state_name(loc, self.cfg.containing_loop_heads(loc), overrides)

    def fix_name(self, head: Loc, overrides: Dict[Loc, int]) -> N.Name:
        return N.fix_name(head, self.cfg.containing_loop_heads(head), overrides)

    def prewiden_name(self, head: Loc, step: int, overrides: Dict[Loc, int]) -> N.Name:
        return N.prewiden_name(head, step, self.cfg.containing_loop_heads(head),
                               overrides)

    def prejoin_name(self, loc: Loc, index: int, overrides: Dict[Loc, int]) -> N.Name:
        return N.prejoin_name(loc, index, self.cfg.containing_loop_heads(loc),
                              overrides)

    def source_name(self, src: Loc, dst: Loc, overrides: Dict[Loc, int]) -> N.Name:
        """The cell a transfer over ``src → dst`` reads its input state from.

        Following footnote 5 of the paper: when the source is a loop head and
        the edge leaves the loop, the input is the loop's fixed point;
        otherwise it is the source's (possibly iteration-indexed) state cell.
        """
        if self.cfg.is_loop_head(src) and dst not in self.cfg.natural_loop(src):
            return self.fix_name(src, overrides)
        return self.state_name(src, overrides)

    # -- initial construction ---------------------------------------------------------

    def check_loop_exits(self) -> None:
        """Enforce the structured-loop assumption of the DAIG encoding.

        The Fig. 7 encoding of back edges indexes every loop-body cell by an
        iteration count and lets only the loop head's fixed-point cell feed
        the code after the loop.  An edge that leaves a natural loop from a
        non-head location (e.g. a ``return`` in the middle of a loop body)
        has no sound source cell in that encoding, so it is rejected with a
        clear error rather than silently producing wrong results.

        The violation map is maintained incrementally by the CFG's
        structure layer, so this check is O(1) after a refresh instead of a
        per-edit walk over every forward edge.
        """
        for edge, head in self.cfg.loop_exit_violations():
            raise ValueError(
                "edge %s exits the loop headed at %d from a non-head "
                "location; the DAIG encoding requires loops to exit "
                "through their head" % (edge, head))

    def build(self) -> Daig:
        """Construct the initial DAIG ``Dinit`` (Definition A.2)."""
        self.cfg.check_reducible()
        self.check_loop_exits()
        daig = Daig()
        entry_name = self.state_name(self.cfg.entry, {})
        if self.cfg.is_loop_head(self.cfg.entry) or self.cfg.in_any_loop(self.cfg.entry):
            raise ValueError("the entry location may not belong to a loop")
        daig.add_ref(entry_name)
        daig.set_value(entry_name, self.entry_state)
        reachable = self.cfg.reachable_locations()
        for loc in sorted(reachable):
            if loc == self.cfg.entry:
                continue
            self.encode_incoming(daig, loc, {})
        for head in self.cfg.loop_heads():
            if head in reachable:
                self.build_loop_structures(daig, head, {})
        return daig

    def encode_incoming(self, daig: Daig, loc: Loc, overrides: Dict[Loc, int]) -> None:
        """Encode all incoming *forward* edges of ``loc`` (Fig. 7, cases 1-2)."""
        edges = self.cfg.fwd_edges_to(loc)
        if not edges:
            return
        dest = self.state_name(loc, overrides)
        daig.add_ref(dest)
        if len(edges) == 1:
            index, edge = edges[0]
            stmt_cell = self._stmt_cell(daig, edge, 0)
            source = self.source_name(edge.src, loc, overrides)
            daig.add_ref(source)
            daig.add_computation(dest, TRANSFER, (stmt_cell, source))
            return
        prejoins = []
        for index, edge in edges:
            stmt_cell = self._stmt_cell(daig, edge, index)
            source = self.source_name(edge.src, loc, overrides)
            daig.add_ref(source)
            prejoin = self.prejoin_name(loc, index, overrides)
            daig.add_ref(prejoin)
            daig.add_computation(prejoin, TRANSFER, (stmt_cell, source))
            prejoins.append(prejoin)
        daig.add_computation(dest, JOIN, tuple(prejoins))

    def _stmt_cell(self, daig: Daig, edge: CfgEdge, index: int) -> N.Name:
        name = N.stmt_name(edge.src, edge.dst, index)
        daig.add_ref(name)
        daig.set_value(name, edge.stmt)
        return name

    def build_loop_structures(
        self, daig: Daig, head: Loc, overrides: Dict[Loc, int]
    ) -> None:
        """Encode a back edge as the initial two-iterate chain (Fig. 7, case 3)."""
        back_edges = self.cfg.back_edges_to(head)
        if len(back_edges) != 1:
            raise ValueError(
                "loop head %d has %d back edges; exactly one is supported"
                % (head, len(back_edges)))
        back = back_edges[0]
        body_overrides = dict(overrides)
        body_overrides[head] = 0
        iterate0 = self.state_name(head, body_overrides)
        iterate1 = self.state_name(head, {**overrides, head: 1})
        prewiden1 = self.prewiden_name(head, 1, overrides)
        fix_cell = self.fix_name(head, overrides)
        for name in (iterate0, iterate1, prewiden1, fix_cell):
            daig.add_ref(name)
        stmt_cell = self._stmt_cell(daig, back, 0)
        source = self.source_name(back.src, head, body_overrides)
        daig.add_ref(source)
        daig.add_computation(prewiden1, TRANSFER, (stmt_cell, source))
        daig.add_computation(iterate1, WIDEN, (iterate0, prewiden1))
        daig.add_computation(fix_cell, FIX, (iterate0, iterate1))

    # -- demanded unrolling -----------------------------------------------------------------

    def current_unrolling(self, daig: Daig, head: Loc, overrides: Dict[Loc, int]) -> int:
        """The greatest abstract iterate currently encoded for ``head``."""
        fix_cell = self.fix_name(head, overrides)
        comp = daig.defining(fix_cell)
        if comp is None or comp.func != FIX:
            raise KeyError("no fix computation for loop head %d" % head)
        return comp.srcs[1].iteration_of(head)

    def unroll(self, daig: Daig, head: Loc, overrides: Dict[Loc, int]) -> int:
        """Unroll the abstract interpretation of ``head``'s loop by one step.

        Creates the loop-body cells for the current greatest iterate ``k``,
        the pre-widening and widening chain producing iterate ``k+1``, and
        slides the ``fix`` edge forward to ``(k, k+1)``.  Returns ``k+1``.
        """
        fix_cell = self.fix_name(head, overrides)
        comp = daig.defining(fix_cell)
        if comp is None or comp.func != FIX:
            raise KeyError("no fix computation for loop head %d" % head)
        k = comp.srcs[1].iteration_of(head)
        body_overrides = dict(overrides)
        body_overrides[head] = k
        loop = self.cfg.natural_loop(head)
        for loc in sorted(loop):
            if loc == head:
                continue
            self.encode_incoming(daig, loc, body_overrides)
        for inner in self.cfg.loop_heads():
            if inner != head and inner in loop:
                # Only rebuild inner loops immediately nested in `head` here;
                # deeper nests are handled recursively when those inner loops
                # are themselves unrolled.
                inner_containing = self.cfg.containing_loop_heads(inner)
                if head in inner_containing:
                    self.build_loop_structures(daig, inner, body_overrides)
        back = self.cfg.back_edges_to(head)[0]
        stmt_cell = N.stmt_name(back.src, back.dst, 0)
        prewiden_next = self.prewiden_name(head, k + 1, overrides)
        iterate_k = self.state_name(head, {**overrides, head: k})
        iterate_next = self.state_name(head, {**overrides, head: k + 1})
        source = self.source_name(back.src, head, body_overrides)
        daig.add_ref(prewiden_next)
        daig.add_ref(iterate_next)
        daig.add_ref(source)
        daig.add_computation(prewiden_next, TRANSFER, (stmt_cell, source))
        daig.add_computation(iterate_next, WIDEN, (iterate_k, prewiden_next))
        daig.replace_computation(fix_cell, FIX, (iterate_k, iterate_next))
        return k + 1

    def roll(self, daig: Daig, head: Loc, overrides: Dict[Loc, int]) -> None:
        """Roll a loop back to its initial two-iterate form (edit semantics).

        Removes every cell and computation belonging to iteration >= 2 of
        ``head`` (within the given outer-loop context) and resets the ``fix``
        computation to depend on iterates 0 and 1, as rule E-Loop requires.
        """
        fix_cell = self.fix_name(head, overrides)
        if daig.defining(fix_cell) is None:
            return
        context = tuple(sorted(
            (h, overrides.get(h, 0))
            for h in self.cfg.containing_loop_heads(head) if h != head))
        to_remove = [
            name for name in daig.iterated_cells(head, 2)
            if not context
            or all(item in name.iters or item[0] == head for item in context)
        ]
        daig.remove_region(to_remove)
        iterate0 = self.state_name(head, {**overrides, head: 0})
        iterate1 = self.state_name(head, {**overrides, head: 1})
        daig.replace_computation(fix_cell, FIX, (iterate0, iterate1))
