"""The auxiliary memoization table ``M`` of the operational semantics (Fig. 8).

The memo table caches analysis-function results independently of program
location: the result of ``f(v1, ..., vk)`` is stored under the name
``f·v1···vk`` so that a later query whose inputs happen to coincide — even
at a completely different location, or after an edit — can reuse it
(rule Q-Match) instead of recomputing (rule Q-Miss).

The paper's prototype obtains this table from adapton.ocaml; here it is a
plain mapping keyed by the function symbol and the (hashable) input values,
with hit/miss counters that the benchmarks report.  Because dropping memo
entries is always sound (Section 2.2 — the worst case is recomputation),
the table optionally bounds its size with least-recently-used eviction:
long edit workloads otherwise accumulate entries for abstract states that
no program version will ever produce again.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple


class MemoTable:
    """A finite map from ``f·(v1···vk)`` names to previously computed results.

    ``capacity`` bounds the number of retained entries; ``None`` (the
    default) keeps the table unbounded, matching the paper's semantics.
    Lookups refresh an entry's recency; stores beyond the capacity evict the
    least recently used entry and count it in ``evictions``.

    ``thread_safe=True`` guards every operation with a reentrant lock so the
    parallel evaluator's worker threads can read while the coordinator
    writes (with a capacity set, even a lookup mutates recency order, so
    readers must take the lock too).  In the default sequential mode the
    table instead *asserts* single-writer ownership: stores must come from
    the thread that created the table, while lookups stay assertion-free.
    """

    def __init__(self, enabled: bool = True,
                 capacity: Optional[int] = None,
                 thread_safe: bool = False) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("memo capacity must be positive or None")
        self.enabled = enabled
        self.capacity = capacity
        self.thread_safe = thread_safe
        self._lock = threading.RLock() if thread_safe else None
        self._owner = threading.get_ident()
        self._table: "OrderedDict[Tuple[Any, ...], Any]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.stores = 0

    @staticmethod
    def key(func: str, args: Tuple[Any, ...]) -> Optional[Tuple[Any, ...]]:
        """Build the memo key ``f·(v1···vk)``, or None if any input is unhashable."""
        try:
            hash(args)
        except TypeError:
            return None
        return (func,) + args

    def lookup(self, func: str, args: Tuple[Any, ...]) -> Tuple[bool, Any]:
        """Return ``(found, value)`` for ``f·(v1···vk)``."""
        if self._lock is not None:
            with self._lock:
                return self._lookup(func, args)
        return self._lookup(func, args)

    def _lookup(self, func: str, args: Tuple[Any, ...]) -> Tuple[bool, Any]:
        if not self.enabled:
            self.misses += 1
            return False, None
        # One dict probe: the key tuple is hashed exactly once (and interned
        # states/names inside it carry cached hashes), where a key() +
        # containment + access sequence would hash it three times.
        try:
            value = self._table[(func,) + args]
        except KeyError:
            self.misses += 1
            return False, None
        except TypeError:  # an unhashable input cannot be memoized
            self.misses += 1
            return False, None
        self.hits += 1
        if self.capacity is not None:
            self._table.move_to_end((func,) + args)
        return True, value

    def store(self, func: str, args: Tuple[Any, ...], value: Any) -> None:
        if self._lock is not None:
            with self._lock:
                self._store(func, args, value)
            return
        assert threading.get_ident() == self._owner, (
            "MemoTable store off the owning thread without thread_safe=True")
        self._store(func, args, value)

    def _store(self, func: str, args: Tuple[Any, ...], value: Any) -> None:
        if not self.enabled:
            return
        key = (func,) + args
        try:
            self._table[key] = value
        except TypeError:  # an unhashable input cannot be memoized
            return
        self.stores += 1
        if self.capacity is not None:
            self._table.move_to_end(key)
            while len(self._table) > self.capacity:
                self._table.popitem(last=False)
                self.evictions += 1

    def peek(self, func: str, args: Tuple[Any, ...]) -> Tuple[bool, Any]:
        """Like :meth:`lookup`, but without touching the hit/miss counters
        or the LRU order — for bookkeeping passes (e.g. snapshotting entries
        about to be invalidated) that are not real memoization queries."""
        if not self.enabled:
            return False, None
        key = self.key(func, args)
        if key is None or key not in self._table:
            return False, None
        return True, self._table[key]

    def discard(self, func: str, args: Tuple[Any, ...]) -> bool:
        """Drop one entry if present (always sound, per Section 2.2).

        Used by clients that can name entries they have made unreachable —
        e.g. the interprocedural engine retiring version-stamped summaries —
        so an unbounded table does not accumulate dead results.
        """
        if self._lock is not None:
            with self._lock:
                return self._discard(func, args)
        assert threading.get_ident() == self._owner, (
            "MemoTable discard off the owning thread without thread_safe=True")
        return self._discard(func, args)

    def _discard(self, func: str, args: Tuple[Any, ...]) -> bool:
        key = self.key(func, args)
        if key is None or key not in self._table:
            return False
        del self._table[key]
        return True

    def clear(self) -> None:
        """Drop all cached results (always sound, per Section 2.2)."""
        if self._lock is not None:
            with self._lock:
                self._table.clear()
            return
        self._table.clear()

    def __len__(self) -> int:
        return len(self._table)

    def stats(self) -> Dict[str, int]:
        return {
            "entries": len(self._table),
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "capacity": -1 if self.capacity is None else self.capacity,
        }
