"""Quickstart: demanded abstract interpretation in a few lines.

This example walks through the core workflow of the library:

1. parse a small program in the JavaScript-like subset,
2. build its control-flow graph,
3. create a :class:`~repro.daig.DaigEngine` with the interval domain,
4. issue a demand query for the abstract state at the exit,
5. apply a program edit (as an IDE would when the developer types), and
6. re-query, reusing everything the edit did not invalidate.

Run it with ``python examples/quickstart.py``.
"""

from repro.daig import DaigEngine
from repro.domains import IntervalDomain
from repro.lang import ast as A
from repro.lang import build_cfg, parse_program

SOURCE = """
function main() {
  var a = [1, 2, 3, 4, 5];
  var i = 0;
  var total = 0;
  while (i < a.length) {
    total = total + a[i];
    i = i + 1;
  }
  return total;
}
"""


def main() -> None:
    program = parse_program(SOURCE)
    cfg = build_cfg(program.procedure("main"))
    domain = IntervalDomain()
    engine = DaigEngine(cfg, domain)

    print("Program has %d control-flow edges, loop heads at %s"
          % (cfg.size(), cfg.loop_heads()))

    # Demand query: only the cells needed for the exit invariant are computed.
    exit_state = engine.query_location(cfg.exit)
    print("\nInvariant at exit:")
    print(" ", domain.describe(exit_state))
    print("Work so far:", engine.stats.as_dict())

    # The developer adds a statement right after the entry; the engine dirties
    # only what the edit can affect and reuses the rest on the next query.
    entry_successor = cfg.successors(cfg.entry)[0]
    engine.insert_statement_after(entry_successor,
                                  A.AssignStmt("bonus", A.IntLit(10)))
    print("\nApplied edit: insert `bonus = 10` near the entry")

    exit_state = engine.query_location(engine.cfg.exit)
    print("Invariant at exit after the edit:")
    print(" ", domain.describe(exit_state))
    print("Cumulative work:", engine.stats.as_dict())

    bounds = domain.numeric_bounds(A.Var("total"), exit_state)
    print("\nThe analysis proves total ∈ [%s, %s]"
          % (bounds[0], "+inf" if bounds[1] is None else bounds[1]))


if __name__ == "__main__":
    main()
