"""An interactive IDE session: interleaved edits and queries, four ways.

This example reproduces, at small scale, the Section 7.3 comparison: the
same stream of random program edits and abstract-state queries (as issued by
an IDE while the developer types) is fed to the four analysis
configurations — batch, incremental-only, demand-driven-only, and the full
incremental & demand-driven technique — over the octagon domain, and the
per-step latencies are compared.

Run it with ``python examples/interactive_ide_session.py [edits]``.
"""

import sys

from repro.analysis.config import (
    BatchConfiguration,
    DemandConfiguration,
    IncrementalConfiguration,
    IncrementalDemandConfiguration,
)
from repro.domains import OctagonDomain
from repro.workload import (
    format_summary_table,
    fraction_within,
    generate_trials,
    run_trial,
    summarize,
)


def main(edits: int = 60) -> None:
    print("Simulating an IDE session: %d edits, 5 queries after each edit\n" % edits)
    steps = generate_trials(edits=edits, trials=1, base_seed=42)[0]
    final_size = steps[-1].program_size
    print("The edited program grows to %d statements.\n" % final_size)

    configurations = {
        "batch": BatchConfiguration(OctagonDomain()),
        "incremental": IncrementalConfiguration(OctagonDomain()),
        "demand-driven": DemandConfiguration(OctagonDomain()),
        "incr+demand": IncrementalDemandConfiguration(OctagonDomain()),
    }

    rows = {}
    latencies = {}
    phases = {}
    for name, configuration in configurations.items():
        result = run_trial(configuration, steps)
        latencies[name] = result.latencies()
        rows[name] = summarize(result.latencies())
        phases[name] = result.phases
        print("%-14s done (total %.2fs)" % (name, sum(result.latencies())))

    print("\nPer-step analysis latency (seconds):")
    print(format_summary_table(rows))

    print("\nPer-phase breakdown (seconds: structure / snapshot / splice / query):")
    for name in configurations:
        split = phases[name]
        print("  %-14s %8.3f %8.3f %8.3f %8.3f" % (
            name, split.get("structure", 0.0), split.get("snapshot", 0.0),
            split.get("splice", 0.0), split.get("query", 0.0)))

    threshold = rows["incr+demand"]["p95"]
    print("\nFraction of steps answered within the incr+demand p95 (%.3fs):"
          % threshold)
    for name in configurations:
        print("  %-14s %.1f%%" % (name, 100 * fraction_within(latencies[name], threshold)))


if __name__ == "__main__":
    count = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    main(count)
