"""Verifying the paper's running example (Fig. 1) with the shape domain.

The ``append`` procedure appends two singly-linked lists.  Given well-formed
(null-terminated, acyclic) inputs it must return a well-formed list and
never dereference null.  This example reproduces the Section 7.2 shape-
analysis experiment:

* the separation-logic shape domain (``lseg`` + points-to + pure
  constraints) is plugged into the DAIG engine,
* the loop's abstract fixed point is computed by *demanded unrolling* —
  and, as the paper reports, converges after a single unrolling,
* the exit state proves both memory safety and well-formedness of the
  returned list,
* an edit that breaks the invariant (dropping the null test) is then applied
  to show the verification failing, and reverted.

Run it with ``python examples/shape_append_verification.py``.
"""

from repro.analysis import ShapeVerificationClient
from repro.daig import DaigEngine
from repro.domains import ShapeDomain
from repro.lang import ast as A
from repro.lang import build_cfg
from repro.lang.programs import APPEND_SOURCE, LIST_PROGRAMS, append_program


def verify_append() -> None:
    program = append_program()
    cfg = build_cfg(program.procedure("append"))
    domain = ShapeDomain()
    engine = DaigEngine(cfg, domain)

    print("Analyzing `append` (Fig. 1 of the paper) with the shape domain")
    exit_state = engine.query_location(cfg.exit)
    print("  demanded unrollings of the traversal loop:", engine.stats.unrollings)
    print("  possible null dereferences:", sorted(exit_state.faults()) or "none")
    print("  returned list well-formed:",
          domain.verifies_wellformed(exit_state, A.RETURN_VARIABLE))
    print("  exit state:")
    for disjunct in exit_state.disjuncts:
        print("    ∨", disjunct)


def verify_list_utilities() -> None:
    print("\nVerifying the Buckets.js-style list utilities")
    client = ShapeVerificationClient()
    for name in sorted(LIST_PROGRAMS):
        from repro.lang.programs import list_program
        verdict = client.verify_program(list_program(name))[name]
        print("  " + verdict.summary())


def break_and_requery() -> None:
    print("\nBreaking the null check and re-querying (incremental re-analysis)")
    program = append_program()
    cfg = build_cfg(program.procedure("append"))
    domain = ShapeDomain()
    engine = DaigEngine(cfg, domain)
    engine.query_location(cfg.exit)

    # Replace `assume (p != null)` with `assume true`: r may now be null when
    # the loop dereferences r.next, and the analysis reports the fault.
    target = next(edge for edge in engine.cfg.edges
                  if isinstance(edge.stmt, A.AssumeStmt)
                  and "p != null" in str(edge.stmt))
    engine.replace_statement(target, A.AssumeStmt(A.BoolLit(True)))
    broken = engine.query_location(engine.cfg.exit)
    print("  after the edit, possible faults:", sorted(broken.faults()))


if __name__ == "__main__":
    print(APPEND_SOURCE)
    verify_append()
    verify_list_utilities()
    break_and_requery()
