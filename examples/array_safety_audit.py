"""Array-bounds audit under different context-sensitivity policies.

Reproduces the Section 7.2 interval-analysis experiment: the Buckets.js-style
array-manipulating programs are analyzed with the demanded, interprocedural
interval analysis under three context policies (context-insensitive,
1-call-site, 2-call-site), and the number of array accesses proven in-bounds
is reported for each.  The paper reports 85/85 verified with 2-call-site
sensitivity, 71/74 with 1-call-site, and only 4/18 context-insensitively;
the qualitative staircase (more context sensitivity verifies strictly more
accesses) is what this audit reproduces.

Run it with ``python examples/array_safety_audit.py``.
"""

from repro.analysis import ArraySafetyClient
from repro.interproc import policy_by_name
from repro.lang import build_program_cfgs
from repro.lang.programs import ARRAY_PROGRAMS, array_program

POLICIES = ("insensitive", "1-call-site", "2-call-site")


def audit() -> None:
    parsed = {name: build_program_cfgs(array_program(name))
              for name in sorted(ARRAY_PROGRAMS)}
    print("Auditing %d array-manipulating programs\n" % len(parsed))
    totals = {}
    for policy_name in POLICIES:
        verified = 0
        total = 0
        per_program = []
        for name, cfgs in parsed.items():
            client = ArraySafetyClient(
                {k: cfg.copy() for k, cfg in cfgs.items()},
                policy_by_name(policy_name))
            report = client.check(name)
            verified += report.verified
            total += report.total
            per_program.append((name, report.verified, report.total))
        totals[policy_name] = (verified, total)
        print("%-16s verified %3d / %3d array accesses" % (policy_name, verified, total))
        unproven = [(n, v, t) for n, v, t in per_program if v < t]
        if unproven:
            for name, v, t in unproven:
                print("    %-14s %d/%d" % (name, v, t))
    print("\nSummary (paper: 4/18 insensitive, 71/74 @1-cs, 85/85 @2-cs):")
    for policy_name in POLICIES:
        verified, total = totals[policy_name]
        print("  %-16s %d/%d" % (policy_name, verified, total))


if __name__ == "__main__":
    audit()
