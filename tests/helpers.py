"""Shared test helpers: subject-program sources and random-CFG factories.

Test modules import these directly (``from helpers import LOOP_SOURCE``)
instead of reaching into ``conftest.py``: conftest modules are pytest
plumbing, not an importable API, and importing them by name breaks as soon
as another directory (e.g. ``benchmarks/``) carries its own conftest.  The
``pythonpath`` entry in ``pyproject.toml`` puts this directory on
``sys.path`` for the whole suite.
"""

from __future__ import annotations

from repro.workload.generator import WorkloadGenerator

#: A small looping program used across many tests.
LOOP_SOURCE = """
function main() {
  var i = 0;
  var total = 0;
  while (i < 10) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
"""

#: Straight-line program with a conditional join.
BRANCH_SOURCE = """
function main(flag) {
  var x = 0;
  if (flag > 0) {
    x = 1;
  } else {
    x = 2;
  }
  var y = x + 3;
  return y;
}
"""

#: Nested loops.
NESTED_SOURCE = """
function main() {
  var i = 0;
  var total = 0;
  while (i < 3) {
    var j = 0;
    while (j < 4) {
      total = total + 1;
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
"""


def random_cfg(seed: int, edits: int):
    """A random CFG produced by applying `edits` workload edits from `seed`."""
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    generator.generate(edits)
    return generator.cfg


def random_workload(seed: int, edits: int):
    """A random workload stream plus the generator that produced it."""
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(edits)
    return generator, steps
