"""Tests for the synthetic workload generator, driver, and statistics."""

import pytest

from repro.lang import ast as A
from repro.lang.cfg import Cfg
from repro.daig import DaigEngine
from repro.domains import SignDomain
from repro.workload import (
    InsertConditional,
    InsertLoop,
    InsertStatement,
    LatencySample,
    WorkloadGenerator,
    cumulative_distribution,
    format_summary_table,
    fraction_within,
    generate_trials,
    percentile,
    scatter_series,
    summarize,
)
from repro.workload.generator import (
    CONDITIONAL_PROBABILITY,
    LOOP_PROBABILITY,
    STATEMENT_PROBABILITY,
)


def empty_cfg():
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg


class TestGenerator:
    def test_deterministic_by_seed(self):
        first = WorkloadGenerator(seed=7).generate(30)
        second = WorkloadGenerator(seed=7).generate(30)
        assert [s.edit for s in first] == [s.edit for s in second]
        assert [s.query_locations for s in first] == [s.query_locations for s in second]

    def test_different_seeds_differ(self):
        first = WorkloadGenerator(seed=1).generate(30)
        second = WorkloadGenerator(seed=2).generate(30)
        assert [s.edit for s in first] != [s.edit for s in second]

    def test_edit_kind_distribution_roughly_matches_paper(self):
        steps = WorkloadGenerator(seed=0).generate(600)
        statements = sum(isinstance(s.edit, InsertStatement) for s in steps)
        conditionals = sum(isinstance(s.edit, InsertConditional) for s in steps)
        loops = sum(isinstance(s.edit, InsertLoop) for s in steps)
        assert statements + conditionals + loops == 600
        assert abs(statements / 600 - STATEMENT_PROBABILITY) < 0.06
        assert abs(conditionals / 600 - CONDITIONAL_PROBABILITY) < 0.05
        assert abs(loops / 600 - LOOP_PROBABILITY) < 0.04

    def test_queries_per_edit(self):
        steps = WorkloadGenerator(seed=0, queries_per_edit=5).generate(10)
        assert all(len(s.query_locations) == 5 for s in steps)

    def test_program_size_grows_monotonically(self):
        steps = WorkloadGenerator(seed=3).generate(50)
        sizes = [s.program_size for s in steps]
        assert sizes == sorted(sizes)
        assert sizes[-1] > sizes[0]

    def test_generated_programs_remain_reducible(self):
        generator = WorkloadGenerator(seed=5)
        generator.generate(80)
        assert generator.cfg.is_reducible()

    def test_query_locations_exist_in_program(self):
        generator = WorkloadGenerator(seed=4)
        steps = generator.generate(40)
        final_locations = generator.cfg.locations
        for step in steps:
            for loc in step.query_locations:
                assert loc in final_locations

    def test_callee_programs_parse(self):
        from repro.lang import parse_program
        for source in WorkloadGenerator().callee_programs().values():
            parse_program(source)


class TestEditObjects:
    def test_cfg_and_engine_application_agree(self):
        generator = WorkloadGenerator(seed=9, call_probability=0.0)
        steps = generator.generate(20)
        cfg = empty_cfg()
        engine = DaigEngine(empty_cfg(), SignDomain())
        for step in steps:
            step.edit.apply_to_cfg(cfg)
            step.edit.apply_to_engine(engine)
        assert cfg.size() == engine.cfg.size()
        assert sorted(str(e.stmt) for e in cfg.edges) == sorted(
            str(e.stmt) for e in engine.cfg.edges)

    def test_describe_is_informative(self):
        edit = InsertStatement(3, A.AssignStmt("x", A.IntLit(1)))
        assert "x = 1" in edit.describe()
        loop = InsertLoop(3, A.BinOp("<", A.Var("i"), A.IntLit(2)), ())
        assert "while" in loop.describe()


class TestDriver:
    def test_generate_trials_are_independent_and_reproducible(self):
        first = generate_trials(edits=10, trials=2, base_seed=11)
        second = generate_trials(edits=10, trials=2, base_seed=11)
        assert len(first) == 2
        assert [s.edit for s in first[0]] == [s.edit for s in second[0]]
        assert [s.edit for s in first[0]] != [s.edit for s in first[1]]


class TestStatistics:
    def test_percentile_nearest_rank(self):
        samples = [0.1, 0.2, 0.3, 0.4, 0.5]
        assert percentile(samples, 0.5) == 0.3
        assert percentile(samples, 0.0) == 0.1
        assert percentile(samples, 1.0) == 0.5
        assert percentile([7.0], 0.9) == 7.0

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_summarize_keys_and_ordering(self):
        summary = summarize([float(i) for i in range(1, 101)])
        assert summary["p50"] <= summary["p90"] <= summary["p95"] <= summary["p99"]
        assert abs(summary["mean"] - 50.5) < 1e-9

    def test_cdf_is_monotone_and_ends_at_one(self):
        cdf = cumulative_distribution([0.5, 1.0, 2.0, 4.0], points=10)
        fractions = [fraction for _latency, fraction in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_fraction_within(self):
        assert fraction_within([0.1, 0.2, 0.9], 0.5) == pytest.approx(2 / 3)
        assert fraction_within([], 1.0) == 0.0

    def test_scatter_series_buckets_by_size(self):
        samples = [LatencySample(size, 0.01 * size) for size in range(10, 110)]
        series = scatter_series(samples, buckets=5)
        sizes = [bucket for bucket, _mean, _max in series]
        assert sizes == sorted(sizes)
        means = [mean for _bucket, mean, _max in series]
        assert means == sorted(means)

    def test_format_summary_table(self):
        table = format_summary_table({"batch": summarize([1.0, 2.0, 3.0])})
        assert "batch" in table and "mean" in table
