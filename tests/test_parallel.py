"""Tests for the parallel demanded evaluator: the persistent worker pool,
the summary-job worker, the speculate/dispatch/certify coordinator, the
intra-DAIG parallel worklist, and memo-table thread discipline.

The correctness bar everywhere is *sequential equality*: a
coordinator-warmed engine must answer every query, and digest to, exactly
what a sequential engine produces — speculation that cannot be certified
is thrown away, never trusted.
"""

from __future__ import annotations

import threading

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.daig import DaigEngine
from repro.daig.memo import MemoTable
from repro.daig.query import ParallelQueryEvaluator
from repro.domains import ConstantDomain, IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import build_program_cfgs, parse_program
from repro.lang.programs import wide_call_graph_source
from repro.parallel import (
    JobPayload,
    ParallelCoordinator,
    PersistentWorkerPool,
    run_summary_job,
)
from repro.workload import WorkloadGenerator

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = ("insensitive", "1-call-site", "2-call-site")

CHAIN_PROGRAM = """
function leaf(x) {
  return x + 1;
}

function middle(y) {
  var m = leaf(y);
  return m;
}

function main() {
  var small = middle(1);
  var big = middle(100);
  return small + big;
}
"""

FACT_PROGRAM = """
function fact(n) {
  var r = 1;
  if (n > 1) {
    var m = n - 1;
    var s = fact(m);
    r = n * s;
  }
  return r;
}
function main() { var z = fact(5); return z; }
"""

#: Two independent diamond branches: multiple transfer cells become ready
#: at once, so the intra-DAIG evaluator actually batches.
DIAMOND_PROGRAM = """
function main(flag) {
  var a = 1;
  var b = 2;
  var c = 3;
  var d = 4;
  if (flag > 0) {
    a = a + b;
    c = c + d;
  } else {
    b = b + 1;
    d = d + 1;
  }
  var e = a + c;
  var f = b + d;
  return e + f;
}
"""


def cfgs_of(source):
    return build_program_cfgs(parse_program(source))


def _fresh_copy(cfgs):
    return {name: cfg.copy() for name, cfg in cfgs.items()}


def _warmed_pair(source, domain, policy_name, pool, parallel_cells=None):
    """(sequential engine, coordinator-warmed engine, report) on copies."""
    cfgs = cfgs_of(source)
    sequential = InterproceduralEngine(
        _fresh_copy(cfgs), domain, policy_by_name(policy_name))
    parallel = InterproceduralEngine(
        _fresh_copy(cfgs), domain, policy_by_name(policy_name))
    report = ParallelCoordinator(
        parallel, pool, parallel_cells=parallel_cells).run()
    return sequential, parallel, report


def _assert_results_equal(domain, left, right):
    assert set(left) == set(right)
    for key in left:
        assert set(left[key]) == set(right[key]), key
        for loc, state in left[key].items():
            assert domain.equal(state, right[key][loc]), (key, loc)


# ---------------------------------------------------------------------------
# PersistentWorkerPool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def test_rejects_zero_workers_and_unknown_kinds(self):
        with pytest.raises(ValueError):
            PersistentWorkerPool(workers=0)
        with pytest.raises(ValueError):
            PersistentWorkerPool(workers=2, kind="fork-bomb")

    def test_interpreter_kind_is_gated_behind_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARALLEL_EXECUTOR", raising=False)
        with pytest.raises(ValueError, match="experimental"):
            PersistentWorkerPool(workers=1, kind="interpreter")

    def test_default_kind_reads_environment(self, monkeypatch):
        from repro.parallel.pool import default_kind
        monkeypatch.delenv("REPRO_PARALLEL_EXECUTOR", raising=False)
        assert default_kind() == "process"
        monkeypatch.setenv("REPRO_PARALLEL_EXECUTOR", "thread")
        assert default_kind() == "thread"
        monkeypatch.setenv("REPRO_PARALLEL_EXECUTOR", "nonsense")
        assert default_kind() == "process"

    def test_serial_pool_runs_inline_and_propagates_errors(self):
        with PersistentWorkerPool(workers=1, kind="serial") as pool:
            assert pool.warmup() and pool.warmed
            assert pool.submit(lambda x: x + 1, 41).result() == 42
            failing = pool.submit(lambda: 1 // 0)
            with pytest.raises(ZeroDivisionError):
                failing.result()

    def test_thread_pool_warms_and_survives_reuse(self):
        pool = PersistentWorkerPool(workers=2, kind="thread")
        try:
            assert len(pool.warmup()) == 2
            results = [pool.submit(lambda i=i: i * i).result()
                       for i in range(8)]
            assert results == [i * i for i in range(8)]
        finally:
            pool.close()
        pool.close()  # idempotent


# ---------------------------------------------------------------------------
# run_summary_job
# ---------------------------------------------------------------------------


class TestSummaryJob:
    def _payload(self, source, procedure, domain, summaries=None):
        cfgs = cfgs_of(source)
        return JobPayload(
            procedure=procedure,
            cfg=cfgs[procedure].copy(),
            context=(),
            entry=domain.initial(cfgs[procedure].params),
            policy_name="context-insensitive",
            domain_spec=domain.name,
            callee_params={name: tuple(cfg.params)
                           for name, cfg in cfgs.items()},
            summaries=dict(summaries or {}),
        )

    def test_leaf_job_matches_sequential_exit(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain)
        engine.query("leaf", engine.cfgs["leaf"].exit)
        expected = engine.analyze_everything()[("leaf", ())][
            engine.cfgs["leaf"].exit]
        result = run_summary_job(self._payload(CHAIN_PROGRAM, "leaf", domain))
        assert result.error is None and not result.incomplete
        assert domain.equal(result.exit_state, expected)
        assert result.cpu_seconds >= 0.0 and result.duration > 0.0

    def test_missing_callee_summary_marks_incomplete(self):
        domain = IntervalDomain()
        result = run_summary_job(
            self._payload(CHAIN_PROGRAM, "middle", domain))
        assert result.error is None
        assert result.incomplete  # leaf's summary was not shipped
        assert ("leaf", ()) in result.contribs
        assert not result.used

    def test_shipped_summary_is_consumed_and_reported_used(self):
        domain = IntervalDomain()
        leaf = run_summary_job(self._payload(CHAIN_PROGRAM, "leaf", domain))
        entry = domain.initial(("x",))
        result = run_summary_job(self._payload(
            CHAIN_PROGRAM, "middle", domain,
            summaries={("leaf", ()): (entry, leaf.exit_state)}))
        assert result.error is None and not result.incomplete
        assert result.used == frozenset({("leaf", ())})

    def test_worker_failures_are_reported_not_raised(self):
        domain = IntervalDomain()
        payload = self._payload(CHAIN_PROGRAM, "leaf", domain)
        payload.domain_spec = "no-such-domain"
        result = run_summary_job(payload)
        assert result.error is not None and "no-such-domain" in result.error
        assert result.exit_state is None


# ---------------------------------------------------------------------------
# ParallelCoordinator: sequential equality, certified by digest
# ---------------------------------------------------------------------------


class TestCoordinator:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_warmed_engine_digests_equal_sequential(self, policy_name):
        domain = IntervalDomain()
        with PersistentWorkerPool(workers=2, kind="thread") as pool:
            sequential, parallel, report = _warmed_pair(
                wide_call_graph_source(4, inner_loops=1), domain,
                policy_name, pool)
            sequential.query_entry_exit()
            parallel.query_entry_exit()
            assert parallel.summary_digest() == sequential.summary_digest()
            assert report["jobs"] > 0 and not report["errors"]
            assert report["certified"] == report["jobs"]

    def test_wave_shape_and_counters_on_wide_workload(self):
        domain = IntervalDomain()
        with PersistentWorkerPool(workers=2, kind="serial") as pool:
            _sequential, parallel, report = _warmed_pair(
                wide_call_graph_source(5, inner_loops=1), domain,
                "insensitive", pool)
        # One wave of the five independent workers, then main's wave.
        assert report["wave_sizes"] == [5, 1]
        assert report["jobs_per_wave"] > 1
        assert parallel.counters["interproc_parallel_jobs"] == report["jobs"]
        assert parallel.counters["interproc_parallel_waves"] == 2
        # Sequential engines never touch the parallel counters.
        fresh = InterproceduralEngine(
            cfgs_of(CHAIN_PROGRAM), IntervalDomain())
        fresh.query_entry_exit()
        assert fresh.counters["interproc_parallel_jobs"] == 0
        assert fresh.counters["interproc_parallel_waves"] == 0

    def test_recursive_procedures_are_excluded_but_results_still_agree(self):
        domain = IntervalDomain()
        with PersistentWorkerPool(workers=2, kind="serial") as pool:
            sequential, parallel, report = _warmed_pair(
                FACT_PROGRAM, domain, "insensitive", pool)
        assert "fact" in report["excluded_procedures"]
        # main's forward cone includes the recursive callee, so nothing is
        # dispatched — and the engine falls back to sequential evaluation.
        sequential.query_entry_exit()
        parallel.query_entry_exit()
        assert parallel.summary_digest() == sequential.summary_digest()

    def test_constant_domain_agrees_too(self):
        domain = ConstantDomain()
        with PersistentWorkerPool(workers=2, kind="serial") as pool:
            sequential, parallel, _report = _warmed_pair(
                CHAIN_PROGRAM, domain, "1-call-site", pool)
        sequential.query_entry_exit()
        parallel.query_entry_exit()
        assert parallel.summary_digest() == sequential.summary_digest()

    def test_locality_counters_unchanged_by_warming(self):
        domain = IntervalDomain()
        with PersistentWorkerPool(workers=2, kind="serial") as pool:
            _sequential, parallel, _report = _warmed_pair(
                wide_call_graph_source(4, inner_loops=1), domain,
                "insensitive", pool)
        parallel.query_entry_exit()
        assert parallel.counters["interproc_callsite_scans"] == 0

    def test_process_pool_round_trips_interned_states(self):
        """One real multiprocess run: payloads pickle out, results pickle
        back, and every received state re-interns to coordinator-process
        canonical objects (digest equality would fail otherwise)."""
        domain = IntervalDomain()
        pool = PersistentWorkerPool(workers=2, kind="process")
        try:
            pids = pool.warmup()
            assert len(pids) == 2
            sequential, parallel, report = _warmed_pair(
                wide_call_graph_source(3, inner_loops=1), domain,
                "insensitive", pool)
            assert not report["errors"]
            sequential.query_entry_exit()
            parallel.query_entry_exit()
            assert parallel.summary_digest() == sequential.summary_digest()
        finally:
            pool.close()


# ---------------------------------------------------------------------------
# ParallelCoordinator + persistent store
# ---------------------------------------------------------------------------


class TestCoordinatorStore:
    def test_coordinator_serves_probed_keys_from_store(self, tmp_path):
        """A warm coordinator run answers previously stored keys without
        dispatching a worker, and the results stay digest-equal."""
        from repro.store import SqliteSummaryStore, store_from_spec

        domain = IntervalDomain()
        source = wide_call_graph_source(4, inner_loops=1)
        store = SqliteSummaryStore(str(tmp_path / "warm.db"))
        cold = InterproceduralEngine(cfgs_of(source), domain, store=store)
        cold.query_entry_exit()
        cold_digest = cold.summary_digest()

        warm = InterproceduralEngine(
            cfgs_of(source), domain,
            store=store_from_spec(*store.spec()))
        with PersistentWorkerPool(workers=2, kind="serial") as pool:
            report = ParallelCoordinator(warm, pool).run()
        assert report["store_served"] > 0
        assert not report["errors"]
        # Store-served keys never became worker jobs.
        assert report["jobs"] + report["store_served"] >= 4
        warm.query_entry_exit()
        assert warm.summary_digest() == cold_digest

    def test_worker_consults_store_when_summary_not_shipped(self, tmp_path):
        """A job whose callee summary was not shipped falls back to the
        persistent store instead of havoc: the result is complete but
        flagged ``used_store`` (and therefore not certifiable)."""
        from repro.store import SqliteSummaryStore

        domain = IntervalDomain()
        store = SqliteSummaryStore(str(tmp_path / "consult.db"))
        session = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                        store=store)
        session.query("middle", session.cfgs["middle"].exit)
        assert session.counters["interproc_store_writes"] > 0

        cfgs = cfgs_of(CHAIN_PROGRAM)
        payload = JobPayload(
            procedure="middle",
            cfg=cfgs["middle"].copy(),
            context=(),
            entry=domain.initial(cfgs["middle"].params),
            policy_name="context-insensitive",
            domain_spec=domain.name,
            callee_params={name: tuple(cfg.params)
                           for name, cfg in cfgs.items()},
            summaries={},  # leaf deliberately not shipped
            store_spec=store.spec(),
            deep_digests={name: session.deep_digest(name)
                          for name in session.cfgs},
        )
        result = run_summary_job(payload)
        assert result.error is None
        assert not result.incomplete
        assert result.used_store == frozenset({("leaf", ())})
        expected = session.analyze_everything()[("middle", ())][
            session.cfgs["middle"].exit]
        assert domain.equal(result.exit_state, expected)

    def test_store_results_survive_a_real_process_pool(self, tmp_path):
        """End to end across process boundaries: the workers reopen the
        store from its spec and the warmed engine digests equal."""
        from repro.store import SqliteSummaryStore

        domain = IntervalDomain()
        source = wide_call_graph_source(3, inner_loops=1)
        store = SqliteSummaryStore(str(tmp_path / "multi.db"))
        cold = InterproceduralEngine(cfgs_of(source), domain, store=store)
        cold.query_entry_exit()
        cold_digest = cold.summary_digest()

        warm = InterproceduralEngine(cfgs_of(source), domain, store=store)
        pool = PersistentWorkerPool(workers=2, kind="process")
        try:
            pool.warmup()
            report = ParallelCoordinator(warm, pool).run()
        finally:
            pool.close()
        assert not report["errors"]
        warm.query_entry_exit()
        assert warm.summary_digest() == cold_digest


# ---------------------------------------------------------------------------
# Intra-DAIG parallel worklist
# ---------------------------------------------------------------------------


class TestParallelQueryEvaluator:
    def test_rejects_nonpositive_worker_count(self):
        cfg = cfgs_of(DIAMOND_PROGRAM)["main"]
        with pytest.raises(ValueError):
            DaigEngine(cfg, IntervalDomain(), parallel_cells=0)

    def test_batches_independent_cells_and_matches_sequential(self):
        domain = IntervalDomain()
        cfgs = cfgs_of(DIAMOND_PROGRAM)
        sequential = DaigEngine(cfgs["main"].copy(), domain)
        parallel = DaigEngine(cfgs["main"].copy(), domain, parallel_cells=2)
        assert isinstance(parallel.evaluator, ParallelQueryEvaluator)
        try:
            exit_seq = sequential.query_exit()
            exit_par = parallel.query_exit()
            assert domain.equal(exit_seq, exit_par)
            seq_stats = sequential.stats.as_dict()
            par_stats = parallel.stats.as_dict()
            # Same semantic work, independently of scheduling.
            for counter in ("transfers", "joins", "widens"):
                assert par_stats[counter] == seq_stats[counter], counter
            assert par_stats["parallel_batches"] > 0
            assert par_stats["parallel_batch_cells"] >= (
                2 * par_stats["parallel_batches"])
            assert parallel.phase_seconds()["dispatch"] >= 0.0
        finally:
            parallel.evaluator.close()

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=2_000))
    def test_random_programs_agree_with_sequential(self, seed):
        domain = IntervalDomain()
        generator = WorkloadGenerator(seed=seed, call_probability=0.0)
        generator.generate(10)  # mutates generator.cfg in place
        cfg = generator.cfg
        sequential = DaigEngine(cfg.copy(), domain)
        parallel = DaigEngine(cfg.copy(), domain, parallel_cells=3)
        try:
            assert domain.equal(sequential.query_exit(),
                                parallel.query_exit())
        finally:
            parallel.evaluator.close()


# ---------------------------------------------------------------------------
# MemoTable thread discipline (satellite: concurrent readers, one writer)
# ---------------------------------------------------------------------------


class TestMemoThreading:
    def test_sequential_table_asserts_foreign_writer(self):
        """Regression: a sequential-mode table must loudly reject stores
        from a thread other than its creator instead of silently racing."""
        table = MemoTable()
        failures = []

        def foreign_store():
            try:
                table.store("transfer", (1,), "value")
            except AssertionError as exc:
                failures.append(exc)

        thread = threading.Thread(target=foreign_store)
        thread.start()
        thread.join()
        assert len(failures) == 1
        assert "thread_safe" in str(failures[0])
        table.store("transfer", (1,), "value")  # owner still may write
        hit, value = table.lookup("transfer", (1,))
        assert hit and value == "value"

    def test_thread_safe_table_supports_concurrent_mixed_access(self):
        """Hammer one bounded table from several threads; the LRU order,
        entry bound, and eviction counter must stay consistent."""
        capacity = 64
        table = MemoTable(capacity=capacity, thread_safe=True)
        threads, errors = [], []
        stores_per_thread = 200

        def worker(tid):
            try:
                for i in range(stores_per_thread):
                    table.store("transfer", (tid, i), tid * i)
                    table.lookup("transfer", (tid, i))
                    table.lookup("transfer", ((tid + 1) % 4, i))
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        for tid in range(4):
            threads.append(threading.Thread(target=worker, args=(tid,)))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(table) <= capacity
        # Keys are distinct, so every store beyond the bound evicted one.
        assert table.evictions == 4 * stores_per_thread - len(table)


# ---------------------------------------------------------------------------
# Property: parallel == sequential after random multi-procedure edit streams
# ---------------------------------------------------------------------------


def _final_cfgs(seed, recursive):
    generator = WorkloadGenerator(seed=seed, queries_per_edit=2)
    workload = generator.generate_multiprocedure(
        edits=6, procedures=3, recursive=recursive)
    cfgs = workload.fresh_cfgs()
    for step in workload.steps:
        step.edit.apply_to_cfg(cfgs[step.procedure])
    return cfgs, workload


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES),
       recursive=st.booleans())
def test_parallel_warming_equals_sequential_on_random_programs(
        seed, policy_name, recursive):
    """On the final program of a random multi-procedure edit stream, a
    coordinator-warmed engine answers every query site and every
    ``analyze_everything`` state exactly like a sequential engine, and the
    two digests agree — under all three context policies, with recursion
    (conservatively excluded from dispatch) included."""
    domain = IntervalDomain()
    cfgs, workload = _final_cfgs(seed, recursive)
    sequential = InterproceduralEngine(
        _fresh_copy(cfgs), domain, policy_by_name(policy_name))
    parallel = InterproceduralEngine(
        _fresh_copy(cfgs), domain, policy_by_name(policy_name))
    with PersistentWorkerPool(workers=2, kind="serial") as pool:
        report = ParallelCoordinator(parallel, pool).run()
    assert not report["errors"]
    assert domain.equal(sequential.query_entry_exit(),
                        parallel.query_entry_exit())
    for step in workload.steps:
        for procedure, loc in step.query_sites:
            assert domain.equal(sequential.query(procedure, loc),
                                parallel.query(procedure, loc)), (
                procedure, loc)
    _assert_results_equal(domain, parallel.analyze_everything(),
                          sequential.analyze_everything())
    assert parallel.summary_digest() == sequential.summary_digest()
