"""Property tests for early-cutoff change propagation.

The cutoff's contract is absolute: it changes only latency, never any
answer.  These tests drive *random* edit streams — semantic perturbation
/ revert pairs interleaved with value-preserving operand commutes —
against cutoff-enabled engines and certify, by summary digest, that the
final answers equal a from-scratch cutoff-disabled engine's on the final
program, under every context policy, on recursive programs included.

A second property pins down the payoff: streams of value-preserving
edit/revert pairs fire the summary-level cutoff on *every* edit and
never dirty (hence never recompute) a single caller.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.domains import IntervalDomain
from repro.interproc import InterproceduralEngine, policy_by_name
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = ("insensitive", "1-call-site", "2-call-site")

CHAIN_PROGRAM = """
function leaf(x) {
  var a = x + 1;
  return a + 0;
}

function middle(y) {
  var m = leaf(y);
  var n = m * 2;
  return n;
}

function main() {
  var small = middle(1);
  var big = middle(100);
  return small + big;
}
"""

FACT_PROGRAM = """
function fact(n) {
  var r = 1;
  if (n > 1) {
    var m = n - 1;
    var s = fact(m);
    r = n * s;
  }
  return r;
}
function main() { var z = fact(5); return z; }
"""

EVEN_ODD_PROGRAM = """
function even(n) { var r = 1; if (n > 0) { var m = n - 1; r = odd(m); } return r; }
function odd(n) { var r = 0; if (n > 0) { var m = n - 1; r = even(m); } return r; }
function main() { var z = even(6); return z; }
"""

PROGRAMS = {
    "chain": CHAIN_PROGRAM,
    "fact": FACT_PROGRAM,
    "even_odd": EVEN_ODD_PROGRAM,
}


def cfgs_of(source):
    return build_program_cfgs(parse_program(source))


def _fresh_copy(cfgs):
    return {name: cfg.copy() for name, cfg in cfgs.items()}


def _pure_numeric(expr):
    """Call-free arithmetic: safe to perturb, commute, and wrap in ``0 +``."""
    if isinstance(expr, (A.IntLit, A.Var)):
        return True
    if isinstance(expr, A.BinOp) and expr.op in ("+", "-", "*"):
        return _pure_numeric(expr.left) and _pure_numeric(expr.right)
    return False


def _editable_sites(cfgs):
    """Every ``(procedure, statement)`` with a perturbable assignment."""
    sites = []
    for name in sorted(cfgs):
        for edge in cfgs[name].edges:
            stmt = edge.stmt
            if isinstance(stmt, A.AssignStmt) and _pure_numeric(stmt.value):
                sites.append((name, stmt))
    return sites


def _replace(match_text, new_stmt):
    """An ``edit_procedure`` callback replacing the statement printing as
    ``match_text`` (statement identity does not survive splices; the
    deterministic print does)."""
    def edit(procedure_engine):
        edge = next(e for e in procedure_engine.cfg.edges
                    if str(e.stmt) == match_text)
        procedure_engine.replace_statement(edge, new_stmt)
    return edit


# ---------------------------------------------------------------------------
# The hard invariant: cutoff changes only latency, never any answer
# ---------------------------------------------------------------------------


def _drive_random_stream(engine, seed, steps=4):
    """Random interleaving of value-preserving commutes and semantic
    perturbation/revert pairs, querying after every edit."""
    rng = random.Random(seed)
    for _step in range(steps):
        sites = _editable_sites(engine.cfgs)
        procedure, stmt = rng.choice(sites)
        if rng.random() < 0.5 and isinstance(stmt.value, A.BinOp) \
                and stmt.value.op in ("+", "*"):
            # Value-preserving commute: new text, same abstract value.
            swapped = A.AssignStmt(stmt.target, A.BinOp(
                stmt.value.op, stmt.value.right, stmt.value.left))
            engine.edit_procedure(procedure, _replace(str(stmt), swapped))
            engine.query_entry_exit()
        else:
            # Semantic perturbation, then its revert.
            perturbed = A.AssignStmt(stmt.target, A.BinOp(
                "+", stmt.value, A.IntLit(rng.randint(1, 3))))
            engine.edit_procedure(procedure, _replace(str(stmt), perturbed))
            engine.query_entry_exit()
            engine.edit_procedure(procedure, _replace(str(perturbed), stmt))
            engine.query_entry_exit()


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES),
       program=st.sampled_from(sorted(PROGRAMS)))
def test_cutoff_never_changes_any_answer(seed, policy_name, program):
    """The hard invariant, recursion included: a cutoff-enabled and a
    cutoff-disabled engine driven through the identical random edit stream
    end digest-equal under every policy.  (Recursive programs are where
    the incremental engine's answers are widening-history-dependent, so
    equality with the cutoff-disabled twin — not with from-scratch — is
    the meaningful invariant there; from-scratch equality on non-recursive
    programs is the next property.)"""
    domain = IntervalDomain()
    enabled = InterproceduralEngine(cfgs_of(PROGRAMS[program]), domain,
                                    policy_by_name(policy_name))
    disabled = InterproceduralEngine(cfgs_of(PROGRAMS[program]), domain,
                                     policy_by_name(policy_name),
                                     cutoff=False)
    for engine in (enabled, disabled):
        engine.query_entry_exit()
        _drive_random_stream(engine, seed)
        assert engine.counters["interproc_callsite_scans"] == 0
    assert disabled.counters["interproc_summary_cutoffs"] == 0
    assert enabled.summary_digest() == disabled.summary_digest()


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES))
def test_cutoff_digest_equals_from_scratch(seed, policy_name):
    """After a random stream over the (non-recursive) chain program, the
    cutoff-enabled engine's summary digest equals a from-scratch
    cutoff-disabled engine's on the final program, under every policy."""
    domain = IntervalDomain()
    engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                   policy_by_name(policy_name))
    engine.query_entry_exit()
    _drive_random_stream(engine, seed)
    assert engine.counters["interproc_callsite_scans"] == 0

    oracle = InterproceduralEngine(_fresh_copy(engine.cfgs), domain,
                                   policy_by_name(policy_name), cutoff=False)
    for procedure in engine.queried_roots():
        oracle.query(procedure, oracle.cfgs[procedure].entry)
    assert engine.summary_digest() == oracle.summary_digest()


# ---------------------------------------------------------------------------
# The payoff: value-preserving streams never recompute a caller
# ---------------------------------------------------------------------------


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES))
def test_revert_streams_cut_off_with_zero_caller_recomputation(seed,
                                                               policy_name):
    """Streams of value-preserving edit/revert pairs against *leaf*
    procedures (wrap a right-hand side in ``0 + ...``, then restore it):
    every edit certifies at the summary level and no call site is ever
    dirtied — callers are re-keyed, not recomputed.  (Leaf procedures,
    because an edited procedure's *own* call sites legitimately retract
    and re-record callee contributions during certification.)"""
    domain = IntervalDomain()
    engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                   policy_by_name(policy_name))
    engine.query_entry_exit()
    rng = random.Random(seed)
    before = dict(engine.counters)
    edits = 0
    for _pair in range(3):
        sites = [(name, stmt) for name, stmt in _editable_sites(engine.cfgs)
                 if not engine.callgraph.callees(name)]
        procedure, stmt = rng.choice(sites)
        wrapped = A.AssignStmt(stmt.target,
                               A.BinOp("+", A.IntLit(0), stmt.value))
        engine.edit_procedure(procedure, _replace(str(stmt), wrapped))
        engine.query_entry_exit()
        engine.edit_procedure(procedure, _replace(str(wrapped), stmt))
        engine.query_entry_exit()
        edits += 2
    after = dict(engine.counters)
    assert (after["interproc_summary_cutoffs"]
            - before["interproc_summary_cutoffs"]) == edits
    assert (after["interproc_callsite_dirties"]
            - before["interproc_callsite_dirties"]) == 0
    assert after["interproc_callsite_scans"] == 0
    # Celling the claim: the answers are still exactly right.
    oracle = InterproceduralEngine(_fresh_copy(engine.cfgs), domain,
                                   policy_by_name(policy_name), cutoff=False)
    for procedure in engine.queried_roots():
        oracle.query(procedure, oracle.cfgs[procedure].entry)
    assert engine.summary_digest() == oracle.summary_digest()
