"""Tests for the Section 7.2 verification clients (array safety, shape)."""

import pytest

from repro.analysis import (
    ArraySafetyClient,
    ShapeVerificationClient,
    collect_array_accesses,
    procedure_returns_pointer,
)
from repro.interproc import policy_by_name
from repro.lang import build_cfg, build_program_cfgs, parse_program
from repro.lang.programs import (
    ARRAY_PROGRAMS,
    LIST_PROGRAMS,
    all_array_programs,
    array_program,
    list_program,
)


class TestAccessCollection:
    def test_reads_and_writes_are_collected(self):
        cfg = build_program_cfgs(array_program("swap"))["main"]
        accesses = collect_array_accesses("main", cfg)
        kinds = [access.kind for access in accesses]
        assert kinds.count("write") == 2
        assert kinds.count("read") >= 3

    def test_reads_inside_conditions_are_collected(self):
        cfg = build_program_cfgs(array_program("count"))["main"]
        accesses = collect_array_accesses("main", cfg)
        assert any(access.kind == "read" for access in accesses)

    def test_access_description(self):
        cfg = build_program_cfgs(array_program("fill"))["main"]
        access = collect_array_accesses("main", cfg)[0]
        assert "main" in access.describe()

    def test_suite_contains_at_least_eighty_five_accesses(self):
        total = 0
        for name, program in all_array_programs().items():
            cfgs = build_program_cfgs(program)
            for procedure, cfg in cfgs.items():
                total += len(collect_array_accesses(procedure, cfg))
        assert total >= 85  # the paper's suite has 85 accesses
        assert len(ARRAY_PROGRAMS) == 23  # and 23 programs


class TestArraySafetyClient:
    def test_simple_bounded_loop_is_verified(self):
        cfgs = build_program_cfgs(array_program("sum"))
        report = ArraySafetyClient(cfgs, policy_by_name("insensitive")).check("sum")
        assert report.verified == report.total > 0

    def test_unbounded_index_is_not_verified(self):
        cfgs = build_program_cfgs(parse_program("""
            function main(i) {
              var a = [1, 2, 3];
              var v = a[i];
              return v;
            }"""))
        report = ArraySafetyClient(cfgs, policy_by_name("insensitive")).check("raw")
        assert report.verified == 0 and report.total == 1

    def test_guarded_index_is_verified(self):
        cfgs = build_program_cfgs(parse_program("""
            function main(i) {
              var a = [1, 2, 3];
              var v = 0;
              if (i >= 0) {
                if (i < a.length) {
                  v = a[i];
                }
              }
              return v;
            }"""))
        report = ArraySafetyClient(cfgs, policy_by_name("insensitive")).check("guarded")
        assert report.verified == report.total == 1

    def test_context_sensitivity_precision_staircase(self):
        """More context sensitivity verifies at least as many accesses, and
        strictly more across the suite (the Section 7.2 staircase)."""
        totals = {}
        for policy_name in ("insensitive", "1-call-site", "2-call-site"):
            verified = 0
            total = 0
            for name in ("get_helper", "get_mixed", "first_last", "peek_ends",
                         "safe_reads", "interleave"):
                cfgs = build_program_cfgs(array_program(name))
                report = ArraySafetyClient(
                    cfgs, policy_by_name(policy_name)).check(name)
                verified += report.verified
                total += report.total
            totals[policy_name] = (verified, total)
        assert totals["insensitive"][1] == totals["2-call-site"][1]
        assert (totals["insensitive"][0] <= totals["1-call-site"][0]
                <= totals["2-call-site"][0])
        assert totals["insensitive"][0] < totals["2-call-site"][0]

    def test_helpers_only_counted_when_called(self):
        cfgs = build_program_cfgs(array_program("sum"))
        report = ArraySafetyClient(
            cfgs, policy_by_name("insensitive")).check("sum")
        procedures = {verdict.access.procedure for verdict in report.verdicts}
        assert procedures == {"main"}

    def test_report_summary_format(self):
        cfgs = build_program_cfgs(array_program("fill"))
        report = ArraySafetyClient(cfgs, policy_by_name("1-call-site")).check("fill")
        assert "fill" in report.summary() and "1-call-site" in report.summary()


class TestShapeClient:
    def test_append_verdict_matches_paper(self):
        client = ShapeVerificationClient()
        verdict = client.verify_program(list_program("append"))["append"]
        assert verdict.memory_safe
        assert verdict.returns_wellformed_list is True
        assert verdict.demanded_unrollings == 1

    @pytest.mark.parametrize("name", sorted(LIST_PROGRAMS))
    def test_all_list_programs_are_memory_safe(self, name):
        client = ShapeVerificationClient()
        verdict = client.verify_program(list_program(name))[name]
        assert verdict.memory_safe, verdict.faults

    def test_numeric_returns_skip_wellformedness(self):
        program = list_program("length")
        assert not procedure_returns_pointer(program.procedure("length"))
        verdict = ShapeVerificationClient().verify_program(program)["length"]
        assert verdict.returns_wellformed_list is None

    def test_pointer_returns_checked(self):
        program = list_program("prepend")
        assert procedure_returns_pointer(program.procedure("prepend"))

    def test_broken_program_is_flagged(self):
        program = parse_program("""
            function bad(p) {
              var x = p.next;
              return x;
            }""", entry="bad")
        verdict = ShapeVerificationClient().verify_program(program)["bad"]
        assert not verdict.memory_safe

    def test_verify_cfg_direct(self, shape_domain):
        cfg = build_cfg(list_program("foreach").procedure("foreach"))
        verdict = ShapeVerificationClient(shape_domain).verify_cfg(cfg, True)
        assert verdict.memory_safe and verdict.returns_wellformed_list
