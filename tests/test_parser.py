"""Unit tests for the parser of the JavaScript-like subset."""

import pytest

from repro.lang import ast as A
from repro.lang.parser import ParseError, parse_expression, parse_procedure, parse_program
from repro.lang.programs import ARRAY_PROGRAMS, LIST_PROGRAMS


class TestExpressions:
    def test_integer_literal(self):
        assert parse_expression("42") == A.IntLit(42)

    def test_precedence_multiplication_over_addition(self):
        expr = parse_expression("1 + 2 * 3")
        assert expr == A.BinOp("+", A.IntLit(1), A.BinOp("*", A.IntLit(2), A.IntLit(3)))

    def test_parentheses_override_precedence(self):
        expr = parse_expression("(1 + 2) * 3")
        assert expr == A.BinOp("*", A.BinOp("+", A.IntLit(1), A.IntLit(2)), A.IntLit(3))

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse_expression("i < n - 1")
        assert isinstance(expr, A.BinOp) and expr.op == "<"
        assert expr.right == A.BinOp("-", A.Var("n"), A.IntLit(1))

    def test_logical_operators(self):
        expr = parse_expression("a < 1 && b > 2 || c == 3")
        assert isinstance(expr, A.BinOp) and expr.op == "||"

    def test_field_and_length_postfix(self):
        assert parse_expression("r.next") == A.FieldRead(A.Var("r"), "next")
        assert parse_expression("a.length") == A.ArrayLen(A.Var("a"))
        nested = parse_expression("r.next.next")
        assert nested == A.FieldRead(A.FieldRead(A.Var("r"), "next"), "next")

    def test_array_read_and_literal(self):
        assert parse_expression("a[i + 1]") == A.ArrayRead(
            A.Var("a"), A.BinOp("+", A.Var("i"), A.IntLit(1)))
        assert parse_expression("[1, 2]") == A.ArrayLit((A.IntLit(1), A.IntLit(2)))
        assert parse_expression("[]") == A.ArrayLit(())

    def test_null_true_false_new(self):
        assert parse_expression("null") == A.NullLit()
        assert parse_expression("true") == A.BoolLit(True)
        assert parse_expression("false") == A.BoolLit(False)
        assert parse_expression("new()") == A.AllocRecord()
        assert parse_expression("new Node()") == A.AllocRecord()

    def test_unary_operators(self):
        assert parse_expression("-x") == A.UnaryOp("-", A.Var("x"))
        assert parse_expression("!done") == A.UnaryOp("!", A.Var("done"))

    def test_trailing_garbage_is_an_error(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra")

    def test_unterminated_expression_is_an_error(self):
        with pytest.raises(ParseError):
            parse_expression("1 +")


class TestStatementsAndProcedures:
    def test_procedure_header(self):
        proc = parse_procedure("function add(a, b) { return a + b; }")
        assert proc.name == "add"
        assert proc.params == ("a", "b")
        assert isinstance(proc.body[0], A.Return)

    def test_var_declaration_and_assignment(self):
        proc = parse_procedure("function f() { var x = 1; x = x + 1; return x; }")
        assert proc.body[0] == A.Assign("x", A.IntLit(1))
        assert isinstance(proc.body[1], A.Assign)

    def test_field_and_array_assignment(self):
        proc = parse_procedure(
            "function f(r, a) { r.next = null; a[0] = 5; return a; }")
        assert proc.body[0] == A.FieldAssign("r", "next", A.NullLit())
        assert proc.body[1] == A.ArrayAssign("a", A.IntLit(0), A.IntLit(5))

    def test_if_else_and_else_if(self):
        proc = parse_procedure("""
            function f(x) {
              if (x < 0) { return 0; } else if (x > 10) { return 10; }
              return x;
            }""")
        outer = proc.body[0]
        assert isinstance(outer, A.If)
        assert isinstance(outer.else_body[0], A.If)

    def test_while_loop(self):
        proc = parse_procedure(
            "function f(n) { var i = 0; while (i < n) { i = i + 1; } return i; }")
        assert isinstance(proc.body[1], A.While)

    def test_calls_statement_and_assignment_forms(self):
        proc = parse_procedure(
            "function f(x) { log(x); var y = helper(x, 1); return y; }")
        assert proc.body[0] == A.Call(None, "log", (A.Var("x"),))
        assert proc.body[1] == A.Call("y", "helper", (A.Var("x"), A.IntLit(1)))

    def test_print_skip_and_bare_return(self):
        proc = parse_procedure(
            'function f() { print("hello"); skip; return; }')
        assert proc.body[0] == A.Print(A.StrLit("hello"))
        assert proc.body[1] == A.Skip()
        assert proc.body[2] == A.Return(None)

    def test_type_annotations_are_ignored(self):
        proc = parse_procedure("function f(p) { var r: List = p; return r; }")
        assert proc.body[0] == A.Assign("r", A.Var("p"))

    def test_comments_are_skipped(self):
        proc = parse_procedure("""
            function f() {
              // line comment
              var x = 1; /* block
              comment */ return x;
            }""")
        assert len(proc.body) == 2

    def test_program_entry_selection(self):
        program = parse_program(
            "function helper() { return 1; } function main() { return 2; }")
        assert program.entry == "main"
        fallback = parse_program("function only() { return 1; }", entry="main")
        assert fallback.entry == "only"

    def test_missing_semicolon_is_an_error(self):
        with pytest.raises(ParseError):
            parse_procedure("function f() { var x = 1 return x; }")

    def test_empty_program_is_an_error(self):
        with pytest.raises(ParseError):
            parse_program("")

    def test_error_reports_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse_procedure("function f() {\n  var x = @;\n}")
        assert excinfo.value.line == 2


class TestProgramCorpus:
    """The shipped subject programs must all parse."""

    @pytest.mark.parametrize("name", sorted(ARRAY_PROGRAMS))
    def test_array_programs_parse(self, name):
        program = parse_program(ARRAY_PROGRAMS[name], entry="main")
        assert "main" in program.names()

    @pytest.mark.parametrize("name", sorted(LIST_PROGRAMS))
    def test_list_programs_parse(self, name):
        program = parse_program(LIST_PROGRAMS[name], entry=name)
        assert name in program.names()
