"""Acceptance tests for incremental DAIG splicing and iterative queries.

These pin down the two headline properties of the incremental engine:

* **Locality** — a structural edit on a large program removes, re-encodes,
  and dirties strictly fewer cells than a from-scratch DAIG build, and
  answering queries afterwards recomputes strictly fewer cells than a fresh
  engine would (the paper's incrementality claim, measured via engine
  stats).
* **Equivalence** — the spliced DAIG's query results are identical to a
  fresh engine's over every location, edit after edit, including when
  consecutive edits are coalesced by :meth:`DaigEngine.batch_edits`.

Plus the iterative-query property: demand chains far deeper than Python's
default recursion limit evaluate without touching ``sys.setrecursionlimit``.
"""

import sys

import pytest

from helpers import random_workload

from repro.daig import DaigEngine, MemoTable
from repro.domains import IntervalDomain, SignDomain
from repro.lang import ast as A
from repro.lang.cfg import Cfg


def empty_cfg():
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg


def grown_engine(domain, seed=5, edits=150):
    """An engine over a large random program, fully evaluated."""
    _generator, steps = random_workload(seed, edits)
    engine = DaigEngine(empty_cfg(), domain)
    with engine.batch_edits():
        for step in steps:
            step.edit.apply_to_engine(engine)
    engine.query_all()
    return engine


def assert_results_match(engine, domain):
    fresh = DaigEngine(engine.cfg.copy(), type(domain)())
    fresh_results = fresh.query_all()
    results = engine.query_all()
    assert set(results) == set(fresh_results)
    for loc, value in results.items():
        assert domain.equal(value, fresh_results[loc]), "mismatch at %d" % loc
    return fresh


class TestSpliceLocality:
    """A structural edit touches the impacted region, not the program."""

    def test_edit_on_large_program_splices_fewer_cells_than_rebuild(self):
        domain = IntervalDomain()
        engine = grown_engine(domain)
        assert len(engine.cfg.reachable_locations()) >= 200

        middle = sorted(engine.cfg.reachable_locations())[
            len(engine.cfg.reachable_locations()) // 2]
        engine.insert_statement_after(middle, A.AssignStmt("v0", A.IntLit(9)))

        report = engine.edit_stats.last_report
        fresh = assert_results_match(engine, domain)
        fresh_cells, fresh_computations = fresh.size()
        touched = (report.cells_removed + report.cells_added
                   + report.cells_dirtied)
        assert touched < fresh_cells
        assert report.values_retained > 0

    def test_query_after_edit_recomputes_fewer_cells_than_fresh_engine(self):
        domain = IntervalDomain()
        engine = grown_engine(domain)
        middle = sorted(engine.cfg.reachable_locations())[
            len(engine.cfg.reachable_locations()) // 2]
        engine.insert_statement_after(middle, A.AssignStmt("v1", A.IntLit(3)))

        computed_before = engine.stats.cells_computed
        engine.query_all()
        incremental_work = engine.stats.cells_computed - computed_before

        fresh = DaigEngine(engine.cfg.copy(), IntervalDomain())
        fresh.query_all()
        assert incremental_work < fresh.stats.cells_computed

    def test_edit_before_exit_leaves_loops_unrolled(self):
        """Unaffected loops keep their demanded unrollings across edits.

        (The previous full-rebuild synchronization rolled *every* loop back
        to its initial two-iterate form on any structural edit.)
        """
        from repro.lang import build_cfg, parse_program
        from helpers import LOOP_SOURCE

        domain = IntervalDomain()
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        engine = DaigEngine(cfg, domain)
        engine.query_all()
        head = engine.cfg.loop_heads()[0]
        unrolled = engine.builder.current_unrolling(engine.daig, head, {})
        assert unrolled >= 2
        pre_exit = engine.cfg.in_edges(engine.cfg.exit)[0].src
        engine.insert_statement_after(pre_exit, A.AssignStmt("z", A.IntLit(1)))
        assert engine.builder.current_unrolling(engine.daig, head, {}) == unrolled
        assert_results_match(engine, domain)


class TestBatchEdits:
    def test_batch_coalesces_to_one_splice(self):
        domain = SignDomain()
        engine = DaigEngine(empty_cfg(), domain)
        _generator, steps = random_workload(seed=3, edits=25)
        splices_before = engine.edit_stats.splices
        with engine.batch_edits():
            for step in steps:
                step.edit.apply_to_engine(engine)
        assert engine.edit_stats.splices == splices_before + 1
        assert engine.edit_stats.edits == 25
        engine.check_consistency()
        assert_results_match(engine, domain)

    def test_nested_batches_join_the_outer_batch(self):
        domain = SignDomain()
        engine = DaigEngine(empty_cfg(), domain)
        with engine.batch_edits():
            engine.insert_statement_after(
                engine.cfg.entry, A.AssignStmt("a", A.IntLit(1)))
            with engine.batch_edits():
                engine.insert_statement_after(
                    engine.cfg.entry, A.AssignStmt("b", A.IntLit(2)))
        assert engine.edit_stats.splices == 1
        engine.check_consistency()
        assert_results_match(engine, domain)

    def test_query_inside_batch_flushes_and_sees_the_edit(self):
        """A mid-batch query must observe the edits made so far, not the
        pre-batch state (clients interleave queries with edit callbacks)."""
        domain = IntervalDomain()
        engine = DaigEngine(empty_cfg(), domain)
        with engine.batch_edits():
            loc = engine.insert_statement_after(
                engine.cfg.entry, A.AssignStmt("k", A.IntLit(7)))
            result = engine.query_location(loc)
            assert domain.numeric_bounds(A.Var("k"), result) == (7, 7)
            engine.insert_statement_after(loc, A.AssignStmt("m", A.IntLit(1)))
        # One splice for the flush, one for the remainder of the batch.
        assert engine.edit_stats.splices == 2
        engine.check_consistency()
        assert_results_match(engine, domain)

    def test_interproc_edit_callback_may_query_mid_edit(self):
        """edit_procedure callbacks that query after a structural edit keep
        working even though the engine batches the callback's edits."""
        from repro.interproc import InterproceduralEngine
        from repro.lang import build_program_cfgs, parse_program

        domain = IntervalDomain()
        cfgs = build_program_cfgs(parse_program("""
            function helper(x) { var y = x + 1; return y; }
            function main() { var r = helper(2); return r; }
        """))
        engine = InterproceduralEngine(cfgs, domain, entry="main")
        engine.query_entry_exit()
        observed = {}

        def callback(procedure_engine):
            loc = procedure_engine.insert_statement_after(
                procedure_engine.cfg.entry, A.AssignStmt("z", A.IntLit(5)))
            observed["mid"] = procedure_engine.query_location(loc)

        engine.edit_procedure("helper", callback)
        assert domain.numeric_bounds(A.Var("z"), observed["mid"]) == (5, 5)
        exit_state = engine.query_entry_exit()
        assert domain.numeric_bounds(A.Var("r"), exit_state) == (3, 3)

    def test_batched_and_unbatched_streams_agree(self):
        domain = IntervalDomain()
        _generator, steps = random_workload(seed=11, edits=30)
        one_by_one = DaigEngine(empty_cfg(), domain)
        for step in steps:
            step.edit.apply_to_engine(one_by_one)
        batched = DaigEngine(empty_cfg(), domain)
        with batched.batch_edits():
            for step in steps:
                step.edit.apply_to_engine(batched)
        left = one_by_one.query_all()
        right = batched.query_all()
        assert set(left) == set(right)
        for loc in left:
            assert domain.equal(left[loc], right[loc])


class TestIterativeQueries:
    def test_deep_demand_chain_at_default_recursion_limit(self):
        limit = sys.getrecursionlimit()
        depth = max(5000, limit * 4)
        cfg = Cfg("deep")
        current = cfg.entry
        for _ in range(depth):
            nxt = cfg.fresh_loc()
            cfg.add_edge(current, A.AssignStmt(
                "x", A.BinOp("+", A.Var("x"), A.IntLit(1))), nxt)
            current = nxt
        cfg.add_edge(current, A.AssignStmt(
            A.RETURN_VARIABLE, A.Var("x")), cfg.exit)
        engine = DaigEngine(cfg, SignDomain())
        engine.query_exit()
        assert engine.stats.cells_computed >= depth
        assert sys.getrecursionlimit() == limit

    def test_engine_does_not_touch_the_recursion_limit(self):
        limit = sys.getrecursionlimit()
        engine = grown_engine(IntervalDomain(), seed=2, edits=60)
        engine.query_all()
        assert sys.getrecursionlimit() == limit


class TestBoundedMemoTable:
    def test_capacity_evicts_least_recently_used(self):
        memo = MemoTable(capacity=2)
        memo.store("f", (1,), "one")
        memo.store("f", (2,), "two")
        found, value = memo.lookup("f", (1,))  # refresh (1,)
        assert found and value == "one"
        memo.store("f", (3,), "three")  # evicts (2,)
        assert memo.lookup("f", (2,)) == (False, None)
        assert memo.lookup("f", (1,)) == (True, "one")
        assert memo.lookup("f", (3,)) == (True, "three")
        assert memo.stats()["evictions"] == 1
        assert len(memo) == 2

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            MemoTable(capacity=0)

    def test_unbounded_table_never_evicts(self):
        memo = MemoTable()
        for i in range(100):
            memo.store("f", (i,), i)
        assert len(memo) == 100
        assert memo.stats()["evictions"] == 0
        assert memo.stats()["capacity"] == -1

    def test_bounded_memo_is_sound_for_analysis(self):
        domain = IntervalDomain()
        _generator, steps = random_workload(seed=7, edits=20)
        bounded = DaigEngine(empty_cfg(), domain, memo=MemoTable(capacity=16))
        unbounded = DaigEngine(empty_cfg(), domain)
        for step in steps:
            step.edit.apply_to_engine(bounded)
            step.edit.apply_to_engine(unbounded)
        left = bounded.query_all()
        right = unbounded.query_all()
        for loc in left:
            assert domain.equal(left[loc], right[loc])
        assert len(bounded.memo) <= 16
