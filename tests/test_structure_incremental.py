"""The incremental CFG structure layer: correctness and locality.

Four properties pin down the new layer:

* **From-scratch equality** — after every edit in a long random stream
  (insertions of statements / conditionals / loops, statement relabels,
  edge removals that delete loops or disconnect regions, and
  locality-defeating fallbacks), the incrementally maintained analysis is
  *identical* to a from-scratch analysis of a copy of the same graph.
* **Statement-only identity** — relabelling a statement leaves the cached
  analysis *object* in place and its dominator/loop structures untouched:
  zero structural recomputation.
* **Live snapshot equality** — the engine's structure snapshot, captured
  once at construction and thereafter updated in place over each edit's
  affected region, stays equal to a fresh ``StructureSnapshot.capture``
  after every edit (including batched edits and interleaved queries).
* **Locality counters** — the acceptance criterion of the refactor:
  statement-only edits perform zero dominator/loop recomputation and zero
  full-CFG snapshot walks; structural edits near the exit do work
  independent of program size.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import random_workload

from repro.daig import DaigEngine
from repro.daig.splice import StructureSnapshot
from repro.domains import IntervalDomain, SignDomain
from repro.lang import ast as A
from repro.lang.cfg import Cfg
from repro.workload.generator import WorkloadGenerator

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

ANALYSIS_FACTS = (
    "reachable", "dominators", "back_pairs", "natural_loops", "loop_heads",
    "heads_by_loc", "containing", "fwd_edges_to", "join_points",
    "has_forward_cycle",
)


def assert_analysis_matches_scratch(cfg, tag=""):
    """The live analysis equals a from-scratch analysis of the same graph."""
    fresh = cfg.copy()
    live, scratch = cfg._analyze(), fresh._analyze()
    for fact in ANALYSIS_FACTS:
        assert getattr(live, fact) == getattr(scratch, fact), (tag, fact)
    assert dict(live.bad_loop_exits) == dict(scratch.bad_loop_exits), (tag, "exits")
    assert cfg.back_edges() == fresh.back_edges(), (tag, "back list")
    assert cfg.forward_edges() == fresh.forward_edges(), (tag, "forward list")
    assert cfg.reverse_postorder() == fresh.reverse_postorder(), (tag, "rpo")


def assert_snapshot_matches_capture(engine, tag=""):
    """The engine's live snapshot equals a from-scratch capture."""
    live = engine._snapshot
    fresh = StructureSnapshot.capture(engine.cfg)
    assert set(live.reachable) == set(fresh.reachable), (tag, "reachable")
    assert live.loc_sigs == fresh.loc_sigs, (tag, "loc_sigs")
    assert live.loop_sigs == fresh.loop_sigs, (tag, "loop_sigs")
    assert live.stmt_cells == fresh.stmt_cells, (tag, "stmt_cells")
    assert live.natural_loops == fresh.natural_loops, (tag, "natural_loops")
    assert live.stmt_keys_by_loc == fresh.stmt_keys_by_loc, (tag, "keys")


def _seed_cfg():
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    return cfg


class TestIncrementalEqualsFromScratch:
    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_edit_stream(self, seed):
        """Insert streams (statements, conditionals, loops) stay equal."""
        generator = WorkloadGenerator(seed=seed, call_probability=0.0)
        cfg = generator.cfg
        cfg.ensure_structure()
        for index in range(25):
            edit = generator.next_edit()
            edit.apply_to_cfg(cfg)
            assert_analysis_matches_scratch(cfg, (seed, index, edit.describe()))

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_stream_with_relabels_and_removals(self, seed):
        """Statement relabels and edge removals (loop deletion, region
        disconnection) interleaved with insertions stay equal, including
        relabels landing while a structural delta is still pending."""
        generator = WorkloadGenerator(seed=seed, call_probability=0.0)
        cfg = generator.cfg
        cfg.ensure_structure()
        rng = random.Random(seed)
        for index in range(30):
            generator.next_edit().apply_to_cfg(cfg)
            if rng.random() < 0.5 and cfg.edges:
                # Relabel before any query: the patch rides the pending delta.
                edge = rng.choice(cfg.edges)
                cfg.replace_edge_statement(
                    edge, A.AssignStmt("r", A.IntLit(index)))
            if rng.random() < 0.25 and len(cfg.edges) > 2:
                cfg.remove_edge(rng.choice(cfg.edges))
            assert_analysis_matches_scratch(cfg, (seed, index))

    def test_loop_deletion_via_back_edge_removal(self):
        cfg = _seed_cfg()
        cfg.insert_loop_after(cfg.entry, A.BinOp("<", A.Var("i"), A.IntLit(3)),
                              [A.AssignStmt("i", A.BinOp("+", A.Var("i"), A.IntLit(1)))])
        cfg.ensure_structure()
        assert len(cfg.loop_heads()) == 1
        head = cfg.loop_heads()[0]
        back = cfg.back_edges_to(head)[0]
        cfg.remove_edge(back)
        assert cfg.loop_heads() == []
        assert_analysis_matches_scratch(cfg, "loop deleted")

    def test_irreducible_fallback_and_recovery(self):
        cfg = Cfg("irr")
        a, b = cfg.fresh_loc(), cfg.fresh_loc()
        cfg.add_edge(cfg.entry, A.AssumeStmt(A.Var("x")), a)
        cfg.ensure_structure()  # start incremental
        cfg.add_edge(cfg.entry, A.AssumeStmt(A.Var("y")), b)
        cfg.add_edge(a, A.SkipStmt(), b)
        cycle_back = cfg.add_edge(b, A.SkipStmt(), a)
        cfg.add_edge(a, A.SkipStmt(), cfg.exit)
        assert not cfg.is_reducible()
        assert_analysis_matches_scratch(cfg, "irreducible")
        cfg.remove_edge(cycle_back)
        assert cfg.is_reducible()
        assert_analysis_matches_scratch(cfg, "recovered")

    def test_wholesale_invalidation_falls_back_to_rebuild(self):
        cfg = _seed_cfg()
        cfg.insert_statement_after(cfg.entry, A.AssignStmt("x", A.IntLit(1)))
        builds_before = cfg.structure_stats()["structure_full_builds"]
        cfg._invalidate()
        cfg.ensure_structure()
        assert cfg.structure_stats()["structure_full_builds"] == builds_before + 1
        assert_analysis_matches_scratch(cfg, "after invalidate")

    @settings(**COMMON_SETTINGS)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_raw_edge_mutations_stay_equal(self, seed):
        """Raw add_edge/remove_edge between arbitrary existing locations
        (not just the structured insert operations) stay equal — including
        edges whose source is outside the refreshed region, e.g. an edge
        out of a loop body into downstream code."""
        generator = WorkloadGenerator(seed=seed, call_probability=0.0)
        cfg = generator.cfg
        generator.generate(12)
        cfg.ensure_structure()
        rng = random.Random(seed)
        added = []
        for index in range(15):
            locs = sorted(cfg.locations)
            src, dst = rng.choice(locs), rng.choice(locs)
            if src != cfg.exit:
                added.append(cfg.add_edge(src, A.SkipStmt(), dst))
            if added and rng.random() < 0.4:
                cfg.remove_edge(added.pop(rng.randrange(len(added))))
            assert_analysis_matches_scratch(cfg, (seed, index))

    def test_added_loop_exit_edge_outside_region_is_detected(self):
        """Regression: an added edge leaving a loop body from a non-head
        location must be flagged even though its *source* is not
        forward-reachable from the edge's destination (it lies outside the
        refreshed region)."""
        cfg = _seed_cfg()
        after = cfg.insert_statement_after(cfg.entry, A.AssignStmt("a", A.IntLit(1)))
        cfg.insert_loop_after(after, A.BinOp("<", A.Var("i"), A.IntLit(3)),
                              [A.AssignStmt("i", A.BinOp("+", A.Var("i"), A.IntLit(1)))])
        cfg.ensure_structure()
        head = cfg.loop_heads()[0]
        body_loc = sorted(cfg.natural_loop(head) - {head})[0]
        cfg.add_edge(body_loc, A.SkipStmt(), cfg.exit)
        violations = cfg.loop_exit_violations()
        assert any(edge.src == body_loc and violated == head
                   for edge, violated in violations)
        assert_analysis_matches_scratch(cfg, "escaping edge")

    def test_relabel_then_remove_in_one_batch_leaves_no_phantom_violation(self):
        """Regression: relabelling a loop-exit-violating edge while a
        structural delta is pending, then removing it in the same batch,
        must not resurrect its violation entry."""
        cfg = _seed_cfg()
        after = cfg.insert_statement_after(cfg.entry, A.AssignStmt("a", A.IntLit(1)))
        cfg.insert_loop_after(after, A.BinOp("<", A.Var("i"), A.IntLit(3)),
                              [A.AssignStmt("i", A.BinOp("+", A.Var("i"), A.IntLit(1)))])
        cfg.ensure_structure()
        head = cfg.loop_heads()[0]
        body_loc = sorted(cfg.natural_loop(head) - {head})[0]
        bad = cfg.add_edge(body_loc, A.SkipStmt(), cfg.exit)  # delta now pending
        relabelled = cfg.replace_edge_statement(bad, A.AssignStmt("z", A.IntLit(2)))
        cfg.remove_edge(relabelled)
        assert cfg.loop_exit_violations() == []
        assert_analysis_matches_scratch(cfg, "repaired")

    def test_region_disconnect_and_reconnect(self):
        cfg = Cfg("u")
        mid, tail = cfg.fresh_loc(), cfg.fresh_loc()
        first = cfg.add_edge(cfg.entry, A.SkipStmt(), mid)
        cfg.add_edge(mid, A.AssignStmt("v", A.IntLit(1)), tail)
        cfg.add_edge(tail, A.AssignStmt("ret", A.NullLit()), cfg.exit)
        cfg.ensure_structure()
        cfg.remove_edge(first)
        assert cfg.reachable_locations() == {cfg.entry}
        assert_analysis_matches_scratch(cfg, "disconnected")
        cfg.add_edge(cfg.entry, A.SkipStmt(), mid)
        assert tail in cfg.reachable_locations()
        assert_analysis_matches_scratch(cfg, "reconnected")


class TestStatementOnlyEdits:
    def test_relabel_preserves_the_analysis_object(self):
        """A statement-only edit patches the live analysis in place: same
        object, same dominator and loop structures (identity, not equality)."""
        generator = WorkloadGenerator(seed=3, call_probability=0.0)
        cfg = generator.cfg
        generator.generate(30)
        cfg.ensure_structure()
        analysis = cfg._analysis
        dominators = analysis.dominators
        loops = analysis.natural_loops
        containing = analysis.containing
        refreshes = cfg.structure_stats()["structure_refreshes"]
        for index, edge in enumerate(list(cfg.edges)[:10]):
            cfg.replace_edge_statement(edge, A.AssignStmt("s", A.IntLit(index)))
            assert cfg._analysis is analysis
            assert analysis.dominators is dominators
            assert analysis.natural_loops is loops
            assert analysis.containing is containing
        stats = cfg.structure_stats()
        assert stats["structure_refreshes"] == refreshes
        assert stats["structure_stmt_patches"] >= 10
        assert_analysis_matches_scratch(cfg, "after relabels")

    def test_relabel_reorders_join_indices_correctly(self):
        """Relabelling one arm of an empty conditional re-sorts the join's
        pre-join indices (they sort on statement text) — the one piece of
        derived structure a statement-only edit may touch."""
        cfg = _seed_cfg()
        join = cfg.insert_conditional_after(
            cfg.entry, A.BinOp(">", A.Var("f"), A.IntLit(0)), [], [])
        cfg.ensure_structure()
        arm = cfg.fwd_edges_to(join)[0][1]
        cfg.replace_edge_statement(arm, A.AssignStmt("zz", A.IntLit(9)))
        assert_analysis_matches_scratch(cfg, "join relabel")


@pytest.mark.parametrize("domain_cls", [IntervalDomain, SignDomain])
class TestLiveSnapshot:
    def test_snapshot_tracks_random_edits(self, domain_cls):
        domain = domain_cls()
        generator, steps = random_workload(seed=17, edits=25)
        engine = DaigEngine(_seed_cfg(), domain)
        rng = random.Random(17)
        for index, step in enumerate(steps):
            step.edit.apply_to_engine(engine)
            assert_snapshot_matches_capture(engine, (index, step.edit.describe()))
            if rng.random() < 0.4 and engine.cfg.edges:
                edge = rng.choice(engine.cfg.edges)
                engine.replace_statement(edge, A.AssignStmt("q", A.IntLit(index)))
                assert_snapshot_matches_capture(engine, (index, "relabel"))
            if rng.random() < 0.3:
                engine.query_all()
        engine.check_consistency()

    def test_snapshot_tracks_batched_edits(self, domain_cls):
        domain = domain_cls()
        generator, steps = random_workload(seed=23, edits=20)
        engine = DaigEngine(_seed_cfg(), domain)
        for start in range(0, len(steps), 5):
            with engine.batch_edits():
                for step in steps[start:start + 5]:
                    step.edit.apply_to_engine(engine)
            assert_snapshot_matches_capture(engine, start)
        engine.check_consistency()


class TestLocalityCounters:
    """The acceptance criterion: per-phase work counters prove the
    O(program) term is gone from the edit path."""

    def _grown_engine(self, edits=120, seed=11):
        generator = WorkloadGenerator(seed=seed, call_probability=0.0)
        engine = DaigEngine(_seed_cfg(), SignDomain())
        for step in generator.generate(edits):
            step.edit.apply_to_engine(engine)
        engine.query_all()
        return engine, generator

    def test_statement_only_edits_do_zero_structure_work(self):
        engine, _generator = self._grown_engine()
        before = engine.edit_stats.as_dict()
        rng = random.Random(1)
        relabels = 20
        for index in range(relabels):
            edge = rng.choice(engine.cfg.edges)
            engine.replace_statement(edge, A.AssignStmt("sv", A.IntLit(index)))
        delta = {key: value - before.get(key, 0)
                 for key, value in engine.edit_stats.as_dict().items()}
        assert delta["structure_refreshes"] == 0
        assert delta["structure_full_builds"] == 0
        assert delta["structure_locs_reanalyzed"] == 0
        assert delta["snapshot_full_captures"] == 0
        assert 0 < delta["snapshot_locs_resigned"] <= relabels
        assert delta["structure_stmt_patches"] == relabels

    def test_tail_insertions_do_size_independent_work(self):
        """A structural edit whose forward region is small (just before the
        exit) re-analyzes a constant neighbourhood at any program size."""
        works = []
        for edits in (60, 120):
            engine, _generator = self._grown_engine(edits=edits)
            before = engine.edit_stats.as_dict()
            for index in range(10):
                loc = engine.cfg.in_edges(engine.cfg.exit)[0].src
                engine.insert_statement_after(
                    loc, A.AssignStmt("t", A.IntLit(index)))
            delta = {key: value - before.get(key, 0)
                     for key, value in engine.edit_stats.as_dict().items()}
            assert delta["structure_full_builds"] == 0, delta
            assert delta["snapshot_full_captures"] == 0, delta
            works.append(delta["structure_locs_reanalyzed"]
                         + delta["snapshot_locs_resigned"])
        assert works[1] <= 2 * works[0] + 40, works

    def test_snapshot_captured_once_at_construction(self):
        """No per-edit full snapshot walk: the capture happens at engine
        construction and ordinary edits update it in place."""
        engine, generator = self._grown_engine(edits=40)
        for step in generator.generate(10):
            step.edit.apply_to_engine(engine)
        # Random mid-program edits may legitimately hit the locality
        # fallback (their forward region covers most of a small program);
        # edits with a small forward region must never re-capture.
        captures = engine.edit_stats.as_dict()["snapshot_full_captures"]
        for index in range(5):
            loc = engine.cfg.in_edges(engine.cfg.exit)[0].src
            engine.insert_statement_after(loc, A.AssignStmt("u", A.IntLit(index)))
        assert engine.edit_stats.as_dict()["snapshot_full_captures"] == captures


class TestEdgeIndices:
    """The edge-position/adjacency indices behind O(1) single edits."""

    def test_replace_with_duplicate_edges_present(self):
        cfg = _seed_cfg()
        join = cfg.insert_conditional_after(
            cfg.entry, A.BinOp(">", A.Var("x"), A.IntLit(0)), [], [])
        # Make the two arm statements *identical* (duplicate edge values).
        first, second = [edge for _i, edge in cfg.fwd_edges_to(join)]
        dup = cfg.replace_edge_statement(first, second.stmt)
        assert cfg.edges.count(dup) == 2
        relabelled = cfg.replace_edge_statement(dup, A.SkipStmt())
        assert cfg.edges.count(relabelled) == 1
        assert cfg.edges.count(dup) == 1
        assert_analysis_matches_scratch(cfg, "duplicates")

    def test_remove_unknown_edge_raises(self):
        from repro.lang.cfg import CfgEdge
        cfg = _seed_cfg()
        ghost = CfgEdge(cfg.entry, A.AssignStmt("g", A.IntLit(1)), cfg.exit)
        with pytest.raises(ValueError):
            cfg.remove_edge(ghost)
        with pytest.raises(ValueError):
            cfg.replace_edge_statement(ghost, A.SkipStmt())

    def test_positions_survive_swap_removal(self):
        cfg = _seed_cfg()
        locs = [cfg.entry]
        for index in range(6):
            locs.append(cfg.insert_statement_after(
                locs[-1], A.AssignStmt("x", A.IntLit(index))))
        edges = list(cfg.edges)
        rng = random.Random(4)
        rng.shuffle(edges)
        for edge in edges[:4]:
            cfg.remove_edge(edge)
            for survivor in cfg.edges:
                assert cfg.replace_edge_statement(survivor, survivor.stmt) == survivor
        assert_analysis_matches_scratch(cfg, "after swap removals")
