"""Tests for initial DAIG construction, demanded queries, and unrolling.

The headline property is Theorem 6.1 (from-scratch consistency): a DAIG
query for the abstract state at any location returns exactly the invariant
the classical batch interpreter computes.  These tests check it for every
shipped domain over the subject-program corpus, along with the structural
properties of ``Dinit`` (Lemma 4.1) and the demanded-unrolling behaviour
(rules Q-Loop-Converge / Q-Loop-Unroll).
"""

import pytest

from repro.ai import BatchAnalyzer, analyze_cfg
from repro.daig import DaigBuilder, DaigEngine, MemoTable
from repro.daig.graph import FIX, JOIN, TRANSFER, WIDEN
from repro.daig.query import QueryEvaluator
from repro.domains import (
    ConstantDomain,
    IntervalDomain,
    OctagonDomain,
    ShapeDomain,
    SignDomain,
)
from repro.lang import ast as A
from repro.lang import build_cfg, build_program_cfgs, parse_program
from repro.lang.programs import append_program, array_program, list_program

from helpers import BRANCH_SOURCE, LOOP_SOURCE, NESTED_SOURCE, random_cfg


class TestInitialConstruction:
    def test_statement_cells_hold_every_forward_and_back_edge(self, loop_cfg,
                                                              interval_domain):
        daig = DaigBuilder(loop_cfg, interval_domain).build()
        stmt_values = [daig.value(name) for name in daig.refs
                       if name.kind == "stmt"]
        assert len(stmt_values) == loop_cfg.size()
        for edge in loop_cfg.edges:
            assert edge.stmt in stmt_values

    def test_entry_cell_holds_initial_state(self, branch_cfg, interval_domain):
        builder = DaigBuilder(branch_cfg, interval_domain)
        daig = builder.build()
        entry = builder.state_name(branch_cfg.entry, {})
        assert daig.value(entry) == interval_domain.initial(branch_cfg.params)

    def test_initial_daig_is_well_formed(self, nested_cfg, interval_domain):
        DaigBuilder(nested_cfg, interval_domain).build().check_well_formed()

    def test_join_points_get_join_computations(self, branch_cfg, interval_domain):
        builder = DaigBuilder(branch_cfg, interval_domain)
        daig = builder.build()
        join_loc = next(iter(branch_cfg.join_points()))
        comp = daig.defining(builder.state_name(join_loc, {}))
        assert comp.func == JOIN
        assert len(comp.srcs) == 2

    def test_loops_get_fix_widen_and_prewiden(self, loop_cfg, interval_domain):
        builder = DaigBuilder(loop_cfg, interval_domain)
        daig = builder.build()
        head = loop_cfg.loop_heads()[0]
        fix_comp = daig.defining(builder.fix_name(head, {}))
        assert fix_comp.func == FIX
        assert fix_comp.srcs[0].iteration_of(head) == 0
        assert fix_comp.srcs[1].iteration_of(head) == 1
        widen_comp = daig.defining(fix_comp.srcs[1])
        assert widen_comp.func == WIDEN

    def test_nested_loops_have_their_own_fix_cells(self, nested_cfg, interval_domain):
        builder = DaigBuilder(nested_cfg, interval_domain)
        daig = builder.build()
        for head in nested_cfg.loop_heads():
            assert daig.defining(builder.fix_name(head, {})) is not None

    def test_acyclic_despite_loops(self, nested_cfg, interval_domain):
        daig = DaigBuilder(nested_cfg, interval_domain).build()
        daig.check_well_formed()  # includes the acyclicity check

    def test_multiple_back_edges_to_one_head_rejected(self, interval_domain):
        from repro.lang.cfg import Cfg
        cfg = Cfg("bad")
        head = cfg.fresh_loc()
        a, b = cfg.fresh_loc(), cfg.fresh_loc()
        cfg.add_edge(cfg.entry, A.SkipStmt(), head)
        cfg.add_edge(head, A.AssumeStmt(A.Var("c")), a)
        cfg.add_edge(head, A.AssumeStmt(A.Var("d")), b)
        cfg.add_edge(a, A.SkipStmt(), head)
        cfg.add_edge(b, A.SkipStmt(), head)
        cfg.add_edge(head, A.SkipStmt(), cfg.exit)
        with pytest.raises(ValueError):
            DaigBuilder(cfg, interval_domain).build()


class TestDemandedUnrolling:
    def test_unroll_slides_fix_forward_and_stays_well_formed(
            self, loop_cfg, interval_domain):
        builder = DaigBuilder(loop_cfg, interval_domain)
        daig = builder.build()
        head = loop_cfg.loop_heads()[0]
        assert builder.current_unrolling(daig, head, {}) == 1
        new_iteration = builder.unroll(daig, head, {})
        assert new_iteration == 2
        assert builder.current_unrolling(daig, head, {}) == 2
        daig.check_well_formed()

    def test_roll_resets_to_two_iterates(self, loop_cfg, interval_domain):
        builder = DaigBuilder(loop_cfg, interval_domain)
        daig = builder.build()
        head = loop_cfg.loop_heads()[0]
        builder.unroll(daig, head, {})
        builder.unroll(daig, head, {})
        builder.roll(daig, head, {})
        assert builder.current_unrolling(daig, head, {}) == 1
        daig.check_well_formed()
        assert not any(name.mentions_head_iteration(head, 2) for name in daig.refs)

    def test_queries_unroll_only_until_convergence(self, loop_cfg, interval_domain):
        engine = DaigEngine(loop_cfg, interval_domain)
        engine.query_location(loop_cfg.exit)
        # The loop counter stabilizes after one widening and the accumulator
        # after a second: two demanded unrollings, far fewer than the ten
        # concrete iterations (and bounded by widening convergence).
        assert engine.stats.unrollings == 2

    def test_non_accumulating_loop_needs_single_unrolling(self, interval_domain):
        cfg = build_cfg(parse_program("""
            function main() {
              var i = 0;
              while (i < 10) { i = i + 1; }
              return i;
            }""").procedure("main"))
        engine = DaigEngine(cfg, interval_domain)
        engine.query_location(cfg.exit)
        assert engine.stats.unrollings == 1

    def test_second_query_reuses_fixed_point(self, loop_cfg, interval_domain):
        engine = DaigEngine(loop_cfg, interval_domain)
        engine.query_location(loop_cfg.exit)
        work_before = engine.stats.cells_computed
        engine.query_location(loop_cfg.exit)
        assert engine.stats.cells_computed == work_before  # pure reuse

    def test_finite_height_domain_needs_no_widening_tricks(self, loop_cfg, sign_domain):
        engine = DaigEngine(loop_cfg, sign_domain)
        result = engine.query_location(loop_cfg.exit)
        assert not sign_domain.is_bottom(result)


class TestMemoTable:
    def test_memo_hits_across_equal_inputs(self, branch_cfg, interval_domain):
        memo = MemoTable()
        engine = DaigEngine(branch_cfg, interval_domain, memo=memo)
        engine.query_location(branch_cfg.exit)
        assert memo.hits + memo.misses > 0
        assert len(memo) > 0

    def test_memo_disabled_never_stores(self, branch_cfg, interval_domain):
        memo = MemoTable(enabled=False)
        engine = DaigEngine(branch_cfg, interval_domain, memo=memo)
        engine.query_location(branch_cfg.exit)
        assert len(memo) == 0

    def test_clearing_memo_is_sound(self, loop_cfg, interval_domain):
        memo = MemoTable()
        engine = DaigEngine(loop_cfg, interval_domain, memo=memo)
        before = engine.query_location(loop_cfg.exit)
        memo.clear()
        engine.insert_statement_after(loop_cfg.entry, A.SkipStmt())
        after = engine.query_location(engine.cfg.exit)
        assert interval_domain.equal(before, after)

    def test_unhashable_inputs_fall_back_to_recompute(self):
        memo = MemoTable()
        assert memo.key("f", ([1, 2],)) is None
        found, _ = memo.lookup("f", ([1, 2],))
        assert not found
        memo.store("f", ([1, 2],), "value")
        assert len(memo) == 0


DOMAINS = {
    "sign": SignDomain,
    "constant": ConstantDomain,
    "interval": IntervalDomain,
    "octagon": OctagonDomain,
}

SOURCES = {
    "loop": LOOP_SOURCE,
    "branch": BRANCH_SOURCE,
    "nested": NESTED_SOURCE,
}


class TestFromScratchConsistency:
    """Theorem 6.1: demanded query results equal the batch fixed point."""

    @pytest.mark.parametrize("domain_name", sorted(DOMAINS))
    @pytest.mark.parametrize("source_name", sorted(SOURCES))
    def test_small_programs_all_locations(self, domain_name, source_name):
        domain = DOMAINS[domain_name]()
        cfg = build_cfg(parse_program(SOURCES[source_name]).procedure("main"))
        batch = analyze_cfg(cfg, domain)
        engine = DaigEngine(cfg.copy(), domain)
        for loc in cfg.reachable_locations():
            assert domain.equal(engine.query_location(loc), batch[loc]), (
                "mismatch at %d (%s/%s)" % (loc, domain_name, source_name))

    @pytest.mark.parametrize("program_name", ["sum", "reverse", "histogram",
                                              "bounded_walk", "sliding_sum"])
    def test_array_subjects_interval(self, program_name, interval_domain):
        cfg = build_program_cfgs(array_program(program_name))["main"]
        batch = analyze_cfg(cfg, interval_domain)
        engine = DaigEngine(cfg.copy(), interval_domain)
        for loc in cfg.reachable_locations():
            assert interval_domain.equal(engine.query_location(loc), batch[loc])

    @pytest.mark.parametrize("program_name", ["append", "foreach", "last", "build"])
    def test_list_subjects_shape(self, program_name, shape_domain):
        cfg = build_program_cfgs(list_program(program_name))[program_name]
        batch = analyze_cfg(cfg, shape_domain)
        engine = DaigEngine(cfg.copy(), shape_domain)
        for loc in cfg.reachable_locations():
            assert shape_domain.equal(engine.query_location(loc), batch[loc])

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_programs_octagon(self, seed, octagon_domain):
        cfg = random_cfg(seed, edits=25)
        batch = analyze_cfg(cfg, octagon_domain)
        engine = DaigEngine(cfg.copy(), octagon_domain)
        for loc in cfg.reachable_locations():
            assert octagon_domain.equal(engine.query_location(loc), batch[loc])

    def test_queries_preserve_well_formedness(self, nested_cfg, interval_domain):
        engine = DaigEngine(nested_cfg, interval_domain)
        for loc in sorted(nested_cfg.reachable_locations()):
            engine.query_location(loc)
            engine.check_consistency()

    def test_demand_computes_less_than_batch(self, interval_domain):
        cfg = build_program_cfgs(array_program("first_last"))["main"]
        batch = BatchAnalyzer(cfg, interval_domain)
        batch.analyze()
        engine = DaigEngine(cfg.copy(), interval_domain)
        # Query only the state after the first statement: far fewer transfers
        # than the exhaustive analysis needed.
        first_loc = cfg.successors(cfg.entry)[0]
        engine.query_location(first_loc)
        assert engine.stats.transfers < batch.transfer_count
