"""Tests for the interprocedural engine, call graphs, and context policies."""

import pytest

from repro.domains import IntervalDomain, OctagonDomain
from repro.interproc import (
    CallGraph,
    CallStringSensitive,
    ContextInsensitive,
    InterproceduralEngine,
    RecursionError_,
    policy_by_name,
)
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program

CALL_PROGRAM = """
function double(x) {
  var r = x + x;
  return r;
}

function main() {
  var a = double(3);
  var b = double(10);
  var c = a + b;
  return c;
}
"""

CHAIN_PROGRAM = """
function leaf(x) {
  return x + 1;
}

function middle(y) {
  var m = leaf(y);
  return m;
}

function main() {
  var small = middle(1);
  var big = middle(100);
  return small + big;
}
"""

RECURSIVE_PROGRAM = """
function f(x) {
  var y = g(x);
  return y;
}
function g(x) {
  var y = f(x);
  return y;
}
function main() { var z = f(1); return z; }
"""


def cfgs_of(source):
    return build_program_cfgs(parse_program(source))


class TestCallGraph:
    def test_edges_and_reachability(self):
        graph = CallGraph(cfgs_of(CHAIN_PROGRAM))
        assert graph.callees("main") == {"middle"}
        assert graph.callees("middle") == {"leaf"}
        assert graph.callers("leaf") == {"middle"}
        assert graph.reachable_from("main") == {"main", "middle", "leaf"}
        assert graph.reachable_from("leaf") == {"leaf"}

    def test_topological_order_puts_callees_first(self):
        graph = CallGraph(cfgs_of(CHAIN_PROGRAM))
        order = graph.topological_order()
        assert order.index("leaf") < order.index("middle") < order.index("main")

    def test_recursion_detected(self):
        graph = CallGraph(cfgs_of(RECURSIVE_PROGRAM))
        with pytest.raises(RecursionError_):
            graph.check_nonrecursive()

    def test_unknown_callees_ignored(self):
        graph = CallGraph(cfgs_of("function main() { log(1); return 0; }"))
        assert graph.callees("main") == set()

    def test_reverse_index_tracks_updates(self):
        cfgs = cfgs_of(CHAIN_PROGRAM)
        graph = CallGraph(cfgs)
        assert graph.callers("middle") == {"main"}
        assert graph.transitive_callers("leaf") == {"middle", "main"}
        # Rewire middle's call from leaf to nothing: its reverse entries
        # must follow without a whole-graph rebuild.
        middle = cfgs["middle"]
        call_edge = next(e for e in middle.edges
                         if isinstance(e.stmt, A.CallStmt))
        middle.replace_edge_statement(call_edge, A.SkipStmt())
        graph.update_procedure("middle", middle)
        assert graph.callers("leaf") == set()
        assert graph.callees("middle") == set()
        assert graph.callers("middle") == {"main"}

    def test_sccs_and_recursive_procedures(self):
        graph = CallGraph(cfgs_of(RECURSIVE_PROGRAM))
        assert graph.scc_of("f") == frozenset({"f", "g"})
        assert graph.recursive_procedures() == {"f", "g"}
        assert graph.is_recursive("f") and not graph.is_recursive("main")
        order = graph.topological_order()
        assert order.index("f") < order.index("main")
        assert order.index("g") < order.index("main")

    def test_self_call_is_recursive(self):
        graph = CallGraph(cfgs_of(
            "function f(x) { var y = f(x); return y; }"
            "function main() { var z = f(1); return z; }"))
        assert graph.is_recursive("f")
        with pytest.raises(RecursionError_):
            graph.check_nonrecursive()


class TestContextPolicies:
    def test_insensitive_always_same_context(self):
        policy = ContextInsensitive()
        site = ("main", A.CallStmt("x", "f", ()))
        assert policy.callee_context((), site) == ()
        assert policy.callee_context(("anything",), site) == ()

    def test_call_string_truncation(self):
        policy = CallStringSensitive(2)
        first = ("main", A.CallStmt("x", "f", ()))
        second = ("f", A.CallStmt("y", "g", ()))
        third = ("g", A.CallStmt("z", "h", ()))
        ctx1 = policy.callee_context((), first)
        ctx2 = policy.callee_context(ctx1, second)
        ctx3 = policy.callee_context(ctx2, third)
        assert len(ctx1) == 1 and len(ctx2) == 2 and len(ctx3) == 2
        assert ctx3[0][0] == "f"  # the oldest site fell off

    def test_policy_by_name(self):
        assert policy_by_name("insensitive").name == "context-insensitive"
        assert policy_by_name("1-call-site").k == 1
        assert policy_by_name("2").k == 2
        with pytest.raises(KeyError):
            policy_by_name("banana")

    def test_invalid_call_string_length(self):
        with pytest.raises(ValueError):
            CallStringSensitive(0)


class TestInterproceduralAnalysis:
    def test_context_sensitive_keeps_call_sites_apart(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       CallStringSensitive(1))
        exit_state = engine.query_entry_exit()
        bounds = domain.numeric_bounds(A.Var("c"), exit_state)
        assert bounds == (26, 26)
        assert len(engine.contexts_of("double")) == 2

    def test_context_insensitive_joins_call_sites(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       ContextInsensitive())
        exit_state = engine.query_entry_exit()
        bounds = domain.numeric_bounds(A.Var("c"), exit_state)
        assert bounds[0] <= 12 and (bounds[1] is None or bounds[1] >= 26)
        assert len(engine.contexts_of("double")) == 1

    def test_two_level_chain_needs_two_call_sites(self):
        domain = IntervalDomain()
        precise = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                        CallStringSensitive(2))
        merged = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(1))
        precise_bounds = domain.numeric_bounds(
            A.Var("ret"), precise.query_entry_exit())
        merged_bounds = domain.numeric_bounds(
            A.Var("ret"), merged.query_entry_exit())
        assert precise_bounds == (103, 103)
        # 1-call-site merges leaf's two transitive callers, losing precision.
        assert merged_bounds != (103, 103)

    def test_recursion_rejected_only_on_opt_in(self):
        # Recursive programs analyze via the SCC summary fixpoint by
        # default; the paper's original restriction is an opt-in validation.
        engine = InterproceduralEngine(cfgs_of(RECURSIVE_PROGRAM),
                                       IntervalDomain())
        assert engine.query_entry_exit() is not None
        with pytest.raises(RecursionError_):
            InterproceduralEngine(cfgs_of(RECURSIVE_PROGRAM), IntervalDomain(),
                                  require_nonrecursive=True)

    def test_unknown_external_calls_are_havocked(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(
            cfgs_of("function main() { var x = mystery(); return x; }"), domain)
        exit_state = engine.query_entry_exit()
        assert domain.numeric_bounds(A.Var("x"), exit_state) == (None, None)

    def test_analyze_everything_covers_all_constructed_daigs(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(2))
        results = engine.analyze_everything()
        analyzed = {name for name, _ctx in results}
        assert analyzed == {"main", "middle", "leaf"}
        stats = engine.total_stats()
        assert stats["daigs"] >= 5  # main + 2 middle contexts + 2 leaf contexts

    def test_query_uncalled_procedure_uses_initial_state(self):
        domain = IntervalDomain()
        cfgs = cfgs_of("""
            function orphan(x) { var y = x + 1; return y; }
            function main() { return 0; }
        """)
        engine = InterproceduralEngine(cfgs, domain)
        result = engine.query("orphan", cfgs["orphan"].exit)
        assert not domain.is_bottom(result)

    def test_octagon_interprocedural(self):
        domain = OctagonDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       CallStringSensitive(1))
        exit_state = engine.query_entry_exit()
        assert exit_state.variable_bounds("c") == (26, 26)


class TestInterproceduralEdits:
    def test_editing_a_callee_dirties_callers(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       CallStringSensitive(1))
        before = domain.numeric_bounds(A.Var("c"), engine.query_entry_exit())
        assert before == (26, 26)

        def edit(procedure_engine):
            target = next(
                edge for edge in procedure_engine.cfg.edges
                if isinstance(edge.stmt, A.AssignStmt) and edge.stmt.target == "r")
            procedure_engine.replace_statement(
                target, A.AssignStmt("r", A.BinOp("+", A.BinOp("+", A.Var("x"),
                                                                A.Var("x")),
                                                  A.IntLit(1))))

        engine.edit_procedure("double", edit)
        after = domain.numeric_bounds(A.Var("c"), engine.query_entry_exit())
        assert after == (28, 28)

    def test_editing_never_scans_daig_ref_sets(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       CallStringSensitive(1))
        engine.query_entry_exit()

        def edit(procedure_engine):
            target = next(
                edge for edge in procedure_engine.cfg.edges
                if isinstance(edge.stmt, A.AssignStmt) and edge.stmt.target == "r")
            procedure_engine.replace_statement(
                target, A.AssignStmt("r", A.BinOp("*", A.Var("x"), A.IntLit(3))))

        engine.edit_procedure("double", edit)
        # The edit itself dirties exactly main's two call cells, via the
        # index; the follow-up query adds per-context exit-change dirtying,
        # still bounded by the dependent sites.
        assert engine.counters["interproc_callsite_dirties"] == 2
        engine.query_entry_exit()
        assert engine.counters["interproc_callsite_scans"] == 0
        assert engine.counters["interproc_callsite_dirties"] <= 8

    def test_repeated_entry_states_hit_the_summary_memo(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(2))
        engine.analyze_everything()
        hits_before = engine.counters["interproc_summary_hits"]
        misses_before = engine.counters["interproc_summary_misses"]
        # Re-demanding the same exits at unchanged entries is pure reuse.
        engine.query_entry_exit()
        assert engine.counters["interproc_summary_misses"] == misses_before
        assert engine.counters["interproc_summary_hits"] >= hits_before

    def test_editing_the_entry_procedure(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CALL_PROGRAM), domain,
                                       CallStringSensitive(1))
        engine.query_entry_exit()

        def edit(procedure_engine):
            procedure_engine.insert_statement_after(
                procedure_engine.cfg.entry, A.AssignStmt("bonus", A.IntLit(1)))

        engine.edit_procedure("main", edit)
        exit_state = engine.query_entry_exit()
        assert domain.numeric_bounds(A.Var("bonus"), exit_state) == (1, 1)
        assert domain.numeric_bounds(A.Var("c"), exit_state) == (26, 26)
