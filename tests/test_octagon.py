"""Tests for the DBM-based octagon domain."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ai import analyze_cfg
from repro.concrete import ConcreteState, collecting_semantics, initial_state
from repro.domains import OctagonDomain
from repro.lang import ast as A
from repro.lang import build_cfg, build_program_cfgs, parse_expression, parse_program
from repro.lang.programs import array_program

from helpers import BRANCH_SOURCE, LOOP_SOURCE, NESTED_SOURCE


@pytest.fixture
def domain():
    return OctagonDomain()


def run(domain, statements, state=None):
    current = state if state is not None else domain.initial()
    for stmt in statements:
        current = domain.transfer(stmt, current)
    return current


class TestTransferPrecision:
    def test_constant_assignment(self, domain):
        state = run(domain, [A.AssignStmt("x", A.IntLit(5))])
        assert state.variable_bounds("x") == (5, 5)

    def test_relational_assignment(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(3)),
            A.AssignStmt("y", parse_expression("x + 2")),
        ])
        assert state.variable_bounds("y") == (5, 5)
        # The relation persists after x is forgotten only through its bounds,
        # but while both are live the difference constraint is exact:
        refined = domain.transfer(A.AssumeStmt(parse_expression("x == 10")), state)
        assert domain.is_bottom(refined)

    def test_invertible_self_increment(self, domain):
        state = run(domain, [
            A.AssignStmt("i", A.IntLit(0)),
            A.AssignStmt("i", parse_expression("i + 1")),
            A.AssignStmt("i", parse_expression("i + 1")),
        ])
        assert state.variable_bounds("i") == (2, 2)

    def test_relation_between_variables_survives_increment(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(0)),
            A.AssignStmt("y", parse_expression("x + 1")),
            A.AssignStmt("x", parse_expression("x + 5")),
            A.AssumeStmt(parse_expression("y == x - 4")),
        ])
        # y = x - 4 is consistent with the tracked relation, not bottom.
        assert not domain.is_bottom(state)

    def test_negated_assignment(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(4)),
            A.AssignStmt("y", parse_expression("-x")),
        ])
        assert state.variable_bounds("y") == (-4, -4)

    def test_assume_upper_and_lower_bounds(self, domain):
        state = run(domain, [
            A.AssumeStmt(parse_expression("x >= 0")),
            A.AssumeStmt(parse_expression("x < 10")),
        ])
        assert state.variable_bounds("x") == (0, 9)

    def test_assume_relational(self, domain):
        state = run(domain, [
            A.AssignStmt("n", A.IntLit(8)),
            A.AssumeStmt(parse_expression("i < n")),
            A.AssumeStmt(parse_expression("i >= 0")),
        ])
        assert state.variable_bounds("i") == (0, 7)

    def test_assume_sum_constraint(self, domain):
        state = run(domain, [
            A.AssumeStmt(parse_expression("x + y <= 4")),
            A.AssumeStmt(parse_expression("x >= 1")),
            A.AssumeStmt(parse_expression("y >= 1")),
        ])
        assert state.variable_bounds("x") == (1, 3)
        assert state.variable_bounds("y") == (1, 3)

    def test_contradiction_is_bottom(self, domain):
        state = run(domain, [
            A.AssumeStmt(parse_expression("x > 5")),
            A.AssumeStmt(parse_expression("x < 3")),
        ])
        assert domain.is_bottom(state)

    def test_equality_assume(self, domain):
        state = run(domain, [A.AssumeStmt(parse_expression("x == y + 2")),
                             A.AssumeStmt(parse_expression("y == 1"))])
        assert state.variable_bounds("x") == (3, 3)

    def test_nonlinear_assignment_falls_back_to_bounds(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(3)),
            A.AssignStmt("y", parse_expression("x * x")),
        ])
        lo, hi = state.variable_bounds("y")
        assert lo is None or lo <= 9
        assert hi is None or hi >= 9

    def test_non_numeric_assignment_forgets(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(3)),
            A.AssignStmt("x", A.NullLit()),
        ])
        assert state.variable_bounds("x") == (None, None)

    def test_call_havocs_target(self, domain):
        state = run(domain, [
            A.AssignStmt("x", A.IntLit(3)),
            A.CallStmt("x", "mystery", ()),
        ])
        assert state.variable_bounds("x") == (None, None)


class TestLatticeOperations:
    def test_join_is_an_upper_bound(self, domain):
        left = run(domain, [A.AssignStmt("x", A.IntLit(1))])
        right = run(domain, [A.AssignStmt("x", A.IntLit(5))])
        joined = domain.join(left, right)
        assert domain.leq(left, joined) and domain.leq(right, joined)
        assert joined.variable_bounds("x") == (1, 5)

    def test_join_with_bottom(self, domain):
        state = run(domain, [A.AssignStmt("x", A.IntLit(1))])
        assert domain.equal(domain.join(state, domain.bottom()), state)
        assert domain.equal(domain.join(domain.bottom(), state), state)

    def test_widen_is_an_upper_bound_and_stabilizes(self, domain):
        older = run(domain, [A.AssignStmt("i", A.IntLit(0))])
        newer = run(domain, [A.AssignStmt("i", A.IntLit(1))])
        widened = domain.widen(older, newer)
        assert domain.leq(domain.join(older, newer), widened)
        assert widened.variable_bounds("i")[1] is None
        again = domain.widen(widened, run(domain, [A.AssignStmt("i", A.IntLit(7))]))
        assert domain.equal(again, widened)

    def test_leq_with_different_variable_sets(self, domain):
        narrow = run(domain, [A.AssignStmt("x", A.IntLit(1))])
        wide = run(domain, [A.AssignStmt("x", A.IntLit(1)),
                            A.AssignStmt("y", A.IntLit(2))])
        assert domain.leq(wide, narrow)
        assert not domain.leq(narrow, wide)

    def test_equality_is_semantic(self, domain):
        a = run(domain, [A.AssumeStmt(parse_expression("x >= 2")),
                         A.AssumeStmt(parse_expression("x <= 2"))])
        b = run(domain, [A.AssignStmt("x", A.IntLit(2))])
        assert domain.equal(a, b)

    def test_states_are_hashable(self, domain):
        a = run(domain, [A.AssignStmt("x", A.IntLit(2))])
        b = run(domain, [A.AssignStmt("x", A.IntLit(2))])
        assert hash(a) == hash(b)
        assert a == b


class TestConcretization:
    def test_models_in_bounds(self, domain):
        state = run(domain, [A.AssumeStmt(parse_expression("x >= 0")),
                             A.AssumeStmt(parse_expression("x <= 5"))])
        assert domain.models(initial_state(x=3), state)
        assert not domain.models(initial_state(x=9), state)

    def test_models_relational(self, domain):
        state = run(domain, [A.AssumeStmt(parse_expression("x < y"))])
        assert domain.models(initial_state(x=1, y=5), state)
        assert not domain.models(initial_state(x=5, y=1), state)

    def test_non_numeric_values_are_unconstrained(self, domain):
        state = run(domain, [A.AssignStmt("x", A.IntLit(1))])
        assert domain.models(initial_state(x=1, p=None), state)

    def test_nothing_models_bottom(self, domain):
        assert not domain.models(initial_state(), domain.bottom())


class TestWholeProgramSoundness:
    @pytest.mark.parametrize("source", [LOOP_SOURCE, BRANCH_SOURCE, NESTED_SOURCE])
    def test_against_collecting_semantics(self, domain, source):
        cfg = build_cfg(parse_program(source).procedure("main"))
        invariants = analyze_cfg(cfg, domain)
        seeds = ([ConcreteState(env={p: v}) for p in cfg.params for v in (-1, 0, 4)]
                 or [ConcreteState()])
        collected = collecting_semantics(cfg, seeds)
        for loc, states in collected.items():
            for concrete in states:
                assert domain.models(concrete, invariants[loc])

    @pytest.mark.parametrize("name", ["sum", "fill", "lastindexof"])
    def test_array_programs(self, domain, name):
        cfg = build_program_cfgs(array_program(name))["main"]
        invariants = analyze_cfg(cfg, domain)
        collected = collecting_semantics(cfg, [ConcreteState()])
        for loc, states in collected.items():
            for concrete in states:
                assert domain.models(concrete, invariants[loc])

    def test_loop_counter_bounds(self, domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        invariants = analyze_cfg(cfg, domain)
        exit_bounds = invariants[cfg.exit].variable_bounds("i")
        assert exit_bounds[0] == 10  # i == 10 at exit (i < 10 fails, i >= 0 + widening)
