"""Unit tests for the AST module: expressions, statements, and helpers."""

import pytest

from repro.lang import ast as A


class TestExpressions:
    def test_var_variables(self):
        assert A.Var("x").variables() == frozenset({"x"})

    def test_literal_variables_empty(self):
        assert A.IntLit(3).variables() == frozenset()
        assert A.BoolLit(True).variables() == frozenset()
        assert A.NullLit().variables() == frozenset()
        assert A.StrLit("hi").variables() == frozenset()

    def test_binop_collects_both_sides(self):
        expr = A.BinOp("+", A.Var("x"), A.BinOp("*", A.Var("y"), A.IntLit(2)))
        assert expr.variables() == frozenset({"x", "y"})

    def test_binop_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            A.BinOp("**", A.IntLit(1), A.IntLit(2))

    def test_unary_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            A.UnaryOp("~", A.IntLit(1))

    def test_array_read_variables(self):
        expr = A.ArrayRead(A.Var("a"), A.Var("i"))
        assert expr.variables() == frozenset({"a", "i"})

    def test_field_read_variables(self):
        assert A.FieldRead(A.Var("r"), "next").variables() == frozenset({"r"})

    def test_walk_visits_all_subexpressions(self):
        expr = A.BinOp("+", A.ArrayRead(A.Var("a"), A.IntLit(0)), A.Var("b"))
        kinds = [type(node).__name__ for node in expr.walk()]
        assert kinds.count("Var") == 2
        assert "ArrayRead" in kinds and "IntLit" in kinds

    def test_structural_equality_and_hash(self):
        left = A.BinOp("<", A.Var("i"), A.IntLit(5))
        right = A.BinOp("<", A.Var("i"), A.IntLit(5))
        assert left == right
        assert hash(left) == hash(right)
        assert left != A.BinOp("<", A.Var("i"), A.IntLit(6))


class TestNegate:
    @pytest.mark.parametrize("op,flipped", [
        ("==", "!="), ("!=", "=="), ("<", ">="), ("<=", ">"),
        (">", "<="), (">=", "<"),
    ])
    def test_comparisons_are_flipped(self, op, flipped):
        expr = A.BinOp(op, A.Var("x"), A.IntLit(1))
        negated = A.negate(expr)
        assert isinstance(negated, A.BinOp)
        assert negated.op == flipped

    def test_double_negation_of_not(self):
        inner = A.Var("flag")
        assert A.negate(A.UnaryOp("!", inner)) == inner

    def test_boolean_literal(self):
        assert A.negate(A.BoolLit(True)) == A.BoolLit(False)

    def test_fallback_wraps_in_not(self):
        expr = A.BinOp("&&", A.Var("a"), A.Var("b"))
        assert A.negate(expr) == A.UnaryOp("!", expr)


class TestAtomicStatements:
    def test_assign_defs_uses(self):
        stmt = A.AssignStmt("x", A.BinOp("+", A.Var("y"), A.IntLit(1)))
        assert stmt.defs() == frozenset({"x"})
        assert stmt.uses() == frozenset({"y"})
        assert stmt.variables() == frozenset({"x", "y"})

    def test_assume_has_no_defs(self):
        stmt = A.AssumeStmt(A.BinOp("<", A.Var("i"), A.Var("n")))
        assert stmt.defs() == frozenset()
        assert stmt.uses() == frozenset({"i", "n"})

    def test_array_write_defs_and_uses(self):
        stmt = A.ArrayWriteStmt("a", A.Var("i"), A.Var("v"))
        assert stmt.defs() == frozenset({"a"})
        assert "a" in stmt.uses() and "i" in stmt.uses() and "v" in stmt.uses()

    def test_call_defs(self):
        stmt = A.CallStmt("x", "f", (A.Var("y"),))
        assert stmt.defs() == frozenset({"x"})
        assert stmt.uses() == frozenset({"y"})
        assert A.CallStmt(None, "f", ()).defs() == frozenset()

    def test_skip_and_print(self):
        assert A.SkipStmt().variables() == frozenset()
        assert A.PrintStmt(A.Var("x")).uses() == frozenset({"x"})

    def test_string_renderings(self):
        assert str(A.AssignStmt("x", A.IntLit(1))) == "x = 1"
        assert "assume" in str(A.AssumeStmt(A.Var("c")))
        assert str(A.FieldWriteStmt("r", "next", A.NullLit())) == "r.next = null"


class TestProgramStructure:
    def test_program_lookup(self):
        procedure = A.Procedure("f", ("x",), (A.Return(A.Var("x")),))
        program = A.Program((procedure,), entry="f")
        assert program.procedure("f") is procedure
        with pytest.raises(KeyError):
            program.procedure("missing")

    def test_with_procedure_replaces(self):
        first = A.Procedure("f", (), (A.Return(A.IntLit(1)),))
        second = A.Procedure("f", (), (A.Return(A.IntLit(2)),))
        program = A.Program((first,), entry="f").with_procedure(second)
        assert program.procedure("f") is second
        assert len(program.procedures) == 1

    def test_with_procedure_adds(self):
        first = A.Procedure("f", (), (A.Return(A.IntLit(1)),))
        other = A.Procedure("g", (), (A.Return(A.IntLit(2)),))
        program = A.Program((first,), entry="f").with_procedure(other)
        assert set(program.names()) == {"f", "g"}

    def test_block_helper(self):
        stmts = A.block(A.Skip(), A.Return(None))
        assert isinstance(stmts, tuple) and len(stmts) == 2
