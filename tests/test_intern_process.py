"""Cross-process identity of interned abstract states.

The parallel coordinator ships states to worker processes and receives
states back; correctness of the whole seeding scheme rests on every
interned type re-interning through its ``__reduce__`` hook on unpickle,
so that a state that crossed two process boundaries is *pointer-equal* to
the coordinator's canonical object (``summary_digest`` and the O(1)
equality fast paths rely on ``is``).

Each test round-trips instances through a real child interpreter: the
parent pickles states to the child, the child unpickles them (re-interning
into *its* tables), checks in-child canonicalization, re-pickles, and the
parent asserts the returned objects ARE the originals.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import numpy as np

import repro
from repro.daig.names import Name
from repro.domains import OctagonDomain
from repro.domains.nonrel import ArraySummary, EnvState, ScalarValue
from repro.domains.octagon import OctagonState
from repro.domains.values import Constant, Interval

#: The child re-interns on load, asserts loads(dumps(x)) is x locally,
#: and ships the states back for the parent-side identity check.
CHILD_SCRIPT = r"""
import pickle, sys
states = pickle.loads(sys.stdin.buffer.read())
for state in states:
    again = pickle.loads(pickle.dumps(state, protocol=4))
    assert again is state, type(state).__name__
sys.stdout.buffer.write(pickle.dumps(states, protocol=4))
"""


def _round_trip_through_child(states):
    env = dict(os.environ)
    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src_dir, env.get("PYTHONPATH")) if part)
    completed = subprocess.run(
        [sys.executable, "-c", CHILD_SCRIPT],
        input=pickle.dumps(states, protocol=4),
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, check=False)
    assert completed.returncode == 0, completed.stderr.decode()
    return pickle.loads(completed.stdout)


def _sample_states():
    """One representative of each of the seven interned types."""
    interval = Interval.make(-3, 17)
    scalar = ScalarValue(interval, False, True)
    return [
        Name("stmt", 4, 7, index=2),
        interval,
        Constant("const", 42),
        scalar,
        ArraySummary(Interval.make(0, 9), scalar),
        EnvState((("x", scalar), ("y", ScalarValue(Interval.top(),
                                                   True, False)))),
        OctagonDomain().initial(["x", "y"]),
    ]


def test_every_interned_type_round_trips_to_the_same_object():
    states = _sample_states()
    returned = _round_trip_through_child(states)
    assert len(returned) == len(states)
    for original, received in zip(states, returned):
        assert received is original, type(original).__name__


def test_nested_unpickle_reinterns_components_too():
    """Unpickling a compound state must also canonicalize its parts: the
    env's scalars and intervals come back pointer-equal, not just the env."""
    interval = Interval.make(1, 5)
    scalar = ScalarValue(interval, False, False)
    env = EnvState((("v", scalar),))
    (received,) = _round_trip_through_child([env])
    assert received is env
    rebuilt = pickle.loads(pickle.dumps(env, protocol=4))
    assert rebuilt is env
    assert rebuilt.bindings[0][1] is scalar


def test_octagon_closed_flag_survives_the_boundary():
    """``closed`` sits OUTSIDE the octagon intern key (it is a monotone
    cache bit, not part of the abstract value), so a closed state returning
    from a worker must re-intern onto the parent's canonical object and
    must never downgrade its flag."""
    domain = OctagonDomain()
    state = domain.initial(["x"])
    assert state.closed
    (received,) = _round_trip_through_child([state])
    assert received is state
    assert state.closed
    # An equal-matrix unclosed variant still lands on the same (closed)
    # canonical object after a local round trip.
    variant = OctagonState(state.variables, np.array(state.matrix),
                           closed=False)
    assert variant is state
    assert state.closed


def test_bottom_octagon_round_trips():
    domain = OctagonDomain()
    bottom = domain.bottom()
    (received,) = _round_trip_through_child([bottom])
    assert received is bottom
