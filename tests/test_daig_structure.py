"""Tests for DAIG names, the graph structure, and well-formedness checking."""

import pytest

from repro.daig import names as N
from repro.daig.graph import (
    Computation,
    Daig,
    FIX,
    IllFormedDaigError,
    JOIN,
    TRANSFER,
    WIDEN,
)


class TestNames:
    def test_structural_equality(self):
        assert N.state_name(3, [7], {7: 1}) == N.state_name(3, [7], {7: 1})
        assert N.state_name(3, [7], {7: 1}) != N.state_name(3, [7], {7: 2})
        assert N.stmt_name(1, 2) != N.stmt_name(2, 1)

    def test_names_are_hashable_and_usable_as_keys(self):
        table = {N.stmt_name(0, 1): "a", N.fix_name(5, [], {}): "b"}
        assert table[N.stmt_name(0, 1)] == "a"

    def test_cell_types(self):
        assert N.stmt_name(0, 1).cell_type() == N.TYPE_STMT
        assert N.state_name(0, [], {}).cell_type() == N.TYPE_STATE
        assert N.fix_name(3, [], {}).cell_type() == N.TYPE_STATE

    def test_iteration_of(self):
        name = N.state_name(4, [2, 3], {2: 1, 3: 5})
        assert name.iteration_of(2) == 1
        assert name.iteration_of(3) == 5
        assert name.iteration_of(99) == 0

    def test_prewiden_iteration(self):
        name = N.prewiden_name(3, 4, [3], {})
        assert name.iteration_of(3) == 4
        assert name.mentions_head_iteration(3, 2)
        assert not name.mentions_head_iteration(3, 5)

    def test_fix_name_excludes_own_head(self):
        name = N.fix_name(3, [2, 3], {2: 1})
        assert dict(name.iters) == {2: 1}

    def test_mentions_head_iteration(self):
        name = N.state_name(9, [4], {4: 3})
        assert name.mentions_head_iteration(4, 2)
        assert name.mentions_head_iteration(4, 3)
        assert not name.mentions_head_iteration(4, 4)
        assert not name.mentions_head_iteration(5, 1)

    def test_renderings_are_distinct(self):
        rendered = {str(N.state_name(1, [], {})), str(N.fix_name(1, [], {})),
                    str(N.stmt_name(1, 2)), str(N.prejoin_name(1, 2, [], {})),
                    str(N.prewiden_name(1, 2, [], {}))}
        assert len(rendered) == 5


def simple_daig():
    """entry --stmt--> out, as a minimal transfer DAIG."""
    daig = Daig()
    entry = N.state_name(0, [], {})
    out = N.state_name(1, [], {})
    stmt = N.stmt_name(0, 1)
    daig.add_ref(entry)
    daig.add_ref(stmt)
    daig.set_value(entry, "phi0")
    daig.set_value(stmt, "skip")
    daig.add_computation(out, TRANSFER, (stmt, entry))
    return daig, entry, stmt, out


class TestDaigStructure:
    def test_add_and_query_cells(self):
        daig, entry, stmt, out = simple_daig()
        assert daig.has_value(entry)
        assert not daig.has_value(out)
        assert daig.defining(out).func == TRANSFER
        assert daig.dependents_of(entry) == {out}

    def test_duplicate_destination_rejected(self):
        daig, entry, stmt, out = simple_daig()
        with pytest.raises(IllFormedDaigError):
            daig.add_computation(out, JOIN, (entry,))

    def test_idempotent_recreation_allowed(self):
        daig, entry, stmt, out = simple_daig()
        daig.add_computation(out, TRANSFER, (stmt, entry))  # identical: no error

    def test_replace_computation(self):
        daig, entry, stmt, out = simple_daig()
        other = N.state_name(2, [], {})
        daig.add_ref(other)
        daig.set_value(other, "phi2")
        daig.replace_computation(out, TRANSFER, (stmt, other))
        assert daig.defining(out).srcs[1] == other
        assert out not in daig.dependents_of(entry)

    def test_forward_reachability(self):
        daig, entry, stmt, out = simple_daig()
        further = N.state_name(2, [], {})
        daig.add_computation(further, TRANSFER, (stmt, out))
        assert daig.forward_reachable([entry]) == {out, further}
        assert daig.reaches(entry, further)
        assert not daig.reaches(further, entry)

    def test_well_formedness_passes_on_valid_daig(self):
        daig, *_ = simple_daig()
        daig.check_well_formed()

    def test_cycle_detection(self):
        daig = Daig()
        a = N.state_name(0, [], {})
        b = N.state_name(1, [], {})
        daig.add_computation(b, JOIN, (a,))
        daig.add_computation(a, JOIN, (b,))
        with pytest.raises(IllFormedDaigError):
            daig.check_well_formed()

    def test_empty_cell_without_computation_rejected(self):
        daig = Daig()
        daig.add_ref(N.state_name(0, [], {}))
        with pytest.raises(IllFormedDaigError):
            daig.check_well_formed()

    def test_type_checking_of_computations(self):
        daig = Daig()
        state = N.state_name(0, [], {})
        stmt = N.stmt_name(0, 1)
        daig.add_ref(state)
        daig.set_value(state, "phi")
        daig.add_ref(stmt)
        daig.set_value(stmt, "skip")
        # Transfer with swapped inputs is ill-typed.
        daig.add_computation(N.state_name(1, [], {}), TRANSFER, (state, stmt))
        with pytest.raises(IllFormedDaigError):
            daig.check_well_formed()

    def test_writing_to_statement_cells_is_ill_typed(self):
        daig = Daig()
        state = N.state_name(0, [], {})
        daig.add_ref(state)
        daig.set_value(state, "phi")
        daig.add_computation(N.stmt_name(0, 1), JOIN, (state,))
        with pytest.raises(IllFormedDaigError):
            daig.check_well_formed()

    def test_fix_and_widen_arity_checked(self):
        daig = Daig()
        a, b, c = (N.state_name(i, [], {}) for i in range(3))
        for name in (a, b):
            daig.add_ref(name)
            daig.set_value(name, "phi")
        daig.add_computation(c, WIDEN, (a,))
        with pytest.raises(IllFormedDaigError):
            daig.check_well_formed()

    def test_remove_ref_clears_value_and_computation(self):
        daig, entry, stmt, out = simple_daig()
        daig.set_value(out, "phi1")
        daig.remove_ref(out)
        assert out not in daig.refs
        assert daig.defining(out) is None

    def test_set_value_requires_declared_ref(self):
        daig = Daig()
        with pytest.raises(KeyError):
            daig.set_value(N.state_name(9, [], {}), "phi")

    def test_size_and_pretty(self):
        daig, *_ = simple_daig()
        cells, comps = daig.size()
        assert cells == 3 and comps == 1
        assert "DAIG with" in daig.pretty()
