"""Properties of the hash-consing layer (``repro.intern``).

Every abstract-state type is *totally* interned: all construction funnels
through a per-type weak-value table, so structural equality coincides with
object identity.  The properties checked here:

* ``intern(a) is intern(b)``  iff  ``a == b`` — constructing from equal
  components yields the very same object; distinct components yield
  distinct objects (for names, scalar values, array summaries,
  environments, intervals, constants, and octagon states).
* The tables hold their entries **weakly**: tearing down an engine releases
  its states, so intern tables cannot leak memory across engine lifetimes.
* The demanded-equals-from-scratch guarantees survive interning, including
  for the octagon domain whose states carry a ``closed`` flag outside the
  intern key.
"""

from __future__ import annotations

import gc

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.ai import analyze_cfg
from repro.daig import DaigEngine
from repro.domains import IntervalDomain, OctagonDomain
from repro.domains.nonrel import ArraySummary, EnvState, ScalarValue
from repro.domains.octagon import OctagonState
from repro.domains.values import Constant, Interval
from repro.daig.names import Name
from repro.intern import all_tables, intern_stats
from repro.lang import ast as A
from repro.lang.cfg import Cfg
from repro.workload.generator import WorkloadGenerator

COMMON_SETTINGS = dict(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

bounds = st.one_of(st.none(), st.integers(min_value=-8, max_value=8))
intervals = st.builds(
    Interval.make,
    st.one_of(st.none(), st.integers(min_value=-8, max_value=8)),
    st.one_of(st.none(), st.integers(min_value=-8, max_value=8)),
)
scalars = st.builds(
    ScalarValue,
    intervals,
    st.booleans(),
    st.booleans(),
)


# ---------------------------------------------------------------------------
# intern(a) is intern(b)  iff  a == b
# ---------------------------------------------------------------------------

@settings(**COMMON_SETTINGS)
@given(lo=bounds, hi=bounds)
def test_interval_identity_iff_equal(lo, hi):
    first = Interval.make(lo, hi)
    second = Interval.make(lo, hi)
    assert first is second
    shifted = Interval.make(lo, None if hi is None else hi + 1)
    assert (shifted is first) == (shifted == first)


@settings(**COMMON_SETTINGS)
@given(kind=st.sampled_from(["top", "bottom", "const"]),
       value=st.integers(min_value=-5, max_value=5))
def test_constant_identity_iff_equal(kind, value):
    first = Constant(kind, value if kind == "const" else 0)
    second = Constant(kind, value if kind == "const" else 0)
    assert first is second
    other = Constant("const", value + 1)
    assert (other is first) == (other == first)


@settings(**COMMON_SETTINGS)
@given(value=scalars, null=st.booleans(), other=st.booleans())
def test_scalar_value_identity_iff_equal(value, null, other):
    first = ScalarValue(value.num, null, other)
    second = ScalarValue(value.num, null, other)
    assert first is second
    flipped = ScalarValue(value.num, not null, other)
    assert flipped is not first
    assert flipped != first


@settings(**COMMON_SETTINGS)
@given(length=intervals, element=scalars)
def test_array_summary_identity_iff_equal(length, element):
    assert ArraySummary(length, element) is ArraySummary(length, element)


@settings(**COMMON_SETTINGS)
@given(names=st.lists(st.sampled_from("abcdef"), unique=True, max_size=4),
       value=scalars)
def test_env_state_identity_iff_equal(names, value):
    bindings = tuple((name, value) for name in sorted(names))
    first = EnvState(bindings)
    second = EnvState(bindings)
    assert first is second
    if bindings:
        smaller = EnvState(bindings[:-1])
        assert smaller is not first
        assert smaller != first
    assert EnvState(bottom=True) is EnvState(bottom=True)
    assert EnvState(bottom=True) is not EnvState(())


@settings(**COMMON_SETTINGS)
@given(kind=st.sampled_from(["state", "fix", "stmt"]),
       loc=st.integers(min_value=0, max_value=50),
       aux=st.integers(min_value=0, max_value=3))
def test_name_identity_iff_equal(kind, loc, aux):
    first = Name(kind, loc, aux)
    second = Name(kind, loc, aux)
    assert first is second
    assert Name(kind, loc + 1, aux) is not first


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=500))
def test_octagon_state_identity_iff_equal(seed):
    domain = OctagonDomain()
    rng = np.random.default_rng(seed)
    state = domain.initial(["x", "y"])
    state = domain.transfer(
        A.AssignStmt("x", A.IntLit(int(rng.integers(-4, 5)))), state)
    rebuilt = OctagonState(state.variables, np.array(state.matrix))
    assert rebuilt is state
    different = domain.transfer(
        A.AssignStmt("y", A.IntLit(99)), state)
    assert different is not state
    assert domain.bottom() is OctagonState((), None, is_bottom=True)


def test_octagon_closed_flag_upgrades_monotonically():
    """Re-interning an equal matrix with ``closed=True`` upgrades the
    canonical object, never downgrades it."""
    domain = OctagonDomain()
    state = domain.initial(["x"])
    assert state.closed
    again = OctagonState(state.variables, np.array(state.matrix), closed=False)
    assert again is state
    assert state.closed  # closed=False re-entry must not clear the flag


# ---------------------------------------------------------------------------
# Weak tables: no leak across engine teardown
# ---------------------------------------------------------------------------

def _run_engine(domain):
    generator = WorkloadGenerator(seed=11, call_probability=0.0)
    steps = generator.generate(12)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
    engine.query_all()
    return engine


def test_intern_tables_release_states_on_engine_teardown():
    """States are retained only while an engine (or other owner) keeps them
    alive; dropping the engine shrinks the weak tables back down."""
    gc.collect()
    before = {table.name: len(table) for table in all_tables()}
    engine = _run_engine(OctagonDomain())
    during = {table.name: len(table) for table in all_tables()}
    assert during["octagon.OctagonState"] > before["octagon.OctagonState"]
    assert during["daig.Name"] > before["daig.Name"]
    del engine
    gc.collect()
    after = {table.name: len(table) for table in all_tables()}
    assert after["octagon.OctagonState"] < during["octagon.OctagonState"]
    assert after["daig.Name"] < during["daig.Name"]


def test_intern_stats_shape():
    """Every registered table reports the counters CI asserts on."""
    stats = intern_stats()
    for expected in ("daig.Name", "octagon.OctagonState", "nonrel.EnvState",
                     "nonrel.ScalarValue", "nonrel.ArraySummary",
                     "values.Interval", "values.Constant"):
        assert expected in stats
        for field in ("entries", "hits", "misses"):
            assert stats[expected][field] >= 0


# ---------------------------------------------------------------------------
# Demanded == from-scratch still holds under interning
# ---------------------------------------------------------------------------

@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_octagon_demanded_matches_batch_with_interning(seed):
    """The octagon ``closed`` flag lives outside the intern key; demanded
    results must still coincide with a from-scratch batch analysis."""
    domain = OctagonDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(8)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
    engine.check_consistency()
    fresh = analyze_cfg(engine.cfg.copy(), domain)
    for loc in engine.cfg.reachable_locations():
        assert domain.equal(engine.query_location(loc), fresh[loc])


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_interval_demanded_matches_batch_with_interning(seed):
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(8)
    cfg = Cfg("main")
    cfg.add_edge(cfg.entry, A.SkipStmt(), cfg.exit)
    engine = DaigEngine(cfg, domain)
    for step in steps:
        step.edit.apply_to_engine(engine)
    fresh = analyze_cfg(engine.cfg.copy(), domain)
    for loc in engine.cfg.reachable_locations():
        demanded = engine.query_location(loc)
        assert domain.equal(demanded, fresh[loc])
        # Under total interning, equal environments are the same object.
        assert demanded is fresh[loc]
