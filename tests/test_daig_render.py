"""Tests for the DAIG rendering / inspection helpers."""

from repro.daig import DaigEngine
from repro.daig.render import describe_dirty_frontier, summarize_daig, to_dot
from repro.lang import ast as A
from repro.lang import build_cfg, parse_program

from helpers import LOOP_SOURCE


def make_engine(interval_domain):
    cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
    return cfg, DaigEngine(cfg, interval_domain)


class TestDotExport:
    def test_dot_contains_every_cell_and_is_balanced(self, interval_domain):
        cfg, engine = make_engine(interval_domain)
        dot = to_dot(engine.daig)
        assert dot.startswith("digraph") and dot.rstrip().endswith("}")
        assert dot.count("shape=box") == cfg.size()
        # One junction node per computation.
        assert dot.count("shape=circle") == len(engine.daig.computations)

    def test_filled_cells_render_differently_after_queries(self, interval_domain):
        cfg, engine = make_engine(interval_domain)
        before = to_dot(engine.daig).count("style=filled")
        engine.query_location(cfg.exit)
        after = to_dot(engine.daig).count("style=filled")
        assert after > before

    def test_function_symbols_appear(self, interval_domain):
        _cfg, engine = make_engine(interval_domain)
        dot = to_dot(engine.daig)
        for symbol in ("⟦·⟧♯", "∇", "fix"):
            assert symbol in dot


class TestSummaries:
    def test_census_counts_are_consistent(self, interval_domain):
        cfg, engine = make_engine(interval_domain)
        census = summarize_daig(engine.daig)
        assert census["statement_cells"] == cfg.size()
        assert census["cells"] == (census["statement_cells"] + census["state_cells"]
                                   + census["prejoin_cells"]
                                   + census["prewiden_cells"] + census["fix_cells"])
        assert census["fix_cells"] == len(cfg.loop_heads())
        assert census["max_unrolling"] == 1

    def test_unrolling_depth_reflected_after_query(self, interval_domain):
        cfg, engine = make_engine(interval_domain)
        engine.query_location(cfg.exit)
        census = summarize_daig(engine.daig)
        assert census["max_unrolling"] >= 2
        assert census["filled_cells"] > cfg.size() + 1

    def test_dirty_frontier_grows_after_an_edit(self, interval_domain):
        cfg, engine = make_engine(interval_domain)
        engine.query_location(cfg.exit)
        clean = len(describe_dirty_frontier(engine.daig))
        engine.insert_statement_after(cfg.entry, A.AssignStmt("k", A.IntLit(1)))
        dirty = len(describe_dirty_frontier(engine.daig))
        assert dirty > clean
