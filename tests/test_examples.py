"""Smoke tests: the shipped examples must run to completion."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Invariant at exit" in out


def test_shape_append_verification(capsys):
    run_example("shape_append_verification.py")
    out = capsys.readouterr().out
    assert "memory-safe=True" in out
    assert "demanded unrollings of the traversal loop: 1" in out


def test_interactive_ide_session(capsys):
    run_example("interactive_ide_session.py", ["10"])
    out = capsys.readouterr().out
    assert "incr+demand" in out


@pytest.mark.slow
def test_array_safety_audit(capsys):
    run_example("array_safety_audit.py")
    out = capsys.readouterr().out
    assert "2-call-site" in out
