"""Tests for the classical batch abstract interpreter (the baseline/oracle)."""

import pytest

from repro.ai import BatchAnalyzer, FixpointDivergenceError, analyze_cfg
from repro.domains import ConstantDomain, IntervalDomain, SignDomain
from repro.domains.base import AbstractDomain
from repro.lang import ast as A
from repro.lang import build_cfg, build_program_cfgs, parse_program
from repro.lang.programs import array_program

from helpers import BRANCH_SOURCE, LOOP_SOURCE, NESTED_SOURCE


class TestInvariants:
    def test_branch_join_precision(self, interval_domain):
        cfg = build_cfg(parse_program(BRANCH_SOURCE).procedure("main"))
        invariants = analyze_cfg(cfg, interval_domain)
        exit_state = invariants[cfg.exit]
        assert interval_domain.numeric_bounds(A.Var("x"), exit_state) == (1, 2)
        assert interval_domain.numeric_bounds(A.Var("y"), exit_state) == (4, 5)

    def test_loop_invariant_with_widening(self, interval_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        invariants = analyze_cfg(cfg, interval_domain)
        exit_state = invariants[cfg.exit]
        lo, hi = interval_domain.numeric_bounds(A.Var("i"), exit_state)
        assert lo == 10 and hi is None  # i >= 10 after `assume !(i < 10)`
        head = cfg.loop_heads()[0]
        head_lo, _ = interval_domain.numeric_bounds(A.Var("i"), invariants[head])
        assert head_lo == 0

    def test_nested_loops_converge(self, interval_domain):
        cfg = build_cfg(parse_program(NESTED_SOURCE).procedure("main"))
        invariants = analyze_cfg(cfg, interval_domain)
        assert not interval_domain.is_bottom(invariants[cfg.exit])

    def test_array_bounds_inside_loop_body(self, interval_domain):
        cfg = build_program_cfgs(array_program("sum"))["main"]
        invariants = analyze_cfg(cfg, interval_domain)
        # Find the location just before the array access a[i]: the state
        # there must bound i within [0, 5] thanks to the loop condition.
        access_edges = [e for e in cfg.edges
                        if isinstance(e.stmt, A.AssignStmt) and "a[i]" in str(e.stmt)]
        assert access_edges
        state = invariants[access_edges[0].src]
        assert interval_domain.numeric_bounds(A.Var("i"), state) == (0, 5)

    def test_unreachable_code_is_bottom(self, interval_domain):
        cfg = build_cfg(parse_program("""
            function main() {
              var x = 1;
              if (x > 5) { x = 99; }
              return x;
            }""").procedure("main"))
        invariants = analyze_cfg(cfg, interval_domain)
        dead = [e.dst for e in cfg.edges
                if isinstance(e.stmt, A.AssumeStmt) and "x > 5" in str(e.stmt)]
        assert interval_domain.is_bottom(invariants[dead[0]])
        exit_bounds = interval_domain.numeric_bounds(A.Var("x"), invariants[cfg.exit])
        assert exit_bounds == (1, 1)

    def test_entry_state_override(self, interval_domain):
        cfg = build_cfg(parse_program(
            "function main(n) { var x = n; return x; }").procedure("main"))
        seeded = interval_domain.transfer(
            A.AssignStmt("n", A.IntLit(3)), interval_domain.initial())
        invariants = BatchAnalyzer(cfg, interval_domain, entry_state=seeded).analyze()
        assert interval_domain.numeric_bounds(A.Var("x"), invariants[cfg.exit]) == (3, 3)

    def test_transfer_count_is_tracked(self, sign_domain):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        analyzer = BatchAnalyzer(cfg, sign_domain)
        analyzer.analyze()
        assert analyzer.transfer_count > cfg.size()

    @pytest.mark.parametrize("domain_cls", [SignDomain, ConstantDomain, IntervalDomain])
    def test_invariant_at_helper(self, domain_cls):
        domain = domain_cls()
        cfg = build_cfg(parse_program(BRANCH_SOURCE).procedure("main"))
        assert not domain.is_bottom(BatchAnalyzer(cfg, domain).invariant_at(cfg.exit))


class _BrokenWideningDomain(IntervalDomain):
    """A deliberately broken domain whose 'widening' never converges."""

    def widen(self, older, newer):  # type: ignore[override]
        return self.join(older, newer)

    def equal(self, left, right):  # type: ignore[override]
        # Pretend states are never equal so iteration cannot stabilize.
        return False


class TestDivergenceGuard:
    def test_broken_widening_is_detected(self):
        cfg = build_cfg(parse_program(LOOP_SOURCE).procedure("main"))
        with pytest.raises(FixpointDivergenceError):
            analyze_cfg(cfg, _BrokenWideningDomain())
