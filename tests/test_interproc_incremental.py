"""Tests for the demanded interprocedural layer: incremental-vs-fresh
equality under edit streams, recursion via the SCC summary fixpoint,
call-string context maintenance, and cross-procedure edit locality."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.concrete.interp import ConcreteError, ProgramInterpreter
from repro.domains import IntervalDomain
from repro.interproc import (
    ENTRY_CONTEXT,
    CallStringSensitive,
    InterproceduralEngine,
    policy_by_name,
)
from repro.lang import ast as A
from repro.lang import build_program_cfgs, parse_program
from repro.lang.programs import bystander_source
from repro.workload import WorkloadGenerator
from repro.workload.edits import relabel_assignment

COMMON_SETTINGS = dict(
    max_examples=10,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = ("insensitive", "1-call-site", "2-call-site")

CHAIN_PROGRAM = """
function leaf(x) {
  return x + 1;
}

function middle(y) {
  var m = leaf(y);
  return m;
}

function main() {
  var small = middle(1);
  var big = middle(100);
  return small + big;
}
"""

FACT_PROGRAM = """
function fact(n) {
  var r = 1;
  if (n > 1) {
    var m = n - 1;
    var s = fact(m);
    r = n * s;
  }
  return r;
}
function main() { var z = fact(5); return z; }
"""

EVEN_ODD_PROGRAM = """
function even(n) { var r = 1; if (n > 0) { var m = n - 1; r = odd(m); } return r; }
function odd(n) { var r = 0; if (n > 0) { var m = n - 1; r = even(m); } return r; }
function main() { var z = even(6); return z; }
"""

RECURSIVE_PROGRAMS = {"fact": FACT_PROGRAM, "even_odd": EVEN_ODD_PROGRAM}


def cfgs_of(source):
    return build_program_cfgs(parse_program(source))


def _fresh_copy(cfgs):
    return {name: cfg.copy() for name, cfg in cfgs.items()}


def _assert_results_equal(domain, incremental, fresh):
    assert set(incremental) == set(fresh)
    for key in incremental:
        assert set(incremental[key]) == set(fresh[key]), key
        for loc, state in incremental[key].items():
            assert domain.equal(state, fresh[key][loc]), (key, loc)


def _drive_edits(engine, steps):
    for step in steps:
        engine.edit_procedure(step.procedure, step.edit.apply_to_engine)
        for procedure, loc in step.query_sites:
            engine.query(procedure, loc)


# ---------------------------------------------------------------------------
# From-scratch consistency under random interprocedural edit streams
# ---------------------------------------------------------------------------


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES))
def test_demanded_equals_from_scratch_after_interproc_edits(seed, policy_name):
    """After a random multi-procedure edit stream, the incrementally
    maintained engine answers every (procedure, context, location) exactly
    like a from-scratch engine on the final program."""
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, queries_per_edit=2)
    workload = generator.generate_multiprocedure(
        edits=8, procedures=4, recursive=False)
    engine = InterproceduralEngine(workload.fresh_cfgs(), domain,
                                   policy_by_name(policy_name))
    engine.analyze_everything()
    _drive_edits(engine, workload.steps)
    engine.collect_garbage()
    incremental = engine.analyze_everything()
    fresh_engine = InterproceduralEngine(_fresh_copy(engine.cfgs), domain,
                                         policy_by_name(policy_name))
    # Issue the same demand on the fresh engine: procedures the incremental
    # engine analyzed from the initial state (bare queries while they had
    # no callers) are queried here too, so both sides hold the same roots.
    for procedure in engine.queried_roots():
        fresh_engine.query(procedure, fresh_engine.cfgs[procedure].entry)
    fresh = fresh_engine.analyze_everything()
    _assert_results_equal(domain, incremental, fresh)
    assert engine.counters["interproc_callsite_scans"] == 0


@settings(**COMMON_SETTINGS)
@given(seed=st.integers(min_value=0, max_value=10_000),
       policy_name=st.sampled_from(POLICIES))
def test_recursive_streams_stay_sound_and_stable(seed, policy_name):
    """Random *recursive* edit streams: the engine converges (no summary
    divergence), re-analysis is stable, and results cover the concrete
    interpreter wherever it terminates."""
    domain = IntervalDomain()
    generator = WorkloadGenerator(seed=seed, queries_per_edit=2)
    workload = generator.generate_multiprocedure(
        edits=8, procedures=4, recursive=True)
    engine = InterproceduralEngine(workload.fresh_cfgs(), domain,
                                   policy_by_name(policy_name))
    _drive_edits(engine, workload.steps)
    engine.collect_garbage()
    first = engine.analyze_everything()
    second = engine.analyze_everything()  # stability: a fixed point
    _assert_results_equal(domain, first, second)
    assert engine.counters["interproc_callsite_scans"] == 0
    # Soundness against the concrete interpreter on terminating runs.
    exit_state = engine.query_entry_exit()
    try:
        result = ProgramInterpreter(
            _fresh_copy(engine.cfgs), fuel=20_000).call("main", [])
    except ConcreteError:
        return  # non-terminating or stuck program: nothing to check
    if isinstance(result, int):
        low, high = domain.numeric_bounds(A.Var(A.RETURN_VARIABLE), exit_state)
        assert low is None or low <= result
        assert high is None or result <= high


# ---------------------------------------------------------------------------
# Edit-time contribution retraction (precision regressions)
# ---------------------------------------------------------------------------


class TestContributionRetraction:
    def test_retraction_cascades_through_callee_entry_changes(self):
        """Shrinking p's exit must also retract q's stale contribution to t:
        retraction is transitive through entry-target changes, so demanded
        results equal from-scratch even two call hops away from the edit."""
        source = """
            function t(w) { return w + 0; }
            function q(b) { var u = t(b); return u; }
            function p() { return 101; }
            function main() { var a = p(); var c = q(a); return c; }
        """
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(source), domain,
                                       policy_by_name("insensitive"))
        engine.analyze_everything()

        def shrink_p(procedure_engine):
            edge = next(e for e in procedure_engine.cfg.edges
                        if isinstance(e.stmt, A.AssignStmt)
                        and e.stmt.target == A.RETURN_VARIABLE)
            procedure_engine.replace_statement(
                edge, A.AssignStmt(A.RETURN_VARIABLE, A.IntLit(2)))

        engine.edit_procedure("p", shrink_p)
        engine.collect_garbage()
        incremental = engine.analyze_everything()
        fresh = InterproceduralEngine(
            _fresh_copy(engine.cfgs), domain,
            policy_by_name("insensitive")).analyze_everything()
        _assert_results_equal(domain, incremental, fresh)

    def test_editing_an_unanalyzed_procedure_keeps_caller_precision(self):
        """Editing a procedure before it was ever demanded must not inject
        the domain's initial (top-parameter) state into its entry."""
        source = """
            function h(x) { return x + 2; }
            function main() { var a = h(5); return a; }
        """
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(source), domain,
                                       policy_by_name("insensitive"))
        engine.edit_procedure("h", lambda pe: pe.insert_statement_after(
            pe.cfg.entry, A.AssignStmt("noise", A.IntLit(1))))
        bounds = domain.numeric_bounds(A.Var("a"), engine.query_entry_exit())
        assert bounds == (7, 7)


# ---------------------------------------------------------------------------
# Recursion via the SCC summary fixpoint
# ---------------------------------------------------------------------------


class TestRecursiveAnalysis:
    @pytest.mark.parametrize("name", sorted(RECURSIVE_PROGRAMS))
    def test_recursive_invariants_cover_concrete_execution(self, name):
        domain = IntervalDomain()
        cfgs = cfgs_of(RECURSIVE_PROGRAMS[name])
        engine = InterproceduralEngine(cfgs, domain)
        exit_state = engine.query_entry_exit()
        concrete = ProgramInterpreter(_fresh_copy(cfgs)).call("main", [])
        low, high = domain.numeric_bounds(A.Var("z"), exit_state)
        assert low is None or low <= concrete
        assert high is None or concrete <= high
        assert engine.counters["interproc_fixpoint_rounds"] > 0

    def test_mutual_recursion_is_precise_on_parity(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(EVEN_ODD_PROGRAM), domain,
                                       CallStringSensitive(1))
        bounds = domain.numeric_bounds(A.Var("z"), engine.query_entry_exit())
        # even/odd only ever return 0 or 1; the summary fixpoint keeps that.
        assert bounds == (0, 1)

    def test_editing_a_recursive_procedure_propagates(self):
        domain = IntervalDomain()
        cfgs = cfgs_of(FACT_PROGRAM)
        engine = InterproceduralEngine(cfgs, domain)
        before = engine.query_entry_exit()
        concrete_before = ProgramInterpreter(_fresh_copy(cfgs)).call("main", [])
        low, high = domain.numeric_bounds(A.Var("z"), before)
        assert low is None or low <= concrete_before
        assert high is None or concrete_before <= high

        def edit(procedure_engine):
            target = next(
                edge for edge in procedure_engine.cfg.edges
                if isinstance(edge.stmt, A.AssignStmt)
                and edge.stmt.target == "r"
                and isinstance(edge.stmt.value, A.IntLit))
            procedure_engine.replace_statement(
                target, A.AssignStmt("r", A.IntLit(-3)))

        engine.edit_procedure("fact", edit)
        after = engine.query_entry_exit()
        # The edited base case changes the concrete result; the demanded
        # re-analysis must still cover it.
        concrete_after = ProgramInterpreter(_fresh_copy(engine.cfgs)).call(
            "main", [])
        assert concrete_after != concrete_before
        low, high = domain.numeric_bounds(A.Var("z"), after)
        assert low is None or low <= concrete_after
        assert high is None or concrete_after <= high


# ---------------------------------------------------------------------------
# Call-string contexts under edit streams
# ---------------------------------------------------------------------------


class TestCallStringEditStreams:
    def _exit_bounds(self, engine, domain):
        return domain.numeric_bounds(A.Var(A.RETURN_VARIABLE),
                                     engine.query_entry_exit())

    def test_precision_ordering_holds_across_edits(self):
        """k=2 stays at least as precise as k=1 at the entry exit,
        before and after each edit of a shared chain program."""
        domain = IntervalDomain()
        one = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                    CallStringSensitive(1))
        two = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                    CallStringSensitive(2))

        def width(bounds):
            low, high = bounds
            if low is None or high is None:
                return float("inf")
            return high - low

        def edit_leaf(procedure_engine):
            target = next(
                edge for edge in procedure_engine.cfg.edges
                if isinstance(edge.stmt, A.AssignStmt)
                and edge.stmt.target == A.RETURN_VARIABLE)
            procedure_engine.replace_statement(
                target, A.AssignStmt(A.RETURN_VARIABLE,
                                     A.BinOp("+", A.Var("x"), A.IntLit(3))))

        assert width(self._exit_bounds(two, domain)) <= width(
            self._exit_bounds(one, domain))
        for engine in (one, two):
            engine.edit_procedure("leaf", edit_leaf)
        bounds_two = self._exit_bounds(two, domain)
        assert width(bounds_two) <= width(self._exit_bounds(one, domain))
        # k=2 separates leaf's transitive call chains: exact result,
        # (1 + 3) + (100 + 3) after the edit.
        assert bounds_two == (107, 107)

    def test_dirtying_reaches_every_live_context(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(2))
        engine.analyze_everything()
        contexts = engine.contexts_of("leaf")
        assert len(contexts) == 2

        def edit_leaf(procedure_engine):
            target = next(
                edge for edge in procedure_engine.cfg.edges
                if isinstance(edge.stmt, A.AssignStmt)
                and edge.stmt.target == A.RETURN_VARIABLE)
            procedure_engine.replace_statement(
                target, A.AssignStmt(A.RETURN_VARIABLE,
                                     A.BinOp("+", A.Var("x"), A.IntLit(10))))

        engine.edit_procedure("leaf", edit_leaf)
        engine.query_entry_exit()
        for context in engine.contexts_of("leaf"):
            exit_state = engine.query(
                "leaf", engine.cfgs["leaf"].exit, context)
            low, high = domain.numeric_bounds(
                A.Var(A.RETURN_VARIABLE), exit_state)
            # Every context reflects the new `+ 10` body.
            assert low is not None and low >= 11

    def test_contexts_stay_consistent_after_call_site_removal(self):
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(1))
        engine.analyze_everything()
        assert len(engine.contexts_of("middle")) == 2

        def drop_second_call(procedure_engine):
            target = [edge for edge in procedure_engine.cfg.edges
                      if isinstance(edge.stmt, A.CallStmt)][1]
            procedure_engine.replace_statement(
                target, A.AssignStmt("big", A.IntLit(7)))

        engine.edit_procedure("main", drop_second_call)
        live = engine.contexts_of("middle", live_only=True)
        assert len(live) == 1
        # Garbage collection retires the orphaned context entirely.
        collected = engine.collect_garbage()
        assert collected >= 1
        assert engine.contexts_of("middle") == live
        # And the surviving analysis matches a from-scratch engine.
        incremental = engine.analyze_everything()
        fresh = InterproceduralEngine(
            _fresh_copy(engine.cfgs), domain,
            CallStringSensitive(1)).analyze_everything()
        _assert_results_equal(domain, incremental, fresh)


# ---------------------------------------------------------------------------
# Engine hygiene: opaque contexts, memo retention, SCC cache
# ---------------------------------------------------------------------------


class TestEngineHygiene:
    def test_unorderable_contexts_are_supported(self):
        """Contexts are opaque hashables: a policy returning frozensets
        (unorderable against each other's procedure twins) must work."""
        from repro.interproc.context import ContextPolicy

        class FrozensetPolicy(ContextPolicy):
            name = "frozenset-of-callers"

            def callee_context(self, caller_context, site):
                previous = (caller_context
                            if isinstance(caller_context, frozenset)
                            else frozenset())
                return previous | {site[0]}

        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       FrozensetPolicy())
        results = engine.analyze_everything()
        assert any(name == "leaf" for name, _ctx in results)

    def test_version_bumps_purge_orphaned_summaries(self):
        """Long edit streams must not leak dead version-stamped summaries
        in the shared (unbounded) memo table."""
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain,
                                       CallStringSensitive(1))
        engine.query_entry_exit()

        def relabel(step):
            def edit(procedure_engine):
                target = next(
                    edge for edge in procedure_engine.cfg.edges
                    if isinstance(edge.stmt, A.AssignStmt)
                    and edge.stmt.target == A.RETURN_VARIABLE)
                procedure_engine.replace_statement(
                    target, A.AssignStmt(A.RETURN_VARIABLE,
                                         A.BinOp("+", A.Var("x"),
                                                 A.IntLit(step))))
            return edit

        def summary_entries():
            return sum(1 for key in engine.memo._table if key[0] == "summary")

        sizes = []
        for step in range(12):
            engine.edit_procedure("leaf", relabel(step))
            engine.query_entry_exit()
            sizes.append(summary_entries())
        # Entries reflect the *live* program version only — no growth with
        # the number of edits.
        assert sizes[-1] <= max(sizes[:3])

    def test_statement_edits_keep_the_scc_cache(self):
        """Statement edits that do not touch call sites must not invalidate
        the SCC condensation (no per-edit Tarjan pass)."""
        domain = IntervalDomain()
        engine = InterproceduralEngine(cfgs_of(CHAIN_PROGRAM), domain)
        engine.query_entry_exit()
        graph = engine.callgraph
        graph.sccs()
        cached = graph._sccs
        assert cached is not None
        engine.edit_procedure("leaf", lambda pe: pe.insert_statement_after(
            pe.cfg.entry, A.AssignStmt("noise", A.IntLit(1))))
        assert graph._sccs is cached  # same object: no recomputation
        # An edit that changes the call-edge set does invalidate it
        # (middle's only call to leaf disappears).
        engine.edit_procedure("middle", lambda pe: pe.replace_statement(
            next(e for e in pe.cfg.edges
                 if isinstance(e.stmt, A.CallStmt)), A.SkipStmt()))
        assert graph._sccs is not cached


# ---------------------------------------------------------------------------
# Cross-procedure edit locality (O(dependent call sites))
# ---------------------------------------------------------------------------


class TestEditLocality:
    def _dirties_per_edit(self, bystanders, edits=6):
        domain = IntervalDomain()
        engine = InterproceduralEngine(
            cfgs_of(bystander_source(bystanders)), domain,
            policy_by_name("1-call-site"))
        engine.query_entry_exit()
        before = engine.counters["interproc_callsite_dirties"]
        for step in range(edits):
            engine.edit_procedure("leaf", relabel_assignment(
                "r", A.BinOp("+", A.Var("x"), A.IntLit(step))))
            engine.query_entry_exit()
        assert engine.counters["interproc_callsite_scans"] == 0
        return (engine.counters["interproc_callsite_dirties"] - before) / edits

    def test_caller_dirtying_is_independent_of_program_size(self):
        small = self._dirties_per_edit(bystanders=3)
        large = self._dirties_per_edit(bystanders=20)
        assert small == large

    def test_structure_analysis_is_shared_across_contexts(self):
        cfgs = cfgs_of("""
            function leaf(x) { return x + 1; }
            function mid(y) { var a = leaf(y); var b = leaf(a); return a + b; }
            function main() { var u = mid(1); var v = mid(50); return u + v; }
        """)
        for cfg in cfgs.values():
            cfg.ensure_structure()
        builds_before = sum(cfg.structure_stats()["structure_full_builds"]
                            for cfg in cfgs.values())
        engine = InterproceduralEngine(cfgs, IntervalDomain(),
                                       CallStringSensitive(2))
        engine.analyze_everything()
        builds_after = sum(cfg.structure_stats()["structure_full_builds"]
                           for cfg in cfgs.values())
        assert builds_after == builds_before
        assert engine.total_stats()["daigs"] > len(cfgs)
