"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.domains import (
    ConstantDomain,
    IntervalDomain,
    OctagonDomain,
    ShapeDomain,
    SignDomain,
)
from repro.lang import build_cfg, build_program_cfgs, parse_program
from repro.lang.programs import append_program, array_program, list_program
from repro.workload.generator import WorkloadGenerator

#: A small looping program used across many tests.
LOOP_SOURCE = """
function main() {
  var i = 0;
  var total = 0;
  while (i < 10) {
    total = total + i;
    i = i + 1;
  }
  return total;
}
"""

#: Straight-line program with a conditional join.
BRANCH_SOURCE = """
function main(flag) {
  var x = 0;
  if (flag > 0) {
    x = 1;
  } else {
    x = 2;
  }
  var y = x + 3;
  return y;
}
"""

#: Nested loops.
NESTED_SOURCE = """
function main() {
  var i = 0;
  var total = 0;
  while (i < 3) {
    var j = 0;
    while (j < 4) {
      total = total + 1;
      j = j + 1;
    }
    i = i + 1;
  }
  return total;
}
"""


@pytest.fixture
def loop_cfg():
    return build_cfg(parse_program(LOOP_SOURCE).procedure("main"))


@pytest.fixture
def branch_cfg():
    return build_cfg(parse_program(BRANCH_SOURCE).procedure("main"))


@pytest.fixture
def nested_cfg():
    return build_cfg(parse_program(NESTED_SOURCE).procedure("main"))


@pytest.fixture
def append_cfg():
    return build_cfg(append_program().procedure("append"))


@pytest.fixture
def interval_domain():
    return IntervalDomain()


@pytest.fixture
def sign_domain():
    return SignDomain()


@pytest.fixture
def constant_domain():
    return ConstantDomain()


@pytest.fixture
def octagon_domain():
    return OctagonDomain()


@pytest.fixture
def shape_domain():
    return ShapeDomain()


def random_cfg(seed: int, edits: int):
    """A random CFG produced by applying `edits` workload edits from `seed`."""
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    generator.generate(edits)
    return generator.cfg


def random_workload(seed: int, edits: int):
    """A random workload stream plus the generator that produced it."""
    generator = WorkloadGenerator(seed=seed, call_probability=0.0)
    steps = generator.generate(edits)
    return generator, steps
