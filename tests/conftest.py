"""Shared fixtures for the test suite.

Program sources and random-CFG factories live in :mod:`helpers` (importable
thanks to the ``pythonpath`` setting in ``pyproject.toml``); this module only
defines pytest fixtures on top of them.
"""

from __future__ import annotations

import pytest

from helpers import BRANCH_SOURCE, LOOP_SOURCE, NESTED_SOURCE  # noqa: F401

from repro.domains import (
    ConstantDomain,
    IntervalDomain,
    OctagonDomain,
    ShapeDomain,
    SignDomain,
)
from repro.lang import build_cfg, parse_program
from repro.lang.programs import append_program


@pytest.fixture
def loop_cfg():
    return build_cfg(parse_program(LOOP_SOURCE).procedure("main"))


@pytest.fixture
def branch_cfg():
    return build_cfg(parse_program(BRANCH_SOURCE).procedure("main"))


@pytest.fixture
def nested_cfg():
    return build_cfg(parse_program(NESTED_SOURCE).procedure("main"))


@pytest.fixture
def append_cfg():
    return build_cfg(append_program().procedure("append"))


@pytest.fixture
def interval_domain():
    return IntervalDomain()


@pytest.fixture
def sign_domain():
    return SignDomain()


@pytest.fixture
def constant_domain():
    return ConstantDomain()


@pytest.fixture
def octagon_domain():
    return OctagonDomain()


@pytest.fixture
def shape_domain():
    return ShapeDomain()
