"""Lattice-law and soundness tests for the value abstractions.

Property-based (hypothesis) tests check, for the interval / sign / constant
lattices, the algebraic laws the abstract-interpreter interface relies on:
partial-order laws, join as an upper bound, widening as a convergent upper
bound, and soundness of abstract arithmetic with respect to concrete
integer arithmetic.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.domains.values import (
    Constant,
    ConstantLattice,
    Interval,
    IntervalLattice,
    SignLattice,
)

LATTICES = {
    "interval": IntervalLattice(),
    "sign": SignLattice(),
    "constant": ConstantLattice(),
}

small_ints = st.integers(min_value=-30, max_value=30)


def abstract_values(lattice_name):
    """A strategy producing abstract values of the given lattice."""
    lattice = LATTICES[lattice_name]
    if lattice_name == "interval":
        bounds = st.one_of(st.none(), small_ints)
        return st.builds(
            lambda lo, hi, empty: Interval.bottom() if empty else Interval.make(
                lo, hi if lo is None or hi is None or hi >= lo else lo + (hi - lo)),
            bounds, bounds, st.booleans())
    if lattice_name == "sign":
        return st.frozensets(st.sampled_from([-1, 0, 1]))
    return st.one_of(
        st.just(Constant.top()), st.just(Constant.bottom()),
        small_ints.map(Constant.const))


@pytest.mark.parametrize("name", sorted(LATTICES))
class TestLatticeLaws:
    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_join_is_an_upper_bound(self, name, data):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        joined = lattice.join(a, b)
        assert lattice.leq(a, joined)
        assert lattice.leq(b, joined)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_join_commutative_and_idempotent(self, name, data):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        assert lattice.equal(lattice.join(a, b), lattice.join(b, a))
        assert lattice.equal(lattice.join(a, a), a)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_order_is_reflexive_and_transitive_via_join(self, name, data):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        c = lattice.join(a, b)
        assert lattice.leq(a, a)
        assert lattice.leq(a, lattice.join(c, data.draw(abstract_values(name))))

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_bottom_and_top_are_extremes(self, name, data):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        assert lattice.leq(lattice.bottom(), a)
        assert lattice.leq(a, lattice.top())

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_meet_is_a_lower_bound(self, name, data):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        met = lattice.meet(a, b)
        assert lattice.leq(met, a)
        assert lattice.leq(met, b)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_widen_is_an_upper_bound(self, name, data):
        # The paper requires (φ ⊔ φ') ⊑ (φ ∇ φ') for all φ, φ'.
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        widened = lattice.widen(a, b)
        assert lattice.leq(lattice.join(a, b), widened)

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_widening_converges(self, name, data):
        lattice = LATTICES[name]
        chain = [data.draw(abstract_values(name)) for _ in range(6)]
        # Make the chain increasing by cumulative joins.
        increasing = []
        accumulator = lattice.bottom()
        for element in chain:
            accumulator = lattice.join(accumulator, element)
            increasing.append(accumulator)
        widened = increasing[0]
        for _round in range(64):
            nxt = widened
            for element in increasing:
                nxt = lattice.widen(nxt, lattice.join(nxt, element))
            if lattice.equal(nxt, widened):
                break
            widened = nxt
        else:
            pytest.fail("widening did not converge")

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), x=small_ints, y=small_ints)
    def test_arithmetic_soundness(self, name, data, x, y):
        lattice = LATTICES[name]
        a = data.draw(abstract_values(name))
        b = data.draw(abstract_values(name))
        if not lattice.contains(a, x) or not lattice.contains(b, y):
            return
        assert lattice.contains(lattice.add(a, b), x + y)
        assert lattice.contains(lattice.sub(a, b), x - y)
        assert lattice.contains(lattice.mul(a, b), x * y)
        assert lattice.contains(lattice.neg(a), -x)

    @settings(max_examples=60, deadline=None)
    @given(data=st.data(), x=small_ints)
    def test_from_const_is_precise(self, name, data, x):
        lattice = LATTICES[name]
        assert lattice.contains(lattice.from_const(x), x)
        assert not lattice.is_bottom(lattice.from_const(x))


class TestIntervalSpecifics:
    def test_make_normalizes_empty(self):
        assert Interval.make(3, 1).empty

    def test_meet_produces_bottom_on_disjoint(self):
        lattice = IntervalLattice()
        assert lattice.is_bottom(lattice.meet(Interval.make(0, 1), Interval.make(5, 9)))

    def test_widen_jumps_to_infinity(self):
        lattice = IntervalLattice()
        widened = lattice.widen(Interval.make(0, 1), Interval.make(0, 5))
        assert widened.hi is None and widened.lo == 0
        widened = lattice.widen(Interval.make(0, 5), Interval.make(-3, 5))
        assert widened.lo is None and widened.hi == 5

    def test_refinements(self):
        lattice = IntervalLattice()
        value = Interval.make(0, 100)
        assert lattice.refine_le(value, Interval.const(10)) == Interval.make(0, 10)
        assert lattice.refine_lt(value, Interval.const(10)) == Interval.make(0, 9)
        assert lattice.refine_ge(value, Interval.const(5)) == Interval.make(5, 100)
        assert lattice.refine_ne(Interval.make(0, 5), Interval.const(0)) == Interval.make(1, 5)
        assert lattice.is_bottom(
            lattice.refine_ne(Interval.const(3), Interval.const(3)))

    def test_division_and_modulo(self):
        lattice = IntervalLattice()
        assert lattice.div(Interval.make(0, 10), Interval.const(2)) == Interval.make(0, 5)
        assert lattice.contains(lattice.mod(Interval.make(0, 100), Interval.const(7)), 6)
        assert lattice.is_top(lattice.div(Interval.make(0, 10), Interval.make(-1, 1)))

    def test_compare_decides_obvious_cases(self):
        lattice = IntervalLattice()
        assert lattice.compare("<", Interval.make(0, 3), Interval.make(5, 9)) is True
        assert lattice.compare("<", Interval.make(9, 9), Interval.make(1, 2)) is False
        assert lattice.compare("<", Interval.make(0, 9), Interval.make(5, 6)) is None

    def test_bounds(self):
        lattice = IntervalLattice()
        assert lattice.bounds(Interval.make(2, 7)) == (2, 7)
        assert lattice.bounds(Interval.top()) == (None, None)


class TestSignSpecifics:
    def test_addition_table(self):
        lattice = SignLattice()
        pos, neg, zero = (lattice.from_const(1), lattice.from_const(-1),
                          lattice.from_const(0))
        assert lattice.add(pos, pos) == pos
        assert lattice.add(pos, zero) == pos
        assert lattice.add(pos, neg) == lattice.top()

    def test_negation(self):
        lattice = SignLattice()
        assert lattice.neg(lattice.from_const(5)) == lattice.from_const(-5)

    def test_refine_ge_zero(self):
        lattice = SignLattice()
        refined = lattice.refine_ge(lattice.top(), lattice.from_const(0))
        assert not lattice.contains(refined, -1)
        assert lattice.contains(refined, 0)


class TestConstantSpecifics:
    def test_join_of_distinct_constants_is_top(self):
        lattice = ConstantLattice()
        assert lattice.join(Constant.const(1), Constant.const(2)) == Constant.top()

    def test_arithmetic_on_constants(self):
        lattice = ConstantLattice()
        assert lattice.add(Constant.const(2), Constant.const(3)) == Constant.const(5)
        assert lattice.div(Constant.const(-7), Constant.const(2)) == Constant.const(-3)

    def test_compare(self):
        lattice = ConstantLattice()
        assert lattice.compare("<", Constant.const(1), Constant.const(2)) is True
        assert lattice.compare("==", Constant.const(1), Constant.top()) is None

    def test_refine_ne_bottom(self):
        lattice = ConstantLattice()
        assert lattice.is_bottom(
            lattice.refine_ne(Constant.const(4), Constant.const(4)))
