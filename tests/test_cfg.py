"""Unit tests for CFG construction, structural analyses, and edits."""

import pytest

from repro.lang import ast as A
from repro.lang import build_cfg, parse_program
from repro.lang.cfg import Cfg, IrreducibleCfgError
from repro.lang.programs import append_program

from helpers import BRANCH_SOURCE, LOOP_SOURCE, NESTED_SOURCE, random_cfg


class TestLowering:
    def test_straightline_program(self):
        cfg = build_cfg(parse_program(
            "function main() { var x = 1; var y = x + 1; return y; }").procedure("main"))
        assert cfg.size() == 3
        assert cfg.loop_heads() == []
        assert cfg.is_reducible()

    def test_branches_create_assume_edges(self, branch_cfg):
        assumes = [e for e in branch_cfg.edges if isinstance(e.stmt, A.AssumeStmt)]
        assert len(assumes) == 2
        conditions = {str(e.stmt) for e in assumes}
        assert any("flag > 0" in c for c in conditions)
        assert any("flag <= 0" in c for c in conditions)

    def test_branch_join_point(self, branch_cfg):
        joins = branch_cfg.join_points()
        assert len(joins) == 1
        join = next(iter(joins))
        assert len(branch_cfg.fwd_edges_to(join)) == 2

    def test_loop_has_single_back_edge(self, loop_cfg):
        assert len(loop_cfg.loop_heads()) == 1
        head = loop_cfg.loop_heads()[0]
        assert len(loop_cfg.back_edges_to(head)) == 1

    def test_loop_head_dominates_body(self, loop_cfg):
        head = loop_cfg.loop_heads()[0]
        for loc in loop_cfg.natural_loop(head):
            assert loop_cfg.dominates(head, loc)

    def test_nested_loops(self, nested_cfg):
        heads = nested_cfg.loop_heads()
        assert len(heads) == 2
        outer = max(heads, key=lambda h: len(nested_cfg.natural_loop(h)))
        inner = min(heads, key=lambda h: len(nested_cfg.natural_loop(h)))
        assert nested_cfg.natural_loop(inner) < nested_cfg.natural_loop(outer)
        # Containing loop heads are reported outermost first.
        body_loc = next(iter(nested_cfg.natural_loop(inner) - {inner, outer}))
        assert nested_cfg.containing_loop_heads(body_loc)[0] == outer

    def test_return_short_circuits_lowering(self):
        cfg = build_cfg(parse_program(
            "function main() { return 1; var x = 2; return x; }").procedure("main"))
        # The dead tail is pruned.
        statements = [str(e.stmt) for e in cfg.edges]
        assert statements == ["ret = 1"]

    def test_implicit_return_null(self):
        cfg = build_cfg(parse_program(
            "function main() { var x = 1; }").procedure("main"))
        last = [e for e in cfg.edges if e.dst == cfg.exit]
        assert len(last) == 1
        assert str(last[0].stmt) == "ret = null"

    def test_both_branches_return(self):
        cfg = build_cfg(parse_program("""
            function main(x) {
              if (x > 0) { return 1; } else { return 2; }
            }""").procedure("main"))
        assert all(loc in cfg.reachable_locations() or loc == cfg.exit
                   for loc in cfg.locations)
        assert len(cfg.in_edges(cfg.exit)) == 2

    def test_append_structure_matches_paper(self, append_cfg):
        # Fig. 2: one loop, reducible, exit reachable from both branches.
        assert len(append_cfg.loop_heads()) == 1
        assert append_cfg.is_reducible()
        assert len(append_cfg.in_edges(append_cfg.exit)) == 2


class TestStructuralAnalyses:
    def test_reverse_postorder_is_topological_over_forward_edges(self, loop_cfg):
        order = loop_cfg.reverse_postorder()
        position = {loc: i for i, loc in enumerate(order)}
        for edge in loop_cfg.forward_edges():
            assert position[edge.src] < position[edge.dst]

    def test_entry_dominates_everything(self, nested_cfg):
        for loc in nested_cfg.reachable_locations():
            assert nested_cfg.dominates(nested_cfg.entry, loc)

    def test_fwd_edge_indices_are_one_based_and_unique(self, branch_cfg):
        join = next(iter(branch_cfg.join_points()))
        indices = [i for i, _ in branch_cfg.fwd_edges_to(join)]
        assert indices == [1, 2]

    def test_irreducible_graph_detected(self):
        cfg = Cfg("irreducible")
        a, b = cfg.fresh_loc(), cfg.fresh_loc()
        cfg.add_edge(cfg.entry, A.AssumeStmt(A.Var("x")), a)
        cfg.add_edge(cfg.entry, A.AssumeStmt(A.Var("y")), b)
        cfg.add_edge(a, A.SkipStmt(), b)
        cfg.add_edge(b, A.SkipStmt(), a)
        cfg.add_edge(a, A.SkipStmt(), cfg.exit)
        with pytest.raises(IrreducibleCfgError):
            cfg.check_reducible()

    def test_variables_include_params_and_ret(self, append_cfg):
        names = append_cfg.variables()
        assert {"p", "q", "r", "ret"} <= names

    def test_copy_is_independent(self, loop_cfg):
        clone = loop_cfg.copy()
        clone.insert_statement_after(loop_cfg.entry, A.SkipStmt())
        assert clone.size() == loop_cfg.size() + 1


class TestEdits:
    def test_insert_statement_preserves_successors(self, branch_cfg):
        before = branch_cfg.size()
        old_succs = set(branch_cfg.successors(branch_cfg.entry))
        cont = branch_cfg.insert_statement_after(
            branch_cfg.entry, A.AssignStmt("z", A.IntLit(1)))
        assert branch_cfg.size() == before + 1
        assert branch_cfg.successors(branch_cfg.entry) == [cont]
        assert set(branch_cfg.successors(cont)) == old_succs
        assert branch_cfg.is_reducible()

    def test_insert_conditional_creates_join(self, loop_cfg):
        cond = A.BinOp(">", A.Var("total"), A.IntLit(5))
        cont = loop_cfg.insert_conditional_after(
            loop_cfg.entry, cond, [A.AssignStmt("x", A.IntLit(1))], [])
        assert cont in loop_cfg.join_points()
        assert loop_cfg.is_reducible()

    def test_insert_loop_creates_back_edge(self, branch_cfg):
        heads_before = len(branch_cfg.loop_heads())
        branch_cfg.insert_loop_after(
            branch_cfg.entry,
            A.BinOp("<", A.Var("k"), A.IntLit(3)),
            [A.AssignStmt("k", A.BinOp("+", A.Var("k"), A.IntLit(1)))])
        assert len(branch_cfg.loop_heads()) == heads_before + 1
        assert branch_cfg.is_reducible()

    def test_replace_and_delete_statement(self, loop_cfg):
        edge = loop_cfg.out_edges(loop_cfg.entry)[0]
        replaced = loop_cfg.replace_edge_statement(
            edge, A.AssignStmt("i", A.IntLit(5)))
        assert replaced in loop_cfg.edges
        deleted = loop_cfg.delete_edge_statement(replaced)
        assert isinstance(deleted.stmt, A.SkipStmt)

    def test_cannot_insert_after_exit(self, loop_cfg):
        with pytest.raises(ValueError):
            loop_cfg.insert_statement_after(loop_cfg.exit, A.SkipStmt())

    def test_cannot_insert_at_unknown_location(self, loop_cfg):
        with pytest.raises(ValueError):
            loop_cfg.insert_statement_after(99_999, A.SkipStmt())

    def test_fresh_locations_never_recycled(self, loop_cfg):
        seen = set(loop_cfg.locations)
        for _ in range(5):
            loc = loop_cfg.fresh_loc()
            assert loc not in seen
            seen.add(loc)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_edit_sequences_stay_reducible(self, seed):
        cfg = random_cfg(seed, edits=40)
        assert cfg.is_reducible()
        assert cfg.exit in cfg.reachable_locations()
        # Every loop head has exactly one back edge (paper assumption).
        for head in cfg.loop_heads():
            assert len(cfg.back_edges_to(head)) == 1
