"""Tests for the four Fig. 10 analysis configurations.

The essential property is *cross-configuration consistency*: all four
configurations must report identical abstract states for the same queries
over the same edit stream — they differ only in how much work they do and
when, never in their answers.
"""

import pytest

from repro.analysis.config import (
    ALL_CONFIGURATIONS,
    BatchConfiguration,
    DemandConfiguration,
    IncrementalConfiguration,
    IncrementalDemandConfiguration,
    make_configuration,
)
from repro.domains import IntervalDomain, OctagonDomain, SignDomain
from repro.workload import WorkloadGenerator, run_trial


class TestFactory:
    def test_all_four_names(self):
        names = {cls.name for cls in ALL_CONFIGURATIONS}
        assert names == {"batch", "incremental", "demand-driven", "incr+demand"}

    @pytest.mark.parametrize("alias,expected", [
        ("batch", BatchConfiguration),
        ("incr", IncrementalConfiguration),
        ("demand", DemandConfiguration),
        ("I&DD", IncrementalDemandConfiguration),
    ])
    def test_aliases(self, alias, expected):
        assert isinstance(make_configuration(alias, SignDomain()), expected)

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_configuration("turbo", SignDomain())

    def test_capability_flags(self):
        assert BatchConfiguration.demand_driven is False
        assert BatchConfiguration.incremental is False
        assert IncrementalConfiguration.incremental is True
        assert DemandConfiguration.demand_driven is True
        assert IncrementalDemandConfiguration.incremental is True
        assert IncrementalDemandConfiguration.demand_driven is True


@pytest.mark.parametrize("domain_cls", [SignDomain, IntervalDomain])
class TestCrossConfigurationConsistency:
    def test_all_configurations_agree_on_every_query(self, domain_cls):
        steps = WorkloadGenerator(seed=13, call_probability=0.0).generate(15)
        configurations = [cls(domain_cls()) for cls in ALL_CONFIGURATIONS]
        reference_domain = domain_cls()
        for step in steps:
            answers = [config.step(step.edit, step.query_locations)
                       for config in configurations]
            for other in answers[1:]:
                for loc in step.query_locations:
                    assert reference_domain.equal(answers[0][loc], other[loc]), (
                        "configurations disagree at %d after %s"
                        % (loc, step.edit.describe()))

    def test_program_sizes_stay_in_sync(self, domain_cls):
        steps = WorkloadGenerator(seed=3, call_probability=0.0).generate(10)
        configurations = [cls(domain_cls()) for cls in ALL_CONFIGURATIONS]
        for step in steps:
            for config in configurations:
                config.apply_edit(step.edit)
        sizes = {config.program_size() for config in configurations}
        assert len(sizes) == 1


class TestWorkloadIntegration:
    def test_run_trial_produces_one_sample_per_step(self):
        steps = WorkloadGenerator(seed=21, call_probability=0.0).generate(12)
        config = IncrementalDemandConfiguration(OctagonDomain())
        result = run_trial(config, steps)
        assert len(result.samples) == 12
        assert all(sample.seconds >= 0 for sample in result.samples)
        assert result.summary()["p99"] >= result.summary()["p50"]

    def test_incr_demand_does_less_work_than_batch(self):
        steps = WorkloadGenerator(seed=8, call_probability=0.0).generate(30)
        batch = BatchConfiguration(OctagonDomain())
        combined = IncrementalDemandConfiguration(OctagonDomain())
        batch_result = run_trial(batch, steps)
        combined_result = run_trial(combined, steps)
        # Wall-clock comparison on 30 edits: the combined technique must not
        # be slower overall than from-scratch batch re-analysis.
        assert sum(combined_result.latencies()) < sum(batch_result.latencies())
